//! Declarative experiments from the facade crate: build a scenario spec
//! as JSON, run it through `ctlm::lab`, and read the structured report —
//! the same pipeline the `ctlm-lab` binary drives from `experiments/*.json`.
//!
//! ```sh
//! cargo run --release --example lab_spec
//! ```

use ctlm::lab;

fn main() {
    // A contended 6-machine cell with three pinned (Group-0) tasks, a
    // churn wave, and a two-value sweep over the churn intensity.
    let spec = r#"{
        "name": "lab_spec_example",
        "sim": {"cycle": 500000, "attempts_per_cycle": 3,
                 "mean_runtime": 6000000, "horizon": 90000000, "seed": 21},
        "schedulers": ["main_only", "oracle"],
        "workload": {"Synthetic": {
            "machines": [{"count": 6, "cpu": 1.0, "memory": 1.0}],
            "tasks": 250,
            "arrival": {"Exponential": {"mean_gap": 45000}},
            "cpu": {"Pareto": {"lo": 0.05, "hi": 0.4, "alpha": 1.2}},
            "priority": 2,
            "restrictive": {"count": 3, "start": 4000000,
                             "period": 5000000, "cpu": 0.2, "priority": 6}
        }},
        "scenario": {"churn": {"failures": 2, "window": [10000000, 30000000],
                                "outage": 15000000, "seed": 4}},
        "sweep": {"knobs": [{"path": "scenario.churn.failures", "values": [0, 2]}],
                   "seeds": [21, 22]}
    }"#;

    let report = lab::run_spec_json(spec).expect("spec runs");
    println!(
        "{} — {} runs, {} summary rows\n",
        report.name,
        report.runs.len(),
        report.summary.len()
    );
    for row in &report.summary {
        let knobs: Vec<String> = row
            .knobs
            .iter()
            .map(|k| format!("{}={}", k.path, k.value))
            .collect();
        println!(
            "  [{}] {:<10} group0 mean {:>10} µs   unplaced {}",
            knobs.join(","),
            row.scheduler,
            row.median_group0_mean
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "—".into()),
            row.median_unplaced,
        );
    }
    println!("\nFull JSON report available via serde: identical spec + seed ⇒ identical bytes.");
}
