//! Fig. 1 walk-through: how AGOCS turns a work trace into the CO-EL and
//! CO-VV experimental datasets.
//!
//! ```text
//! cargo run --release --example dataset_explorer
//! ```

use ctlm::data::compaction::collapse;
use ctlm::prelude::*;
use ctlm::trace::{AttrValue, ConstraintOp, TaskConstraint};

fn main() {
    // --- Constraint compaction (Table V) -------------------------------
    println!("== constraint compaction ==");
    let cs = vec![
        TaskConstraint::new(0, ConstraintOp::LessThan(8)),
        TaskConstraint::new(0, ConstraintOp::LessThan(3)),
        TaskConstraint::new(0, ConstraintOp::GreaterThan(0)),
        TaskConstraint::new(1, ConstraintOp::NotEqual(AttrValue::from("a"))),
        TaskConstraint::new(1, ConstraintOp::NotEqual(AttrValue::from("b"))),
    ];
    for c in &cs {
        println!("  input: {c}");
    }
    for r in collapse(&cs).unwrap() {
        println!("  collapsed: {r}");
    }

    // --- Trace replay and dataset generation ---------------------------
    println!("\n== trace replay ==");
    let trace = TraceGenerator::generate_cell(
        CellSet::C2019a,
        Scale {
            machines: 130,
            collections: 700,
            seed: 3,
        },
    );
    let replay = Replayer::default().replay(&trace);
    println!(
        "corrections: {} mistimed updates offset, {} tasks missing termination healed",
        replay.correction.mistimed_updates_fixed, replay.correction.tasks_missing_termination
    );
    println!(
        "skipped: {} contradictory, {} transiently unschedulable",
        replay.skipped_contradictions, replay.skipped_unschedulable
    );

    println!("\n== dataset steps (feature-array extensions) ==");
    println!(
        "{:<5} {:<9} {:>8} {:>5} {:>7}",
        "step", "time", "width", "new", "rows"
    );
    for s in &replay.steps {
        println!(
            "{:<5} {:<9} {:>8} {:>5} {:>7}",
            s.index,
            s.label,
            s.features_count,
            s.new_features,
            s.vv.len()
        );
    }

    let last = replay.steps.last().unwrap();
    println!("\n== final datasets ==");
    println!(
        "CO-VV: {} × {} ({} nnz, density {:.4}%)",
        last.vv.len(),
        last.vv.features_count(),
        last.vv.x.nnz(),
        100.0 * last.vv.x.density()
    );
    if let Some(el) = &last.el {
        println!("CO-EL: {} × {} labels", el.len(), el.features_count());
    }
    println!("class distribution: {:?}", last.vv.class_counts());

    // --- Multi-format export (§III: "generate datasets in various
    //     formats simultaneously for use in ML frameworks") -------------
    use ctlm::data::export::{export_string, ExportFormat};
    let preview = last.vv.select(&[0, 1]);
    println!("\n== export formats (first two rows) ==");
    for (name, fmt) in [
        ("svmlight", ExportFormat::SvmLight),
        ("jsonl", ExportFormat::Jsonl),
    ] {
        println!("--- {name} ---");
        for line in export_string(&preview, fmt).lines() {
            let shown: String = line.chars().take(100).collect();
            println!("{shown}{}", if line.len() > 100 { " …" } else { "" });
        }
    }

    // --- Table IX statistics --------------------------------------------
    let d = replay.stats;
    println!("\n== tasks-with-CO distribution (Table IX shape) ==");
    println!(
        "volume {:.1}/{:.1}/{:.1}%  cpu {:.1}/{:.1}/{:.1}%  mem {:.1}/{:.1}/{:.1}%  (min/max/avg)",
        100.0 * d.by_volume.min,
        100.0 * d.by_volume.max,
        100.0 * d.by_volume.avg,
        100.0 * d.by_cpu.min,
        100.0 * d.by_cpu.max,
        100.0 * d.by_cpu.avg,
        100.0 * d.by_memory.min,
        100.0 * d.by_memory.max,
        100.0 * d.by_memory.avg,
    );
}
