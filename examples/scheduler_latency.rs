//! The Fig. 3 deployment: Task CO Analyzer + High-Priority Scheduler,
//! with the model updated by a *background thread* while the schedulers
//! keep running — the paper's "updating ML model runs in parallel and
//! won't block or slow down the main cluster scheduler".
//!
//! ```text
//! cargo run --release --example scheduler_latency
//! ```

use ctlm::prelude::*;
use ctlm::sched::updater::ModelUpdater;

fn main() {
    let cell = CellSet::C2019c;
    let trace = TraceGenerator::generate_cell(
        cell,
        Scale {
            machines: 150,
            collections: 900,
            seed: 13,
        },
    );
    let replay = Replayer::default().replay(&trace);

    // Background model updates through the registry (hot swap).
    let registry = ModelRegistry::new();
    let updater = ModelUpdater::spawn(registry.clone(), TrainConfig::default());
    for (i, step) in replay.steps.iter().enumerate() {
        updater.submit(step.vv.clone(), replay.vocab.clone(), i as u64);
    }
    // The scheduler thread would keep serving here; we wait for the
    // updater to finish all steps before measuring.
    let steps_done = updater.shutdown();
    let analyzer = registry.get().expect("analyzer installed");
    println!(
        "background updater completed {steps_done} training steps; analyzer at width {}",
        analyzer.features()
    );

    // Identical arrivals under both policies, compressed onto a loaded
    // 15-minute window so queueing pressure exists.
    let (mut cluster, mut arrivals) = arrivals_from_trace(&trace, 5_000);
    ctlm::sched::engine::compress_timeline(&mut arrivals, 15 * 60 * 1_000_000);
    println!(
        "simulating {} arrivals on {} machines\n",
        arrivals.len(),
        cluster.len()
    );
    let sim = Simulator::new(SimConfig {
        cycle: 1_000_000,
        attempts_per_cycle: 4,
        mean_runtime: 60_000_000,
        horizon: 3_600_000_000,
        seed: 13,
    });
    let base = sim.run(&mut cluster, &arrivals, &mut MainOnly);
    let enhanced = sim.run(
        &mut cluster,
        &arrivals,
        &mut Enhanced::new(analyzer.clone()),
    );

    for (name, r) in [("main-only", &base), ("enhanced (Fig. 3)", &enhanced)] {
        println!("policy: {name}");
        match r.group0_latency() {
            Some(s) => println!(
                "  Group 0 tasks: n={} mean={:.1} ms p95={} ms",
                s.count,
                s.mean / 1000.0,
                s.p95 / 1000
            ),
            None => println!("  Group 0 tasks: none placed"),
        }
        if let Some(s) = r.other_latency() {
            println!(
                "  other tasks:   n={} mean={:.1} ms p95={} ms",
                s.count,
                s.mean / 1000.0,
                s.p95 / 1000
            );
        }
        println!(
            "  preemptions: {}, unplaced: {}\n",
            r.preemptions, r.unplaced
        );
    }
}
