//! The 31-day continuous-learning scenario (paper §IV–V): Growing vs
//! Fully-Retrain across every feature-array extension, on one cell.
//!
//! ```text
//! cargo run --release --example continuous_learning [-- 2011|2019a|2019c|2019d]
//! ```

use ctlm::prelude::*;

fn main() {
    let cell = match std::env::args().nth(1).as_deref() {
        Some("2011") => CellSet::C2011,
        Some("2019a") => CellSet::C2019a,
        Some("2019d") => CellSet::C2019d,
        _ => CellSet::C2019c,
    };
    let trace = TraceGenerator::generate_cell(
        cell,
        Scale {
            machines: 200,
            collections: 1_200,
            seed: 11,
        },
    );
    let replay = Replayer::default().replay(&trace);
    println!(
        "{}: {} steps over {:.0} simulated days ({} rows, width {} → {})\n",
        trace.profile.name,
        replay.steps.len(),
        trace.profile.horizon_days,
        replay.total_rows,
        replay.steps.first().map(|s| s.features_count).unwrap_or(0),
        replay.vocab.len(),
    );

    let cfg = TrainConfig::default();
    let growing = run_model_over_steps(ModelKind::Growing, &replay.steps, cfg, 5);
    let retrain = run_model_over_steps(ModelKind::FullyRetrain, &replay.steps, cfg, 5);

    println!(
        "{:<16} {:>10} {:>11} {:>8} {:>12}",
        "model", "avg acc", "avg G0 F1", "epochs", "wall time"
    );
    for run in [&growing, &retrain] {
        println!(
            "{:<16} {:>10.5} {:>11} {:>8} {:>12.2?}",
            run.model,
            run.avg_accuracy,
            run.avg_group0_f1
                .map(|f| format!("{f:.5}"))
                .unwrap_or_else(|| "—".into()),
            run.epochs_total,
            run.wall_time_total
        );
    }
    let saved = 100.0 * (1.0 - growing.epochs_total as f64 / retrain.epochs_total.max(1) as f64);
    println!(
        "\nGrowing used {saved:.0}% fewer epochs than Fully-Retrain (paper: 40–91% across cells)."
    );
}
