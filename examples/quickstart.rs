//! Quickstart: trace → replay → continuous training → task analysis.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ctlm::prelude::*;
use ctlm::trace::{AttrValue, ConstraintOp, TaskConstraint};

fn main() {
    // 1. A scaled-down clusterdata-2019c-like cell: 150 machines, ~31
    //    simulated days of collections, constraint operators, machine
    //    churn and vocabulary growth.
    let trace = TraceGenerator::generate_cell(
        CellSet::C2019c,
        Scale {
            machines: 150,
            collections: 800,
            seed: 7,
        },
    );
    println!(
        "generated {}: {} events, {} tasks ({} constrained)",
        trace.profile.name,
        trace.events.len(),
        trace.total_tasks,
        trace.constrained_tasks
    );

    // 2. AGOCS-style replay: anomaly correction, constraint matching,
    //    CO-VV dataset generation at every feature-array extension.
    let replay = Replayer::default().replay(&trace);
    println!(
        "replayed: {} dataset steps, {} rows, final feature width {}",
        replay.steps.len(),
        replay.total_rows,
        replay.vocab.len()
    );

    // 3. Continuous transfer learning across the steps.
    let mut model = GrowingModel::new(TrainConfig::default());
    for (i, step) in replay.steps.iter().enumerate() {
        let out = model.step(&step.vv, i as u64);
        println!(
            "step {i:>2} @ {}: width {:>4} (+{:<3}) acc {:.4} G0-F1 {} epochs {:>3} {}",
            step.label,
            step.features_count,
            step.new_features,
            out.evaluation.accuracy,
            out.evaluation
                .group0_f1
                .map(|f| format!("{f:.3}"))
                .unwrap_or_else(|| "  — ".into()),
            out.epochs,
            if out.used_transfer {
                "(transfer)"
            } else {
                "(scratch)"
            },
        );
    }

    // 4. Real-time task analysis: route restrictive tasks to the
    //    high-priority scheduler.
    let analyzer = TaskCoAnalyzer::new(model.to_net(), replay.vocab.clone());
    let node = trace.catalog.get("node_index").expect("attribute exists");
    let pinned = vec![TaskConstraint::new(
        node,
        ConstraintOp::Equal(Some(AttrValue::Int(12))),
    )];
    let broad = vec![TaskConstraint::new(
        node,
        ConstraintOp::GreaterThanEqual(10),
    )];
    println!(
        "\npinned-to-one-node task  → predicted group {} (high priority: {})",
        analyzer.predict_group(&pinned).unwrap(),
        analyzer.is_high_priority(&pinned)
    );
    println!(
        "broad task (most nodes)  → predicted group {} (high priority: {})",
        analyzer.predict_group(&broad).unwrap(),
        analyzer.is_high_priority(&broad)
    );
}
