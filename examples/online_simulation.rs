//! The online loop on one event timeline — replay, scheduling, machine
//! churn, a staged kernel rollout and *live* model retraining in a
//! single `ctlm-sim` kernel run.
//!
//! The old codebase ran Fig. 3 and the Table XI replay as two separate
//! monolithic loops; hosted on the kernel they compose:
//!
//! 1. An [`OnlineTraceFeed`] walks the corrected trace stream. Every
//!    event is observed by the embedded replay component (vocabulary,
//!    dataset rows, Table XI steps) and mirrored at the scheduler engine
//!    (machine joins, attribute updates, task admissions labelled with
//!    live ground truth).
//! 2. Each dataset step is submitted to the background [`ModelUpdater`]
//!    thread; trained analyzers are hot-swapped into the
//!    [`ModelRegistry`] while simulated scheduling continues — the
//!    [`LiveRegistry`] scheduler starts routing restrictive tasks to the
//!    high-priority queue as soon as the first model lands.
//! 3. A [`ChurnPlan`] drains machines mid-run: their tasks re-enter the
//!    queue and the fleet recovers minutes later.
//! 4. A staged kernel rollout (synthetic `MachineAttrUpdate` events
//!    merged into the stream) grows the attribute vocabulary mid-run,
//!    triggering further retraining steps — the paper's "feature array
//!    extended" moments, now happening *during* scheduling.
//!
//! ```text
//! cargo run --release --example online_simulation
//! ```

use ctlm::prelude::*;
use ctlm::sched::engine::PRIO_STATE;
use ctlm::sched::scenario::{
    attach_source, compress_event_times, ChurnPlan, ChurnSource, OnlineTraceFeed,
};
use ctlm::sched::updater::ModelUpdater;
use ctlm::sched::SchedCluster;
use ctlm::trace::generator::attrs;
use ctlm::trace::{AttrValue, EventPayload, TraceEvent};

fn main() {
    let cell = CellSet::C2019c;
    let trace = TraceGenerator::generate_cell(
        cell,
        Scale {
            machines: 120,
            collections: 700,
            seed: 21,
        },
    );
    let (mut events, correction) = ctlm::agocs::correct_stream(&trace.events);

    // Compress the multi-week trace onto a loaded 30-minute window.
    let window = 30 * 60 * 1_000_000;
    compress_event_times(&mut events, window);

    // Staged kernel rollout: three waves of a brand-new kernel version
    // wash over slices of the fleet mid-run, growing the vocabulary and
    // driving retraining steps the original trace never contained.
    let kernel_attr = trace.catalog.get(attrs::KERNEL).expect("kernel attr");
    let mut fleet_caps: Vec<(u64, f64)> = events
        .iter()
        .filter_map(|e| match &e.payload {
            EventPayload::MachineAdd(m) => Some((m.id, m.cpu)),
            _ => None,
        })
        .collect();
    let fleet: Vec<u64> = fleet_caps.iter().map(|&(id, _)| id).collect();
    for (stage, minute) in [10u64, 15, 20].iter().enumerate() {
        let t = minute * 60 * 1_000_000;
        let slice = fleet.len() / 4;
        for &m in fleet.iter().skip(stage * slice).take(slice) {
            events.push(TraceEvent::new(
                t,
                EventPayload::MachineAttrUpdate {
                    machine: m,
                    attr: kernel_attr,
                    value: Some(AttrValue::Str(format!("k-rollout-{stage}"))),
                },
            ));
        }
    }
    events.sort_by_key(|e| e.time); // stable: same-time stream order kept

    // Background retraining: dataset steps stream to the updater thread;
    // analyzers hot-swap into the registry while the simulation runs.
    let registry = ModelRegistry::new();
    let updater = ModelUpdater::spawn(
        registry.clone(),
        TrainConfig {
            epochs_limit: 40,
            max_attempts: 2,
            ..TrainConfig::default()
        },
    );
    let (replay_comp, replay_handle) = ctlm::agocs::ReplayComponent::new(
        ctlm::agocs::ReplayConfig {
            min_rows_for_step0: 30,
            step_merge_window: 2 * 60 * 1_000_000, // 2 sim-minutes
            build_co_el: false,
        },
        trace.group_width,
    );
    let replay_comp = replay_comp.on_step(|step, vocab| {
        println!(
            "  [t={}] dataset step {}: {} rows, {} features (+{}) → retraining",
            step.label,
            step.index,
            step.vv.len(),
            step.features_count,
            step.new_features
        );
        updater.submit(step.vv.clone(), vocab.clone(), step.index as u64);
    });

    // The simulation: LiveRegistry routes with whatever model is
    // currently installed; the cluster starts empty — machines join
    // through the feed, exactly as the trace says.
    let mut scheduler = LiveRegistry::new(registry.clone());
    let sim = Simulator::new(SimConfig {
        cycle: 1_000_000,
        attempts_per_cycle: 4,
        mean_runtime: 60_000_000,
        horizon: window + 5 * 60 * 1_000_000,
        seed: 21,
    });
    let mut harness = sim.harness(SchedCluster::new(), &[], &mut scheduler);
    let feed = OnlineTraceFeed::new(events, trace.group_width, harness.engine, replay_comp);
    let first = feed.first_time();
    attach_source(&mut harness, "online_feed", feed, first, PRIO_STATE);

    // Mid-run churn: 8 machines drain in minutes 8–22, back ~3 minutes
    // later; their tasks re-enter the queue. Best-fit packs the
    // smallest-capacity machines first, so churn that loaded end of the
    // heterogeneous fleet.
    fleet_caps.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let drain_pool: Vec<u64> = fleet_caps.iter().take(16).map(|&(id, _)| id).collect();
    let plan = ChurnPlan::random_drain(
        9,
        &drain_pool,
        8,
        (8 * 60 * 1_000_000, 22 * 60 * 1_000_000),
        3 * 60 * 1_000_000,
    );
    let churn = ChurnSource::new(plan, harness.engine);
    let churn_first = churn.first_time();
    attach_source(&mut harness, "churn", churn, churn_first, PRIO_STATE);

    println!("online simulation: replay + scheduling + churn + rollout on one timeline\n");
    let (cluster, result) = harness.run();
    // Finishing the replay flushes the trailing step (one last retrain
    // submission) and releases the updater borrow; shutdown then drains
    // the training queue.
    let replay_out = replay_handle.finish(correction);
    let steps_done = updater.shutdown();

    println!("\nsimulation finished:");
    println!(
        "  fleet: {} machines online, {} dataset rows encoded, {} retraining steps ({} trained in background)",
        cluster.len(),
        replay_out.total_rows,
        replay_out.steps.len(),
        steps_done,
    );
    println!(
        "  model versions hot-swapped during the run: {}",
        registry.version()
    );
    println!(
        "  placed {} tasks ({} unplaced), churn rescheduled {}, preemptions {}",
        result.placed.len(),
        result.unplaced,
        result.churn_rescheduled,
        result.preemptions,
    );
    match (result.group0_latency(), result.other_latency()) {
        (Some(g0), Some(rest)) => println!(
            "  latency: Group 0 mean {:.1} ms (n={}) vs others {:.1} ms (n={})",
            g0.mean / 1000.0,
            g0.count,
            rest.mean / 1000.0,
            rest.count
        ),
        _ => println!("  latency: insufficient samples per group"),
    }
    assert!(
        !result.placed.is_empty(),
        "online loop must place tasks end-to-end"
    );
}
