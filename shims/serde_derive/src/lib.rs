//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! No `syn`/`quote` in the offline container, so this parses the derive
//! input token stream directly. Supported shapes — everything the
//! workspace derives on:
//!
//! * non-generic structs with named fields, tuple structs, unit structs;
//! * non-generic enums with unit, tuple and struct variants.
//!
//! Structs serialize to objects keyed by field name; enums are externally
//! tagged (`"Variant"` for unit variants, `{"Variant": payload}`
//! otherwise), matching real serde's default representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// A named field plus the serde attributes the shim honors.
struct Field {
    name: String,
    /// `#[serde(default)]`: a missing (or `null`) value falls back to
    /// `Default::default()` instead of erroring.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type {name} not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    };
    Input { name, shape }
}

/// True when an attribute body (the `[...]` group's stream) is a serde
/// attribute containing the `default` flag, e.g. `serde(default)`.
fn attr_has_serde_default(stream: TokenStream) -> bool {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|tt| matches!(tt, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Parses `attr* vis? name: Type` fields separated by top-level commas.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility, noting `#[serde(default)]`.
        let mut default = false;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        default |= attr_has_serde_default(g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break;
        };
        fields.push(Field {
            name: id.to_string(),
            default,
        });
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
    }
    fields
}

/// Counts tuple-struct/tuple-variant fields (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tt in stream {
        any = true;
        if let TokenTree::Punct(p) = &tt {
            let c = p.as_char();
            if c == '<' {
                depth += 1;
            } else if c == '>' {
                depth -= 1;
            } else if c == ',' && depth == 0 {
                commas += 1;
            }
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break;
        };
        let name = id.to_string();
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip a discriminant (`= expr`) and the trailing comma.
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new(); {pushes} \
                 ::serde::Value::Object(__fields)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(ref __f0) => ::serde::Value::Object(vec![\
                             ({vname:?}.to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("ref __f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                 ({vname:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| format!("ref {}", f.name)).collect();
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "__inner.push(({f:?}.to_string(), \
                                         ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => {{ \
                                 let mut __inner: Vec<(String, ::serde::Value)> = Vec::new(); \
                                 {pushes} \
                                 ::serde::Value::Object(vec![({vname:?}.to_string(), \
                                 ::serde::Value::Object(__inner))]) }},",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match *self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim produced invalid Serialize impl")
}

/// Deserialization initializer for one named field: reads `owner.field`
/// out of `src`, attaching the `Owner.field` path to any error. With
/// `#[serde(default)]`, a missing or `null` value falls back to
/// `Default::default()` instead of erroring.
fn field_init(owner: &str, f: &Field, src: &str) -> String {
    let fname = &f.name;
    if f.default {
        format!(
            "{fname}: {{ let __fv = {src}.get_field({fname:?}); \
             if matches!(__fv, ::serde::Value::Null) {{ ::core::default::Default::default() }} \
             else {{ ::serde::Deserialize::from_value(__fv)\
             .map_err(|__e| __e.context(concat!({owner:?}, \".\", {fname:?})))? }} }}"
        )
    } else {
        format!(
            "{fname}: ::serde::Deserialize::from_value({src}.get_field({fname:?}))\
             .map_err(|__e| __e.context(concat!({owner:?}, \".\", {fname:?})))?"
        )
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(name, f, "__v")).collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(__v.get_index({i}))?"))
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            // Joined without quotes: this lands inside a generated string
            // literal, where `{:?}`'s quote characters would break parsing.
            let expected = variants
                .iter()
                .map(|v| v.name.as_str())
                .collect::<Vec<_>>()
                .join("/");
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{0:?} => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        // Unit variants are also accepted in map form
                        // (`{"Variant": null}`) so configs can key every
                        // variant uniformly by name.
                        VariantKind::Unit => format!("{vname:?} => Ok({name}::{vname}),"),
                        VariantKind::Tuple(1) => format!(
                            "{vname:?} => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__inner.get_index({i}))?"
                                    )
                                })
                                .collect();
                            format!("{vname:?} => Ok({name}::{vname}({})),", inits.join(", "))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| field_init(&format!("{name}::{vname}"), f, "__inner"))
                                .collect();
                            format!(
                                "{vname:?} => Ok({name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => Err(::serde::Error::msg(format!(\
                 \"unknown {name} variant {{__other:?}} (expected one of {expected})\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\n\
                 __other => Err(::serde::Error::msg(format!(\
                 \"unknown {name} variant {{__other:?}} (expected one of {expected})\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::Error::msg(format!(\
                 \"invalid {name} value {{__other:?}}\"))),\n\
                 }}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim produced invalid Deserialize impl")
}
