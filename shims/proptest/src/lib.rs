//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's
//! property tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, range strategies, `prop_map` and
//! `prop::collection::vec` — over deterministic random sampling. Unlike
//! real proptest there is no shrinking: a failing case reports its inputs
//! via the assertion message instead.

use std::rc::Rc;

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;
use rand::Rng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

pub mod prelude {
    //! Drop-in `proptest::prelude`.
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runner configuration (only `cases` is consulted).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for API parity; this shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of random values.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut __StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut __StdRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut __StdRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut __StdRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut __StdRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut __StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut __StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut __StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut __StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given arms.
    ///
    /// # Panics
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut __StdRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`).
    pub mod collection {
        //! Collection strategies.
        use super::super::{__StdRng, Strategy};
        use rand::Rng;

        /// Strategy for vectors with length drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut __StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Defines property tests. Each test body runs `config.cases` times with
/// freshly drawn inputs; `prop_assert*` failures report the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __seed = 0x5EED_C0DE_u64 ^ (stringify!($name).len() as u64)
                    ^ (stringify!($name).as_bytes()[0] as u64) << 8;
                let mut __rng =
                    <$crate::__StdRng as $crate::__SeedableRng>::seed_from_u64(__seed);
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("property {} failed on case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Uniform choice over strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(
            n in 1usize..10,
            v in prop::collection::vec((0i64..100).prop_map(|x| x * 2), 1..5),
            tag in prop_oneof![Just("a"), Just("b")],
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in &v {
                prop_assert_eq!(x % 2, 0, "odd value {}", x);
            }
            prop_assert!(tag == "a" || tag == "b");
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_reports_case() {
        proptest! {
            @cfg (ProptestConfig { cases: 4, ..ProptestConfig::default() })
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
