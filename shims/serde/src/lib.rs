//! Offline stand-in for `serde` (+ re-exported derive macros).
//!
//! The build container has no crates.io access, so this shim provides a
//! value-model serde: `Serialize` lowers a type to a [`Value`] tree and
//! `Deserialize` rebuilds it. The companion `serde_json` shim renders and
//! parses `Value` as JSON, and the `serde_derive` shim derives both
//! traits for plain structs and enums. The wire format is self-consistent
//! within this workspace (maps serialize as arrays of `[key, value]`
//! pairs; enums are externally tagged like real serde).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized value tree (also re-exported as `serde_json::Value`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (f64 carries every integer the workspace serializes).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Field of an object (`Null` when missing or not an object).
    pub fn get_field(&self, name: &str) -> &Value {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Element of an array (`Null` when out of range or not an array).
    pub fn get_index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Num(n) if *n == *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, name: &str) -> &Value {
        self.get_field(name)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        self.get_index(i)
    }
}

/// Serialization/deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    /// An error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }

    /// Prepends a location (e.g. `Struct.field`) to the message, so a
    /// deserialization failure deep in a document names the offending
    /// field path (`Spec.sim.cycle: expected u64 in range, got Null`).
    pub fn context(self, path: &str) -> Self {
        Self(format!("{path}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a type to a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds a type from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    // Reject fractional and out-of-range numbers instead
                    // of letting `as` saturate/truncate silently (real
                    // serde_json errors here too).
                    Value::Num(n)
                        if n.fract() == 0.0
                            && *n >= <$t>::MIN as f64
                            && *n <= <$t>::MAX as f64 =>
                    {
                        Ok(*n as $t)
                    }
                    other => Err(Error::msg(format!(
                        "expected {} in range, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected number for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Static-str fields (cell profile names) deserialize by leaking a
        // copy — these are a handful of short, long-lived labels.
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($t::from_value(v.get_index($n))?,)+))
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Maps serialize as arrays of `[key, value]` pairs — uniform for any
/// serializable key type (real serde_json restricts keys to strings; the
/// workspace has integer- and tuple-keyed maps).
macro_rules! impl_map {
    ($map:ident, $($bound:path),+) => {
        impl<K: Serialize, V: Serialize> Serialize for $map<K, V> {
            fn to_value(&self) -> Value {
                Value::Array(
                    self.iter()
                        .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                        .collect(),
                )
            }
        }
        impl<K: Deserialize $(+ $bound)+, V: Deserialize> Deserialize for $map<K, V> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => items
                        .iter()
                        .map(|pair| {
                            Ok((K::from_value(pair.get_index(0))?, V::from_value(pair.get_index(1))?))
                        })
                        .collect(),
                    other => Err(Error::msg(format!("expected map array, got {other:?}"))),
                }
            }
        }
    };
}

impl_map!(BTreeMap, Ord);
impl_map!(HashMap, std::hash::Hash, Eq);

macro_rules! impl_set {
    ($set:ident, $($bound:path),+) => {
        impl<T: Serialize> Serialize for $set<T> {
            fn to_value(&self) -> Value {
                Value::Array(self.iter().map(Serialize::to_value).collect())
            }
        }
        impl<T: Deserialize $(+ $bound)+> Deserialize for $set<T> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => items.iter().map(T::from_value).collect(),
                    other => Err(Error::msg(format!("expected set array, got {other:?}"))),
                }
            }
        }
    };
}

impl_set!(BTreeSet, Ord);
impl_set!(HashSet, std::hash::Hash, Eq);

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::Num(self.as_secs() as f64)),
            ("nanos".to_string(), Value::Num(self.subsec_nanos() as f64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(v.get_field("secs"))?;
        let nanos = u32::from_value(v.get_field("nanos"))?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(i64::from_value(&(-42i64).to_value()).unwrap(), -42);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1f32);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_roundtrip() {
        let m: BTreeMap<(u32, String), Vec<f32>> =
            [((1, "a".into()), vec![0.5, -1.5])].into_iter().collect();
        let back: BTreeMap<(u32, String), Vec<f32>> =
            Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
        let d = Duration::new(3, 450);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn indexing_missing_fields_yields_null() {
        let v = Value::Object(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v["a"], Value::Num(1.0));
        assert_eq!(v["b"], Value::Null);
        assert_eq!(v[3], Value::Null);
    }
}
