//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this shim implements
//! the narrow API surface the workspace uses: `StdRng` (xoshiro256++
//! seeded via SplitMix64 — deterministic across platforms), the
//! `Rng`/`SeedableRng` traits with `gen_range`/`gen_bool`, and
//! `seq::SliceRandom::shuffle`. Statistical quality is more than adequate
//! for the workspace's samplers and tests; it is *not* a cryptographic
//! generator and does not reproduce upstream `rand` streams bit-for-bit.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply bucket: bias < 2^-64, irrelevant here.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // Closed float ranges sample the half-open interval; the endpoint
        // has measure zero, which matches upstream closely enough here.
        (*self.start()..*self.end()).sample_single(rng)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (*self.start()..*self.end()).sample_single(rng)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling helpers, auto-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from a range (`rand::Rng::gen_range`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice utilities (`rand::seq`).
    use super::{Rng, RngCore};

    /// In-place shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&g));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice untouched"
        );
    }
}
