//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark harness surface the workspace uses
//! (`criterion_group!`/`criterion_main!`, groups, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`) with a simple
//! median-of-samples measurement. Passing `--test` (as
//! `cargo bench -- --test` does) runs every routine once as a smoke test
//! without timing.
//!
//! When the `CTLM_BENCH_JSON` environment variable names a file, results
//! are merged into it as `{"group/bench": {"median_ns": ..}}` — the
//! mechanism the repo uses to produce `BENCH_PR1.json`. A merge refreshes
//! each entry's median while preserving other annotations (such as
//! `"host_sensitive": true`) and records the machine's fingerprint under
//! a `"_meta"` entry so `bench_check` can flag cross-host comparisons.

use std::time::Instant;

use serde::Value;

/// The benchmark harness.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self::from_args()
    }
}

impl Criterion {
    /// Builds the harness from `cargo bench` CLI arguments.
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self {
            test_mode,
            filter,
            sample_size: 20,
            results: Vec::new(),
        }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        self.run(id.to_string(), sample_size, f);
        self
    }

    fn run(&mut self, id: String, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok (smoke)");
            return;
        }
        let median = b.median_ns();
        println!("{id:<55} median {:>12}", format_ns(median));
        self.results.push((id, median));
    }

    /// Prints the final summary and merges results into the JSON report
    /// named by `CTLM_BENCH_JSON` (when set).
    pub fn final_summary(&self) {
        if self.test_mode || self.results.is_empty() {
            return;
        }
        let Ok(path) = std::env::var("CTLM_BENCH_JSON") else {
            return;
        };
        let mut doc = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str::<Value>(&s).ok())
            .and_then(|v| match v {
                Value::Object(pairs) => Some(pairs),
                _ => None,
            })
            .unwrap_or_default();
        for (id, median) in &self.results {
            let mut fields = vec![("median_ns".to_string(), Value::Num(*median))];
            // Refresh the median but keep any other annotations the
            // checked-in report carries (e.g. `"host_sensitive": true`,
            // which downgrades `bench_check` regressions to warnings).
            if let Some((_, Value::Object(old))) = doc.iter().find(|(k, _)| k == id) {
                for (k, v) in old {
                    if k != "median_ns" {
                        fields.push((k.clone(), v.clone()));
                    }
                }
            }
            let entry = Value::Object(fields);
            if let Some(slot) = doc.iter_mut().find(|(k, _)| k == id) {
                slot.1 = entry;
            } else {
                doc.push((id.clone(), entry));
            }
        }
        // Bench medians are only comparable within one machine, so record
        // where this run happened. The entry has no `median_ns` field and
        // is therefore invisible to the median comparison itself.
        let meta = Value::Object(vec![("host".to_string(), host_fingerprint())]);
        if let Some(slot) = doc.iter_mut().find(|(k, _)| k == "_meta") {
            slot.1 = meta;
        } else {
            doc.push(("_meta".to_string(), meta));
        }
        let rendered = serde_json::to_string(&Value::Object(doc)).expect("render bench report");
        std::fs::write(&path, pretty(&rendered)).expect("write bench report");
    }
}

/// Best-effort host fingerprint for the report's `_meta` entry. Field
/// shape mirrors `ctlm-telemetry`'s `HostFingerprint` so `bench_check`
/// can deserialize it directly (the shim stays dependency-free).
fn host_fingerprint() -> Value {
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    Value::Object(vec![
        ("cpu_model".to_string(), Value::Str(cpu_model)),
        ("cores".to_string(), Value::Num(cores as f64)),
    ])
}

/// Inserts line breaks after object commas so the checked-in report diffs
/// line by line.
fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() + 64);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for c in json.chars() {
        match c {
            '"' if !escape => in_str = !in_str,
            '\\' if in_str => {
                escape = !escape;
                out.push(c);
                continue;
            }
            _ => {}
        }
        escape = false;
        if !in_str && (c == '{' || c == '}') {
            depth = if c == '{' {
                depth + 1
            } else {
                depth.saturating_sub(1)
            };
        }
        out.push(c);
        if !in_str && c == ',' && depth == 1 {
            out.push('\n');
        }
        if !in_str && c == '{' && depth == 1 {
            out.push('\n');
        }
    }
    out.push('\n');
    out
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A benchmark group (named prefix + per-group sample size).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks a routine under `group/name`.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_bench_id());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run(id, samples, f);
        self
    }

    /// Benchmarks a routine with an input under `group/name/param`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.render());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run(id, samples, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchId {
    /// Renders the id fragment.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.render()
    }
}

/// A `name/parameter` benchmark id.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayable parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self {
            name: name.into(),
            param: param.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.name, self.param)
    }
}

/// Batch sizing hint for `iter_batched` (measurement treats all the same).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input (one routine call per sample).
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Measures a single benchmark routine.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm up and size the inner loop for ~5 ms per sample.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let inner = ((5e-3 / once) as usize).clamp(1, 100_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..inner {
                std::hint::black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() * 1e9 / inner as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let mid = self.samples.len() / 2;
        if self.samples.len().is_multiple_of(2) {
            (self.samples[mid - 1] + self.samples[mid]) / 2.0
        } else {
            self.samples[mid]
        }
    }
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) -> Vec<(String, f64)> {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        c.results.clone()
    }

    #[test]
    fn records_group_and_param_ids() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
            sample_size: 3,
            results: Vec::new(),
        };
        let results = quick(&mut c);
        let ids: Vec<&str> = results.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, vec!["g/sum", "g/param/7"]);
        assert!(results.iter().all(|&(_, ns)| ns > 0.0));
    }

    #[test]
    fn summary_merge_keeps_annotations_and_records_host() {
        let path = std::env::temp_dir().join("ctlm_criterion_shim_merge_test.json");
        std::fs::write(
            &path,
            r#"{"g/sum": {"median_ns": 10.0, "host_sensitive": true}}"#,
        )
        .unwrap();
        std::env::set_var("CTLM_BENCH_JSON", &path);
        let c = Criterion {
            test_mode: false,
            filter: None,
            sample_size: 3,
            results: vec![("g/sum".to_string(), 42.0)],
        };
        c.final_summary();
        std::env::remove_var("CTLM_BENCH_JSON");
        let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        let entry = doc.get_field("g/sum");
        assert_eq!(entry.get_field("median_ns").as_f64(), Some(42.0));
        assert!(matches!(
            entry.get_field("host_sensitive"),
            Value::Bool(true)
        ));
        let host = doc.get_field("_meta").get_field("host");
        assert!(host.get_field("cpu_model").as_str().is_some());
        assert!(host.get_field("cores").as_f64().unwrap_or(0.0) >= 1.0);
    }

    #[test]
    fn test_mode_skips_measurement() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            sample_size: 3,
            results: Vec::new(),
        };
        let results = quick(&mut c);
        assert!(results.is_empty());
    }
}
