//! Offline stand-in for `rand_distr`.
//!
//! Pinned workspace-wide for future samplers; the trace generator
//! currently rolls its own bounded Pareto/Zipf (see
//! `ctlm_trace::pareto`), so only the normal distribution is provided.

use rand::{Rng, RngCore};

/// A distribution that can be sampled with a generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Normal (Gaussian) distribution via Box–Muller.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    /// Returns an error message when `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, &'static str> {
        if !(std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite()) {
            return Err("invalid normal parameters");
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_matches_moments() {
        let d = Normal::new(2.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }
}
