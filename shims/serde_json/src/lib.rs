//! Offline stand-in for `serde_json`: renders and parses the serde
//! shim's [`Value`] tree as JSON text.
//!
//! Numbers are carried as `f64` (every integer the workspace serializes —
//! ids, microsecond timestamps, tensor shapes — is far below 2^53, and
//! `f32` payloads round-trip exactly through `f64`). Integral numbers are
//! emitted without a fractional part so the output looks like ordinary
//! JSON.

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Serializes a value to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes a value to a two-space-indented JSON string (real
/// serde_json's `to_string_pretty`; like the real one, no trailing
/// newline) — for documents meant to be read, like `ctlm-lab` reports.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), 0, &mut out)?;
    Ok(out)
}

fn write_value_pretty(v: &Value, depth: usize, out: &mut String) -> Result<(), Error> {
    let pad = "  ".repeat(depth + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_value_pretty(item, depth + 1, out)?;
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(depth));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(&pad);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(val, depth + 1, out)?;
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(depth));
            out.push('}');
        }
        leaf => write_value(leaf, out)?,
    }
    Ok(())
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(e.to_string()))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like syntax (array/object literals plus
/// arbitrary serializable leaf expressions).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { $crate::__to_value(&$other) };
}

/// Implementation detail of [`json!`].
pub fn __to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            // JSON has no NaN/Infinity; erroring here (like real
            // serde_json) beats writing a document no parser accepts.
            if !n.is_finite() {
                return Err(Error::msg(format!(
                    "cannot serialize non-finite number {n}"
                )));
            }
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                write!(out, "{}", *n as i64).expect("string write");
            } else {
                write!(out, "{n}").expect("string write");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected , or ] at byte {}, got {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected , or }} at byte {}, got {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error::msg(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error::msg(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::msg(e.to_string()))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(e.to_string()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| Error::msg(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let v = json!({
            "name": "cell-c",
            "ids": [1, 2, 3],
            "nested": {"ok": true, "none": null},
            "f": 0.25
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_escapes_and_negatives() {
        let v: Value = from_str(r#"{"s":"a\"b\ncA","n":-12.5e2}"#).unwrap();
        assert_eq!(v["s"], Value::Str("a\"b\nc\u{41}".into()));
        assert_eq!(v["n"], Value::Num(-1250.0));
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(
            to_string(&json!([1, 2.5, 1000000000000u64])).unwrap(),
            "[1,2.5,1000000000000]"
        );
    }

    #[test]
    fn f32_payloads_roundtrip_exactly() {
        let xs = vec![0.1f32, -3.75, 1.0e-7, 123456.78];
        let text = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
    }

    #[test]
    fn pretty_output_roundtrips_and_indents() {
        let v = json!({"a": [1, 2], "b": {"c": null}, "empty": []});
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": null\n  },\n  \"empty\": []\n}"
        );
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_non_finite_numbers_at_serialization() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&vec![1.0f64, f64::INFINITY]).is_err());
    }

    #[test]
    fn integer_deserialization_rejects_out_of_range() {
        assert!(from_str::<Vec<u8>>("[300]").is_err());
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<i32>("1.5").is_err());
        assert_eq!(from_str::<Vec<u8>>("[255, 0]").unwrap(), vec![255, 0]);
    }
}
