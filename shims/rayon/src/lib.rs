//! Offline stand-in for `rayon`, built on a persistent worker pool.
//!
//! The build container has no crates.io access, so this shim implements
//! the combinator chains the workspace actually uses:
//!
//! * `slice.par_chunks_mut(n)[.enumerate()].for_each(f)`
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` / `.filter(p).count()`
//! * `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`
//!
//! Work is split into one contiguous range per available worker. Ranges
//! run on the lazily started worker pool (`pool` module) — long-lived
//! threads fed through a shared injector queue, like rayon's global pool (minus work-stealing:
//! contiguous pre-split ranges make a deque-per-worker unnecessary).
//! The calling thread executes the first range itself and *helps* drain
//! the queue while it waits, so nested parallel calls cannot deadlock
//! the fixed-size pool. On a single-core host (or under
//! `RAYON_NUM_THREADS=1`) everything runs inline and no thread is ever
//! spawned.
//!
//! Compared to the previous scoped-thread design, a parallel call costs
//! one channel send per range instead of one `thread::spawn`: a
//! 4096-element `par_iter().map().collect()` at `RAYON_NUM_THREADS=4`
//! drops from ~72 µs (scoped) to ~28 µs (pool) per call on the 1-core CI
//! container — see `benches/par_dispatch.rs`. Set
//! `CTLM_RAYON_DISPATCH=scoped` to get the old per-call spawning back
//! for comparison.

mod pool;

/// Number of workers used for parallel calls. Honors rayon's
/// `RAYON_NUM_THREADS` override (useful for benchmarking dispatch on
/// small hosts).
fn worker_count(items: usize) -> usize {
    let cores = pool::configured_threads();
    cores.min(items).max(1)
}

/// Splits `0..len` into `parts` near-equal contiguous ranges.
fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `work` over each range of a `parts`-way split of `0..len`,
/// returning per-range results in order. Runs inline when only one worker
/// is available (or needed), so the single-core path never spawns.
fn run_split<R: Send>(len: usize, work: impl Fn(std::ops::Range<usize>) -> R + Sync) -> Vec<R> {
    let workers = worker_count(len);
    let ranges = split_ranges(len, workers);
    if workers <= 1 {
        return ranges.into_iter().map(work).collect();
    }
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    {
        let work = &work;
        let jobs: Vec<pool::Job<'_>> = results
            .iter_mut()
            .zip(ranges)
            .map(|(slot, r)| -> pool::Job<'_> { Box::new(move || *slot = Some(work(r))) })
            .collect();
        pool::run_jobs(jobs);
    }
    results
        .into_iter()
        .map(|r| r.expect("every range job ran"))
        .collect()
}

pub use pool::configured_threads as current_num_threads;

pub mod prelude {
    //! Drop-in `rayon::prelude`.
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------------
// par_chunks_mut
// ---------------------------------------------------------------------------

/// `slice.par_chunks_mut(n)` entry point.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel mutable chunks of `chunk_size` elements.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            data: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Applies `f` to every chunk, in parallel.
    pub fn for_each(self, f: impl Fn(&mut [T]) + Sync + Send) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel chunks.
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Applies `f` to every `(index, chunk)` pair, in parallel.
    pub fn for_each(self, f: impl Fn((usize, &mut [T])) + Sync + Send) {
        let chunk_size = self.inner.chunk_size;
        let data = self.inner.data;
        let n_chunks = data.len().div_ceil(chunk_size);
        if n_chunks == 0 {
            return;
        }
        let workers = worker_count(n_chunks);
        if workers <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        // Hand each worker a contiguous run of whole chunks.
        let ranges = split_ranges(n_chunks, workers);
        let f = &f;
        let mut jobs: Vec<pool::Job<'_>> = Vec::with_capacity(ranges.len());
        let mut rest = data;
        for range in ranges {
            if range.is_empty() {
                continue;
            }
            let elems = ((range.end - range.start) * chunk_size).min(rest.len());
            let (head, tail) = rest.split_at_mut(elems);
            rest = tail;
            let first_chunk = range.start;
            jobs.push(Box::new(move || {
                for (i, chunk) in head.chunks_mut(chunk_size).enumerate() {
                    f((first_chunk + i, chunk));
                }
            }));
        }
        pool::run_jobs(jobs);
    }
}

// ---------------------------------------------------------------------------
// par_iter over slices
// ---------------------------------------------------------------------------

/// `slice.par_iter()` entry point (named as rayon's by-ref trait).
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Sync + 'a;

    /// Parallel shared iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// Alias trait so `use rayon::prelude::*` also exposes `par_chunks`-style
/// helpers on slices (only the shared-iterator entry is needed today).
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iterator over the slice.
    fn par_slice_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_slice_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Parallel shared-reference iterator.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element.
    pub fn map<U, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParIterMap<'a, T, F> {
        ParIterMap {
            slice: self.slice,
            f,
        }
    }

    /// Filters elements.
    pub fn filter<P: Fn(&&'a T) -> bool + Sync>(self, p: P) -> ParIterFilter<'a, T, P> {
        ParIterFilter {
            slice: self.slice,
            p,
        }
    }

    /// Applies `f` to every element, in parallel.
    pub fn for_each(self, f: impl Fn(&'a T) + Sync + Send) {
        let slice = self.slice;
        run_split(slice.len(), |r| {
            for item in &slice[r] {
                f(item);
            }
        });
    }

    /// Number of elements.
    pub fn count(self) -> usize {
        self.slice.len()
    }
}

/// `par_iter().map(f)`.
pub struct ParIterMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParIterMap<'a, T, F> {
    /// Collects mapped values in order.
    pub fn collect<C: FromMapped<U>>(self) -> C {
        let slice = self.slice;
        let f = &self.f;
        let parts = run_split(slice.len(), |r| slice[r].iter().map(f).collect::<Vec<U>>());
        C::from_parts(parts)
    }

    /// Sums mapped values.
    pub fn sum<S: std::iter::Sum<U> + Send + std::iter::Sum<S>>(self) -> S {
        let slice = self.slice;
        let f = &self.f;
        run_split(slice.len(), |r| slice[r].iter().map(f).sum::<S>())
            .into_iter()
            .sum()
    }
}

/// `par_iter().filter(p)`.
pub struct ParIterFilter<'a, T, P> {
    slice: &'a [T],
    p: P,
}

impl<'a, T: Sync, P: Fn(&&'a T) -> bool + Sync> ParIterFilter<'a, T, P> {
    /// Counts matching elements.
    pub fn count(self) -> usize {
        let slice = self.slice;
        let p = &self.p;
        run_split(slice.len(), |r| slice[r].iter().filter(|t| p(t)).count())
            .into_iter()
            .sum()
    }

    /// Collects matching elements in order.
    pub fn collect<C: FromMapped<&'a T>>(self) -> C {
        let slice = self.slice;
        let p = &self.p;
        let parts = run_split(slice.len(), |r| {
            slice[r].iter().filter(|t| p(t)).collect::<Vec<&T>>()
        });
        C::from_parts(parts)
    }
}

/// Order-preserving concatenation target for parallel collects.
pub trait FromMapped<U>: Sized {
    /// Builds the collection from in-order per-worker parts.
    fn from_parts(parts: Vec<Vec<U>>) -> Self;
}

impl<U> FromMapped<U> for Vec<U> {
    fn from_parts(parts: Vec<Vec<U>>) -> Self {
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// into_par_iter over ranges
// ---------------------------------------------------------------------------

/// `range.into_par_iter()` entry point.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// The parallel iterator.
    type Iter;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Maps every index.
    pub fn map<U: Send, F: Fn(usize) -> U + Sync>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Applies `f` to every index, in parallel.
    pub fn for_each(self, f: impl Fn(usize) + Sync + Send) {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        run_split(len, |r| {
            for i in r {
                f(start + i);
            }
        });
    }
}

/// `range.into_par_iter().map(f)`.
pub struct ParRangeMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl<U: Send, F: Fn(usize) -> U + Sync> ParRangeMap<F> {
    /// Collects mapped values in order.
    pub fn collect<C: FromMapped<U>>(self) -> C {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        let parts = run_split(len, |r| r.map(|i| f(start + i)).collect::<Vec<U>>());
        C::from_parts(parts)
    }

    /// Sums mapped values.
    pub fn sum<S: std::iter::Sum<U> + Send + std::iter::Sum<S>>(self) -> S {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        run_split(len, |r| r.map(|i| f(start + i)).sum::<S>())
            .into_iter()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 10) as u32 + 1);
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
        let src: Vec<i64> = (0..500).collect();
        let mapped: Vec<i64> = src.par_iter().map(|&x| x + 1).collect();
        assert_eq!(mapped, (1..=500).collect::<Vec<_>>());
    }

    #[test]
    fn filter_count_matches_sequential() {
        let src: Vec<u64> = (0..997).collect();
        let par = src.par_iter().filter(|&&x| x % 3 == 0).count();
        assert_eq!(par, src.iter().filter(|&&x| x % 3 == 0).count());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: Vec<f32> = Vec::new();
        empty
            .par_chunks_mut(4)
            .for_each(|_| panic!("no chunks expected"));
        assert_eq!(empty.par_iter().filter(|_| true).count(), 0);
        let v: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }
}
