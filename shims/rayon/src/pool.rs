//! The persistent worker pool behind every parallel call.
//!
//! Design: a single injector queue (`std::sync::mpsc` behind mutexes)
//! feeds `configured_threads() - 1` long-lived worker threads, started
//! lazily on the first multi-worker parallel call. [`run_jobs`] submits
//! all but the first job, runs the first on the calling thread, then
//! *helps* drain the queue while waiting for its latch — the helping
//! loop is what makes nested parallel calls safe on a fixed-size pool
//! (a waiting caller never just blocks while runnable jobs sit queued).
//!
//! ## Safety
//!
//! Jobs borrow the caller's stack (`Job<'scope>`), but the queue needs
//! `'static` closures, so submission transmutes the lifetime away. This
//! is sound because [`run_jobs`] does not return until its latch counts
//! every submitted job complete — including jobs that panicked, whose
//! payload is re-raised on the caller — so no borrowed data is ever
//! touched after the borrow ends. This is the same argument rayon's
//! scoped API makes.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of parallel work borrowed from a caller's scope.
pub type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

/// Completion latch shared between a caller and its submitted jobs.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload observed among the jobs, re-raised by the
    /// caller after all jobs finished.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Self {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn complete(&self, panicked: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = panicked {
            let mut slot = self.panic.lock().unwrap();
            slot.get_or_insert(p);
        }
        let mut rem = self.remaining.lock().unwrap();
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().unwrap() == 0
    }
}

/// A queued task: the job plus the latch it completes.
struct QueuedJob {
    job: StaticJob,
    latch: Arc<Latch>,
}

impl QueuedJob {
    /// Runs the job, catching panics into the latch.
    fn execute(self) {
        let result = catch_unwind(AssertUnwindSafe(self.job));
        self.latch.complete(result.err());
    }
}

struct Pool {
    tx: Mutex<Sender<QueuedJob>>,
    rx: Mutex<Receiver<QueuedJob>>,
}

impl Pool {
    /// Pops one queued job without blocking (used by helping waiters and
    /// as the workers' fast path).
    fn try_pop(&self) -> Option<QueuedJob> {
        match self.rx.try_lock() {
            Ok(rx) => rx.try_recv().ok(),
            Err(_) => None,
        }
    }
}

/// Worker threads block here between jobs; a tiny timeout keeps the
/// receiver mutex from starving helping callers.
const WORKER_POLL: std::time::Duration = std::time::Duration::from_millis(1);

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let rx = pool.rx.lock().unwrap();
            rx.recv_timeout(WORKER_POLL)
        };
        match job {
            Ok(job) => job.execute(),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Threads used for parallel work: `RAYON_NUM_THREADS` when set (0 means
/// "all cores", matching rayon), otherwise `available_parallelism`.
pub fn configured_threads() -> usize {
    static THREADS: AtomicUsize = AtomicUsize::new(0);
    let cached = THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let n = match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(0) | None => cores,
        Some(n) => n,
    };
    THREADS.store(n.max(1), Ordering::Relaxed);
    n.max(1)
}

/// True when `CTLM_RAYON_DISPATCH=scoped` forces the pre-pool behavior
/// (per-call scoped threads) — kept for dispatch-overhead benchmarking.
fn force_scoped() -> bool {
    static SCOPED: OnceLock<bool> = OnceLock::new();
    *SCOPED.get_or_init(|| {
        std::env::var("CTLM_RAYON_DISPATCH").is_ok_and(|v| v.eq_ignore_ascii_case("scoped"))
    })
}

/// The global pool, started on first use with `configured_threads() - 1`
/// workers (the calling thread is always the remaining worker).
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = std::sync::mpsc::channel();
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            tx: Mutex::new(tx),
            rx: Mutex::new(rx),
        }));
        let workers = configured_threads().saturating_sub(1).max(1);
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("spawn pool worker");
        }
        pool
    })
}

/// Runs every job to completion, in parallel where workers allow. The
/// first job always runs on the calling thread; the rest go to the pool.
/// Panics in any job are re-raised here after all jobs finished.
pub fn run_jobs(jobs: Vec<Job<'_>>) {
    let mut jobs = jobs.into_iter();
    let Some(first) = jobs.next() else { return };
    let rest: Vec<Job<'_>> = jobs.collect();
    if rest.is_empty() {
        first();
        return;
    }
    if force_scoped() {
        std::thread::scope(|scope| {
            let handles: Vec<_> = rest.into_iter().map(|j| scope.spawn(j)).collect();
            first();
            for h in handles {
                h.join().expect("rayon-shim worker panicked");
            }
        });
        return;
    }
    let pool = pool();
    let latch = Latch::new(rest.len());
    {
        let tx = pool.tx.lock().unwrap();
        for job in rest {
            // SAFETY: see the module docs — the latch wait below keeps
            // every borrow in `job` alive until the job has finished.
            let job: StaticJob = unsafe { std::mem::transmute::<Job<'_>, StaticJob>(job) };
            tx.send(QueuedJob {
                job,
                latch: latch.clone(),
            })
            .expect("pool queue alive");
        }
    }
    // The guard waits out every submitted job even if `first` unwinds —
    // without it, a caller panic would free borrowed data while pool
    // jobs still run.
    let guard = WaitGuard { pool, latch };
    first();
    let latch = guard.finish();
    let panicked = latch.panic.lock().unwrap().take();
    if let Some(p) = panicked {
        resume_unwind(p);
    }
}

/// Waits for a latch on drop, helping drain the queue meanwhile.
struct WaitGuard {
    pool: &'static Pool,
    latch: Arc<Latch>,
}

impl WaitGuard {
    /// Waits and hands the latch back (the normal, non-unwinding path).
    fn finish(self) -> Arc<Latch> {
        self.wait();
        let latch = self.latch.clone();
        std::mem::forget(self);
        latch
    }

    /// Help while waiting: drain runnable jobs (ours or a nested
    /// call's) instead of blocking on a fixed-size pool.
    fn wait(&self) {
        while !self.latch.is_done() {
            match self.pool.try_pop() {
                Some(job) => job.execute(),
                None => {
                    let rem = self.latch.remaining.lock().unwrap();
                    if *rem > 0 {
                        // Tiny timeout: a job may land in the queue
                        // rather than complete our latch.
                        let _ = self.latch.done.wait_timeout(rem, WORKER_POLL).unwrap();
                    }
                }
            }
        }
    }
}

impl Drop for WaitGuard {
    fn drop(&mut self) {
        self.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn jobs_all_run_and_borrow_caller_data() {
        let counter = AtomicU32::new(0);
        let jobs: Vec<Job<'_>> = (0..8)
            .map(|_| -> Job<'_> {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        run_jobs(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_run_jobs_completes() {
        let outer = AtomicU32::new(0);
        let jobs: Vec<Job<'_>> = (0..4)
            .map(|_| -> Job<'_> {
                Box::new(|| {
                    let inner = AtomicU32::new(0);
                    let inner_jobs: Vec<Job<'_>> = (0..4)
                        .map(|_| -> Job<'_> {
                            Box::new(|| {
                                inner.fetch_add(1, Ordering::SeqCst);
                            })
                        })
                        .collect();
                    run_jobs(inner_jobs);
                    outer.fetch_add(inner.load(Ordering::SeqCst), Ordering::SeqCst);
                })
            })
            .collect();
        run_jobs(jobs);
        assert_eq!(outer.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panics_propagate_after_all_jobs_finish() {
        let done = AtomicU32::new(0);
        let done_ref = &done;
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Job<'_>> = (0..4)
                .map(|i| -> Job<'_> {
                    Box::new(move || {
                        if i == 2 {
                            panic!("boom");
                        }
                        done_ref.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            run_jobs(jobs);
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(done.load(Ordering::SeqCst), 3, "other jobs still ran");
    }
}
