//! # ctlm — Continuous Transfer Learning for real-time cluster scheduling
//!
//! Facade crate for the reproduction of *“Enhancing Cluster Scheduling in
//! HPC: A Continuous Transfer Learning for Real-Time Optimization”*
//! (Sliwko & Mizera-Pietraszko, IEEE IPDPSW 2025). It re-exports the
//! workspace crates under one roof:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`sim`] | `ctlm-sim` | deterministic discrete-event simulation kernel |
//! | [`trace`] | `ctlm-trace` | synthetic GCD-like workload traces |
//! | [`agocs`] | `ctlm-agocs` | AGOCS-style replay simulator + dataset generation |
//! | [`tensor`] | `ctlm-tensor` | dense/sparse matrix substrate |
//! | [`nn`] | `ctlm-nn` | the PyTorch-slice NN framework |
//! | [`data`] | `ctlm-data` | CO compaction, CO-EL/CO-VV encodings, metrics |
//! | [`baselines`] | `ctlm-baselines` | MLP / Ridge / SGD / Voting baselines |
//! | [`core`] | `ctlm-core` | **the CTLM growing model and pipeline** |
//! | [`sched`] | `ctlm-sched` | the Fig. 3 enhanced scheduler (kernel components) |
//! | [`autoscale`] | `ctlm-autoscale` | elastic fleet control plane (policies, warm pools, drain) |
//! | [`telemetry`] | `ctlm-telemetry` | deterministic metrics, bounded tracing, host/perf attribution |
//! | [`lab`] | `ctlm-lab` | declarative experiment harness (specs, sweeps, reports) |
//!
//! ## Quickstart
//!
//! ```
//! use ctlm::prelude::*;
//!
//! // 1. Generate a scaled-down clusterdata-2019c-like trace.
//! let trace = TraceGenerator::generate_cell(
//!     CellSet::C2019c,
//!     Scale { machines: 100, collections: 300, seed: 42 },
//! );
//! // 2. Replay it: constraint matching, anomaly correction, datasets.
//! let replay = Replayer::default().replay(&trace);
//! assert!(!replay.steps.is_empty());
//! // 3. Continuously train the growing model across the steps.
//! let cfg = TrainConfig { epochs_limit: 30, max_attempts: 2, ..TrainConfig::default() };
//! let run = run_model_over_steps(ModelKind::Growing, &replay.steps, cfg, 7);
//! assert!(run.avg_accuracy > 0.5);
//! ```

pub use ctlm_agocs as agocs;
pub use ctlm_autoscale as autoscale;
pub use ctlm_baselines as baselines;
pub use ctlm_core as core;
pub use ctlm_data as data;
pub use ctlm_lab as lab;
pub use ctlm_nn as nn;
pub use ctlm_sched as sched;
pub use ctlm_sim as sim;
pub use ctlm_telemetry as telemetry;
pub use ctlm_tensor as tensor;
pub use ctlm_trace as trace;

/// The most common imports in one place.
pub mod prelude {
    pub use ctlm_agocs::{ReplayConfig, Replayer};
    pub use ctlm_core::pipeline::{
        run_baseline_over_steps, run_model_over_steps, BaselineKind, ModelKind,
    };
    pub use ctlm_core::{GrowingModel, ModelRegistry, TaskCoAnalyzer, TrainConfig};
    pub use ctlm_data::dataset::{group_for_count, Dataset, NUM_GROUPS};
    pub use ctlm_data::metrics::Evaluation;
    pub use ctlm_sched::engine::{arrivals_from_trace, SimConfig, Simulator};
    pub use ctlm_sched::scheduler::{Enhanced, LiveRegistry, MainOnly, OracleEnhanced, Scheduler};
    pub use ctlm_trace::{CellSet, Scale, TraceGenerator};
}
