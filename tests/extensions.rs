//! Integration tests for the implemented §VI future-work extensions:
//! hybrid analysis, attribute expiry, and multi-format export — exercised
//! on real replayed traces rather than synthetic fixtures.

use ctlm::core::expiry::{retire, UsageTracker};
use ctlm::core::hybrid::HybridAnalyzer;
use ctlm::core::trainer::fresh_two_layer;
use ctlm::data::export::{export_string, ExportFormat};
use ctlm::prelude::*;
use ctlm::trace::generator::attrs;
use ctlm::trace::{AttrValue, ConstraintOp, TaskConstraint};

fn trained_setup() -> (
    ctlm::trace::GeneratedTrace,
    ctlm::agocs::ReplayOutput,
    GrowingModel,
) {
    let trace = TraceGenerator::generate_cell(
        CellSet::C2019c,
        Scale {
            machines: 120,
            collections: 600,
            seed: 77,
        },
    );
    let replay = Replayer::default().replay(&trace);
    let cfg = TrainConfig {
        epochs_limit: 50,
        max_attempts: 2,
        ..TrainConfig::default()
    };
    let mut model = GrowingModel::new(cfg);
    for (i, step) in replay.steps.iter().enumerate() {
        model.step(&step.vv, i as u64);
    }
    (trace, replay, model)
}

#[test]
fn hybrid_analyzer_rules_over_a_trace_trained_model() {
    let (trace, replay, model) = trained_setup();
    let analyzer = TaskCoAnalyzer::new(model.to_net(), replay.vocab.clone());
    let node = trace
        .catalog
        .get(attrs::NODE_INDEX)
        .expect("node_index exists");
    let hybrid = HybridAnalyzer::new(analyzer, [node]);

    // Pinning to one node is rule-decided Group 0 regardless of model.
    let pinned = vec![TaskConstraint::new(
        node,
        ConstraintOp::Equal(Some(AttrValue::Int(3))),
    )];
    let v = hybrid.predict(&pinned).unwrap();
    assert_eq!(v.group, 0);
    assert!(hybrid.is_high_priority(&pinned));

    // A 2-node window can never exceed group 1 even if the model errs.
    let narrow = vec![
        TaskConstraint::new(node, ConstraintOp::GreaterThanEqual(10)),
        TaskConstraint::new(node, ConstraintOp::LessThanEqual(11)),
    ];
    let v = hybrid.predict(&narrow).unwrap();
    assert!(v.group <= 1, "2-node window predicted group {}", v.group);
}

#[test]
fn expiry_then_regrow_full_lifecycle_on_trace_vocab() {
    let (_trace, replay, model) = trained_setup();
    let vocab = replay.vocab.clone();
    let width = vocab.len();

    // Everything stale except the first 80% of columns.
    let mut tracker = UsageTracker::new();
    let keep_until = width * 4 / 5;
    for c in 0..keep_until {
        tracker.touch_machine(c, 1_000);
    }
    let mut sd = model.state_dict().unwrap().clone();
    let r = retire(&vocab, &mut sd, &tracker, 500, 0.5).unwrap();
    assert!(r.retired > 0, "some idle columns must retire");
    assert_eq!(r.vocab.len(), width - r.retired);
    // Remap is a bijection onto surviving columns.
    let mapped: std::collections::BTreeSet<usize> = r.remap.iter().flatten().copied().collect();
    assert_eq!(mapped.len(), r.vocab.len());

    // The compacted model loads and predicts at the reduced width.
    let mut net = fresh_two_layer(r.vocab.len(), model.config(), 0);
    net.load_state_dict(&sd).unwrap();
    assert_eq!(net.in_features(), r.vocab.len());

    // Growing resumes afterwards by padding the compacted dict.
    ctlm::nn::state_dict::pad_input_weight(&mut sd, "fc1.weight", r.vocab.len() + 5).unwrap();
    let mut regrown = fresh_two_layer(r.vocab.len() + 5, model.config(), 1);
    regrown.load_state_dict(&sd).unwrap();
}

#[test]
fn exports_round_numbers_match_dataset() {
    let (_trace, replay, _model) = trained_setup();
    let last = replay.steps.last().unwrap();
    let ds = &last.vv;

    let svm = export_string(ds, ExportFormat::SvmLight);
    assert_eq!(svm.lines().count(), ds.len());
    // Every svmlight line starts with its label.
    for (line, &y) in svm.lines().zip(ds.y.iter()) {
        let first = line.split_whitespace().next().unwrap();
        assert_eq!(first.parse::<u8>().unwrap(), y);
    }

    let csv = export_string(ds, ExportFormat::Csv);
    assert_eq!(csv.lines().count(), ds.len() + 1, "header + rows");
    let header_cols = csv.lines().next().unwrap().split(',').count();
    assert_eq!(header_cols, ds.features_count() + 1, "features + label");

    let jsonl = export_string(ds, ExportFormat::Jsonl);
    for (line, &y) in jsonl.lines().zip(ds.y.iter()) {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(v["y"], serde_json::json!(y));
    }
}
