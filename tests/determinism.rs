//! Reproducibility: every stage is a pure function of its seed.

use ctlm::prelude::*;

#[test]
fn trace_replay_training_fully_deterministic() {
    let run = || {
        let trace = TraceGenerator::generate_cell(
            CellSet::C2019d,
            Scale {
                machines: 100,
                collections: 400,
                seed: 99,
            },
        );
        let replay = Replayer::default().replay(&trace);
        let cfg = TrainConfig {
            epochs_limit: 25,
            max_attempts: 1,
            ..TrainConfig::default()
        };
        let mut model = GrowingModel::new(cfg);
        let mut accs = Vec::new();
        for (i, step) in replay.steps.iter().enumerate() {
            accs.push(model.step(&step.vv, i as u64).evaluation.accuracy);
        }
        (replay.total_rows, replay.vocab.len(), accs)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two identical runs must produce identical results");
}

#[test]
fn different_seeds_produce_different_traces() {
    let t1 = TraceGenerator::generate_cell(
        CellSet::C2011,
        Scale {
            machines: 80,
            collections: 200,
            seed: 1,
        },
    );
    let t2 = TraceGenerator::generate_cell(
        CellSet::C2011,
        Scale {
            machines: 80,
            collections: 200,
            seed: 2,
        },
    );
    assert_ne!(t1.events.len(), 0);
    assert_ne!(t1.events, t2.events);
}
