//! End-to-end integration: trace → replay → continuous learning →
//! analyzer → scheduler, across crates.

use std::sync::Arc;

use ctlm::prelude::*;
use ctlm::sched::engine::{arrivals_from_trace, compress_timeline};

fn small_replay(
    cell: CellSet,
    seed: u64,
) -> (ctlm::trace::GeneratedTrace, ctlm::agocs::ReplayOutput) {
    let trace = TraceGenerator::generate_cell(
        cell,
        Scale {
            machines: 120,
            collections: 700,
            seed,
        },
    );
    let replay = Replayer::default().replay(&trace);
    (trace, replay)
}

#[test]
fn full_pipeline_2019c() {
    let (_trace, replay) = small_replay(CellSet::C2019c, 31);
    assert!(replay.steps.len() >= 3, "expected multiple dataset steps");

    // Continuous learning across all steps.
    let cfg = TrainConfig {
        epochs_limit: 60,
        max_attempts: 3,
        ..TrainConfig::default()
    };
    let mut model = GrowingModel::new(cfg);
    let mut transfer_steps = 0;
    for (i, step) in replay.steps.iter().enumerate() {
        let out = model.step(&step.vv, i as u64);
        if out.used_transfer {
            transfer_steps += 1;
        }
        assert!(
            out.evaluation.accuracy > 0.5,
            "step {i} collapsed to accuracy {}",
            out.evaluation.accuracy
        );
    }
    assert!(
        transfer_steps >= replay.steps.len() - 1,
        "all steps after the first should transfer (got {transfer_steps})"
    );

    // The final model powers an analyzer whose predictions agree with
    // ground truth on a held-out re-encoding of the last step.
    let analyzer = TaskCoAnalyzer::new(model.to_net(), replay.vocab.clone());
    assert_eq!(analyzer.features(), replay.vocab.len());
}

#[test]
fn growing_beats_full_retrain_on_epochs_2019a() {
    let (_t, replay) = small_replay(CellSet::C2019a, 32);
    let cfg = TrainConfig {
        epochs_limit: 50,
        max_attempts: 2,
        ..TrainConfig::default()
    };
    let g = run_model_over_steps(ModelKind::Growing, &replay.steps, cfg, 1);
    let f = run_model_over_steps(ModelKind::FullyRetrain, &replay.steps, cfg, 1);
    assert!(
        g.epochs_total < f.epochs_total,
        "growing {} vs retrain {} epochs",
        g.epochs_total,
        f.epochs_total
    );
    assert!(
        g.avg_accuracy > f.avg_accuracy - 0.1,
        "accuracy gap too large"
    );
}

#[test]
fn analyzer_agrees_with_matcher_ground_truth() {
    // Train on a trace, then check analyzer predictions against the
    // matcher's ground truth on the training distribution: the paper's
    // >99 % accuracy claim, tested end-to-end at reduced scale.
    let (_trace, replay) = small_replay(CellSet::C2019c, 33);
    let cfg = TrainConfig {
        epochs_limit: 80,
        max_attempts: 3,
        ..TrainConfig::default()
    };
    let mut model = GrowingModel::new(cfg);
    for (i, step) in replay.steps.iter().enumerate() {
        model.step(&step.vv, i as u64);
    }
    let last = replay.steps.last().unwrap();
    let pred = model.to_net().predict(&last.vv.x);
    let acc = pred
        .iter()
        .zip(last.vv.y.iter())
        .filter(|(a, b)| a == b)
        .count() as f64
        / last.vv.len() as f64;
    assert!(acc > 0.85, "end-to-end accuracy {acc}");
}

#[test]
fn scheduler_integration_runs_all_policies() {
    let trace = TraceGenerator::generate_cell(
        CellSet::C2019c,
        Scale {
            machines: 100,
            collections: 400,
            seed: 34,
        },
    );
    let replay = Replayer::default().replay(&trace);
    let cfg = TrainConfig {
        epochs_limit: 40,
        max_attempts: 2,
        ..TrainConfig::default()
    };
    let mut model = GrowingModel::new(cfg);
    for (i, step) in replay.steps.iter().enumerate() {
        model.step(&step.vv, i as u64);
    }
    let analyzer = TaskCoAnalyzer::new(model.to_net(), replay.vocab.clone());

    let (mut cluster, mut arrivals) = arrivals_from_trace(&trace, 1_500);
    assert!(!arrivals.is_empty());
    // Trace arrivals span 31 days; compress onto the 20-minute sim window.
    compress_timeline(&mut arrivals, 1_200_000_000);
    let sim = Simulator::new(SimConfig {
        cycle: 1_000_000,
        attempts_per_cycle: 6,
        mean_runtime: 30_000_000,
        horizon: 1_800_000_000,
        seed: 2,
    });
    let mut policies: Vec<Box<dyn Scheduler>> = vec![
        Box::new(MainOnly),
        Box::new(Enhanced::new(Arc::new(analyzer))),
        Box::new(OracleEnhanced),
    ];
    for policy in policies.iter_mut() {
        let r = sim.run(&mut cluster, &arrivals, policy.as_mut());
        let placed_frac = r.placed.len() as f64 / arrivals.len() as f64;
        assert!(placed_frac > 0.5, "placed only {placed_frac:.2}");
    }
}

#[test]
fn co_el_new_labels_are_invisible_to_a_grown_model_co_vv_patterns_are_not() {
    // The paper's negative result: “the growing model approach worked
    // well for the CO-VV dataset but not for CO-EL, as CO-VV features can
    // be grouped for generalization, while CO-EL's label-encoded COs lack
    // overlapping properties for effective generalization.”
    //
    // The mechanism, tested deterministically: grow (zero-pad) a trained
    // model to admit new columns. A CO-EL row made of *new labels only*
    // hits exclusively zero-weight columns, so the model's output is a
    // constant — two different unseen constraint patterns are
    // indistinguishable. A CO-VV row for an unseen constraint pattern
    // still marks *known value columns*, so the model's output responds
    // to it.
    use ctlm::nn::state_dict::pad_input_weight;
    use ctlm::tensor::CsrBuilder;

    let (_t, replay) = small_replay(CellSet::C2019c, 35);
    let last = replay.steps.last().unwrap();
    let el = last.el.as_ref().unwrap();
    let vv = &last.vv;
    let cfg = TrainConfig {
        epochs_limit: 40,
        max_attempts: 2,
        ..TrainConfig::default()
    };

    // --- CO-EL: train, grow by two fresh label columns, compare.
    let mut el_model = GrowingModel::new(cfg);
    el_model.step(el, 1);
    let el_width = el.features_count();
    let mut sd = el_model.state_dict().unwrap().clone();
    pad_input_weight(&mut sd, "fc1.weight", el_width + 2).unwrap();
    let mut grown = ctlm::core::trainer::fresh_two_layer(el_width + 2, el_model.config(), 0);
    grown.load_state_dict(&sd).unwrap();
    let mut b = CsrBuilder::new(el_width + 2);
    b.push_row([(el_width, 1.0)]); // unseen label A
    b.push_row([(el_width + 1, 1.0)]); // unseen label B
    b.push_row([]); // no constraints at all
    let x = b.finish();
    let logits = grown.forward(&x);
    assert_eq!(
        logits.row(0),
        logits.row(1),
        "two distinct unseen CO-EL labels must be indistinguishable"
    );
    assert_eq!(
        logits.row(0),
        logits.row(2),
        "an unseen CO-EL label must look exactly like no constraint"
    );

    // --- CO-VV: the same grown-model surgery, but unseen *patterns* are
    // combinations of known value columns, so the model responds.
    let mut vv_model = GrowingModel::new(cfg);
    vv_model.step(vv, 1);
    let vv_net = vv_model.to_net();
    let w = vv.features_count();
    let mut b = CsrBuilder::new(w);
    // Pattern 1: almost everything unacceptable (a near-Group-0 task).
    b.push_row((1..w).map(|c| (c, 1.0)));
    // Pattern 2: nothing unacceptable (runs anywhere).
    b.push_row([]);
    let x = b.finish();
    let logits = vv_net.forward(&x);
    assert_ne!(
        logits.row(0),
        logits.row(1),
        "CO-VV patterns over known values must be distinguishable"
    );
    let pred = logits.argmax_rows();
    assert!(
        pred[0] < pred[1] || pred[0] == 0,
        "the heavily-constrained pattern should score a lower group ({} vs {})",
        pred[0],
        pred[1]
    );
}
