//! Property tests over the dataset encodings.

use proptest::prelude::*;

use ctlm_data::compaction::collapse;
use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_data::vocab::{ValueKey, ValueVocab};
use ctlm_trace::{AttrValue, ConstraintOp as Op, TaskConstraint};

fn arb_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (-3i64..12).prop_map(AttrValue::Int),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(AttrValue::from),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_value().prop_map(|v| Op::Equal(Some(v))),
        arb_value().prop_map(Op::NotEqual),
        (-3i64..12).prop_map(Op::LessThan),
        (-3i64..12).prop_map(Op::GreaterThan),
        (-3i64..12).prop_map(Op::LessThanEqual),
        (-3i64..12).prop_map(Op::GreaterThanEqual),
        Just(Op::Present),
        Just(Op::NotPresent),
    ]
}

fn vocab_10() -> ValueVocab {
    let mut v = ValueVocab::new();
    for n in 0..10 {
        v.observe(0, &AttrValue::Int(n));
    }
    for s in ["a", "b", "c"] {
        v.observe(1, &AttrValue::from(s));
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// CO-VV ground truth: a column is marked 1 exactly when the
    /// collapsed requirement rejects that column's value (or absence) —
    /// for arbitrary constraint sets.
    #[test]
    fn covv_marks_exactly_the_rejected_values(
        ops in prop::collection::vec(arb_op(), 1..4),
        attr in 0u32..2,
    ) {
        let cs: Vec<TaskConstraint> =
            ops.into_iter().map(|op| TaskConstraint::new(attr, op)).collect();
        let vocab = vocab_10();
        if let Ok(reqs) = collapse(&cs) {
            let entries = CoVvEncoder.encode_requirements(&reqs, &vocab);
            let marked: std::collections::BTreeSet<usize> =
                entries.iter().map(|&(c, _)| c).collect();
            let req = &reqs[0];
            for (col, key) in vocab.attr_columns(attr) {
                let state = match key {
                    ValueKey::Absent => None,
                    ValueKey::Value(v) => Some(v),
                };
                let rejected = !req.accepts(state);
                prop_assert_eq!(
                    marked.contains(&col),
                    rejected,
                    "column {} (key {:?}) marked={} rejected={}",
                    col, key, marked.contains(&col), rejected
                );
            }
            // Nothing outside the constrained attribute is marked.
            for &(c, v) in &entries {
                prop_assert_eq!(v, 1.0);
                prop_assert_eq!(vocab.key_at(c).unwrap().0, attr);
            }
        }
    }

    /// Widening the vocabulary never changes the encoding of an existing
    /// constraint on the old columns (append-only stability).
    #[test]
    fn covv_is_stable_under_vocab_growth(
        ops in prop::collection::vec(arb_op(), 1..4),
        extra in 1i64..8,
    ) {
        let cs: Vec<TaskConstraint> =
            ops.into_iter().map(|op| TaskConstraint::new(0, op)).collect();
        let mut vocab = vocab_10();
        if let Ok(before) = CoVvEncoder.encode(&cs, &vocab) {
            for n in 0..extra {
                vocab.observe(0, &AttrValue::Int(100 + n));
            }
            let after = CoVvEncoder.encode(&cs, &vocab).unwrap();
            let old_cols = 11; // (none) + 10 values of attr 0... attr1 cols unaffected
            let before_old: Vec<_> =
                before.iter().filter(|&&(c, _)| c < old_cols).collect();
            let after_old: Vec<_> =
                after.iter().filter(|&&(c, _)| c < old_cols).collect();
            prop_assert_eq!(before_old, after_old);
        }
    }
}
