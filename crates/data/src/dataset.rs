//! Labelled sparse datasets.

use serde::{Deserialize, Serialize};

use ctlm_tensor::{Csr, CsrBuilder};

/// The paper's 26 suitable-node groups: Group 0 = exactly one node,
/// Groups 1–25 = buckets of `group_width` nodes.
pub const NUM_GROUPS: usize = 26;

/// Maps a suitable-node count to its group. Width is the scaled bucket
/// size (500 at full 2011/2019c/2019d scale, 360 for 2019a).
///
/// * `0` suitable nodes: the task is unschedulable; the paper's datasets
///   contain only schedulable tasks, but replay can transiently produce 0
///   (machines removed) — callers typically skip those rows. We map it to
///   group 0 (the "critical" class) as the conservative choice.
/// * `1` → Group 0.
/// * otherwise → `1 + (n - 2) / width`, clamped to 25.
pub fn group_for_count(suitable: usize, width: usize) -> u8 {
    debug_assert!(width >= 1);
    match suitable {
        0 | 1 => 0,
        n => (1 + (n - 2) / width.max(1)).min(NUM_GROUPS - 1) as u8,
    }
}

/// A labelled sparse dataset: one row per (constrained) task, one column
/// per feature, one class label per row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix.
    pub x: Csr,
    /// Class labels (`0..NUM_GROUPS`).
    pub y: Vec<u8>,
    /// Number of classes (always [`NUM_GROUPS`] in this reproduction; kept
    /// explicit so the crates stay decoupled from the paper constant).
    pub n_classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature-array width.
    pub fn features_count(&self) -> usize {
        self.x.cols()
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &y in &self.y {
            counts[y as usize] += 1;
        }
        counts
    }

    /// Row subset in the given order (labels follow).
    pub fn select(&self, rows: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(rows),
            y: rows.iter().map(|&r| self.y[r]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Widens the feature array (vocabulary growth between steps).
    pub fn widen(&mut self, new_cols: usize) {
        self.x.widen(new_cols);
    }
}

/// Incremental dataset builder used by the replayer.
#[derive(Clone, Debug)]
pub struct DatasetBuilder {
    x: CsrBuilder,
    y: Vec<u8>,
    n_classes: usize,
}

impl DatasetBuilder {
    /// A builder with an initial feature width.
    pub fn new(cols: usize, n_classes: usize) -> Self {
        Self {
            x: CsrBuilder::new(cols),
            y: Vec::new(),
            n_classes,
        }
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when no row has been pushed.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Current feature-array width.
    pub fn cols(&self) -> usize {
        self.x.cols()
    }

    /// Widens the feature array to match vocabulary growth.
    pub fn widen(&mut self, cols: usize) {
        self.x.widen(cols);
    }

    /// Appends one labelled sample.
    ///
    /// # Panics
    /// Panics if the label is out of range.
    pub fn push(&mut self, entries: impl IntoIterator<Item = (usize, f32)>, label: u8) {
        assert!(
            (label as usize) < self.n_classes,
            "label {label} out of range"
        );
        self.x.push_row(entries);
        self.y.push(label);
    }

    /// Snapshots the accumulated data as a dataset with the given final
    /// width (≥ the builder's current width).
    pub fn snapshot(&self, cols: usize) -> Dataset {
        let b = self.x.clone();
        Dataset {
            x: b.finish_with_cols(cols),
            y: self.y.clone(),
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_for_count_matches_paper_buckets() {
        let w = 500; // full-scale width
        assert_eq!(group_for_count(1, w), 0);
        assert_eq!(group_for_count(2, w), 1);
        assert_eq!(group_for_count(501, w), 1);
        assert_eq!(group_for_count(502, w), 2);
        assert_eq!(group_for_count(1001, w), 2);
        assert_eq!(group_for_count(12_500, w), 25);
        assert_eq!(group_for_count(1_000_000, w), 25, "clamped to 25");
    }

    #[test]
    fn group_for_count_zero_maps_to_group0() {
        assert_eq!(group_for_count(0, 500), 0);
    }

    #[test]
    fn group_for_count_small_width() {
        // Scaled cells use width ~10.
        assert_eq!(group_for_count(1, 10), 0);
        assert_eq!(group_for_count(11, 10), 1);
        assert_eq!(group_for_count(12, 10), 2);
    }

    #[test]
    fn group_covers_2019a_full_cell() {
        // 9.4k machines, width 360: the biggest group is 25.
        assert_eq!(group_for_count(9_400, 360), 25);
        assert!(group_for_count(9_000, 360) <= 25);
    }

    #[test]
    fn builder_snapshot_roundtrip() {
        let mut b = DatasetBuilder::new(4, NUM_GROUPS);
        b.push([(0, 1.0)], 0);
        b.push([(3, 1.0), (1, 1.0)], 5);
        b.widen(6);
        b.push([(5, 1.0)], 25);
        let d = b.snapshot(6);
        assert_eq!(d.len(), 3);
        assert_eq!(d.features_count(), 6);
        assert_eq!(d.y, vec![0, 5, 25]);
        assert_eq!(d.x.get(2, 5), 1.0);
        // The builder keeps accumulating after a snapshot.
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn class_counts_and_select() {
        let mut b = DatasetBuilder::new(2, NUM_GROUPS);
        b.push([(0, 1.0)], 0);
        b.push([(1, 1.0)], 1);
        b.push([(0, 1.0), (1, 1.0)], 1);
        let d = b.snapshot(2);
        let counts = d.class_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        let s = d.select(&[2, 0]);
        assert_eq!(s.y, vec![1, 0]);
        assert_eq!(s.x.get(0, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_bad_label() {
        let mut b = DatasetBuilder::new(1, 26);
        b.push([(0, 1.0)], 26);
    }
}
