//! Multi-format dataset export.
//!
//! “After the AGOCS tool modifications, its features were extended to
//! generate datasets in various formats simultaneously for use in ML
//! frameworks. This allowed for rapid testing and comparison of multiple
//! methods.” (§III)
//!
//! Three formats cover the ecosystems the paper touches:
//!
//! * **CSV** — dense rows, pandas/scikit-learn style (header + label
//!   column last);
//! * **JSONL** — one object per row with sparse `cols` (PyTorch-loader
//!   friendly);
//! * **svmlight/libsvm** — `label col:val …`, the sparse interchange
//!   format scikit-learn's `load_svmlight_file` consumes.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::dataset::Dataset;

/// Supported export formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExportFormat {
    /// Dense CSV with header; label column last.
    Csv,
    /// One JSON object per line: `{"y":g,"cols":[..],"vals":[..]}`.
    Jsonl,
    /// svmlight/libsvm sparse rows: `label col:val …` (1-based columns).
    SvmLight,
}

/// Writes a dataset in the chosen format.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn export(ds: &Dataset, format: ExportFormat, out: &mut impl Write) -> io::Result<()> {
    match format {
        ExportFormat::Csv => export_csv(ds, out),
        ExportFormat::Jsonl => export_jsonl(ds, out),
        ExportFormat::SvmLight => export_svmlight(ds, out),
    }
}

/// Renders to an in-memory string (convenience for tests and examples).
pub fn export_string(ds: &Dataset, format: ExportFormat) -> String {
    let mut buf = Vec::new();
    export(ds, format, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("exports are ASCII")
}

fn export_csv(ds: &Dataset, out: &mut impl Write) -> io::Result<()> {
    let d = ds.features_count();
    let mut line = String::new();
    for c in 0..d {
        write!(line, "f{c},").expect("string write");
    }
    line.push_str("label\n");
    out.write_all(line.as_bytes())?;
    for r in 0..ds.len() {
        line.clear();
        let mut dense = vec![0u8; d];
        for (c, v) in ds.x.row_entries(r) {
            dense[c] = v as u8;
        }
        for v in &dense {
            write!(line, "{v},").expect("string write");
        }
        writeln!(line, "{}", ds.y[r]).expect("string write");
        out.write_all(line.as_bytes())?;
    }
    Ok(())
}

fn export_jsonl(ds: &Dataset, out: &mut impl Write) -> io::Result<()> {
    let mut line = String::new();
    for r in 0..ds.len() {
        line.clear();
        let cols: Vec<String> = ds.x.row_entries(r).map(|(c, _)| c.to_string()).collect();
        let vals: Vec<String> = ds.x.row_entries(r).map(|(_, v)| format!("{v}")).collect();
        writeln!(
            line,
            "{{\"y\":{},\"cols\":[{}],\"vals\":[{}]}}",
            ds.y[r],
            cols.join(","),
            vals.join(",")
        )
        .expect("string write");
        out.write_all(line.as_bytes())?;
    }
    Ok(())
}

fn export_svmlight(ds: &Dataset, out: &mut impl Write) -> io::Result<()> {
    let mut line = String::new();
    for r in 0..ds.len() {
        line.clear();
        write!(line, "{}", ds.y[r]).expect("string write");
        for (c, v) in ds.x.row_entries(r) {
            // svmlight columns are 1-based.
            write!(line, " {}:{v}", c + 1).expect("string write");
        }
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(4, 26);
        b.push([(0, 1.0), (2, 1.0)], 3);
        b.push([], 25);
        b.push([(3, 1.0)], 0);
        b.snapshot(4)
    }

    #[test]
    fn csv_has_header_and_dense_rows() {
        let s = export_string(&sample(), ExportFormat::Csv);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "f0,f1,f2,f3,label");
        assert_eq!(lines[1], "1,0,1,0,3");
        assert_eq!(lines[2], "0,0,0,0,25");
        assert_eq!(lines[3], "0,0,0,1,0");
    }

    #[test]
    fn jsonl_rows_parse_back() {
        let s = export_string(&sample(), ExportFormat::Jsonl);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        let v: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(v["y"], 3);
        assert_eq!(v["cols"], serde_json::json!([0, 2]));
        let empty: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(empty["cols"], serde_json::json!([]));
    }

    #[test]
    fn svmlight_is_one_based_sparse() {
        let s = export_string(&sample(), ExportFormat::SvmLight);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "3 1:1 3:1");
        assert_eq!(lines[1], "25");
        assert_eq!(lines[2], "0 4:1");
    }

    #[test]
    fn all_formats_cover_every_row() {
        let ds = sample();
        for f in [
            ExportFormat::Csv,
            ExportFormat::Jsonl,
            ExportFormat::SvmLight,
        ] {
            let s = export_string(&ds, f);
            let expected = ds.len() + usize::from(f == ExportFormat::Csv);
            assert_eq!(s.lines().count(), expected, "{f:?}");
        }
    }
}
