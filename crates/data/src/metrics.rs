//! Classification metrics.
//!
//! The paper's evaluation reports two numbers per model and step: overall
//! accuracy and the F1 score of Group 0 (tasks allocable to a single
//! node). We additionally expose the full confusion matrix and per-class
//! precision/recall, which the ablation benches use.

use serde::{Deserialize, Serialize};

/// Fraction of predictions equal to the truth.
///
/// # Panics
/// Panics when lengths differ or inputs are empty.
pub fn accuracy(truth: &[u8], pred: &[u8]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty evaluation set");
    let correct = truth
        .iter()
        .zip(pred.iter())
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / truth.len() as f64
}

/// `n_classes × n_classes` confusion matrix; `m[t][p]` counts samples of
/// true class `t` predicted as `p`.
pub fn confusion_matrix(truth: &[u8], pred: &[u8], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred.iter()) {
        m[t as usize][p as usize] += 1;
    }
    m
}

/// Per-class `(precision, recall, f1)`. Classes absent from both truth and
/// predictions report `(1, 1, 1)` by the scikit-learn zero-division=1
/// convention is *not* used here; we use the more common 0.0 for undefined
/// precision/recall but define F1 of an absent class as `None`.
pub fn f1_scores(truth: &[u8], pred: &[u8], n_classes: usize) -> Vec<Option<(f64, f64, f64)>> {
    let m = confusion_matrix(truth, pred, n_classes);
    (0..n_classes)
        .map(|c| {
            let tp = m[c][c];
            let fn_: usize = (0..n_classes).filter(|&p| p != c).map(|p| m[c][p]).sum();
            let fp: usize = (0..n_classes).filter(|&t| t != c).map(|t| m[t][c]).sum();
            if tp + fn_ + fp == 0 {
                return None; // class absent everywhere
            }
            let precision = if tp + fp == 0 {
                0.0
            } else {
                tp as f64 / (tp + fp) as f64
            };
            let recall = if tp + fn_ == 0 {
                0.0
            } else {
                tp as f64 / (tp + fn_) as f64
            };
            let f1 = if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            Some((precision, recall, f1))
        })
        .collect()
}

/// One evaluation snapshot — the pair of numbers every paper table tracks.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Overall accuracy.
    pub accuracy: f64,
    /// F1 score for Group 0; `None` when the test set has no Group 0
    /// samples (the paper omits the score in that case).
    pub group0_f1: Option<f64>,
}

impl Evaluation {
    /// Computes the snapshot from truth/prediction vectors.
    pub fn compute(truth: &[u8], pred: &[u8], n_classes: usize) -> Self {
        let acc = accuracy(truth, pred);
        let f1s = f1_scores(truth, pred, n_classes);
        // The paper omits Group-0 F1 "when no Group 0 samples were present
        // in the test dataset": that is, when the *truth* has none.
        let group0_present = truth.contains(&0);
        let group0_f1 = if group0_present {
            f1s[0].map(|(_, _, f1)| f1)
        } else {
            None
        };
        Self {
            accuracy: acc,
            group0_f1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2, 2], &[0, 1, 1, 2]), 0.75);
        assert_eq!(accuracy(&[5], &[5]), 1.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(m, vec![vec![1, 1], vec![0, 2]]);
    }

    #[test]
    fn f1_perfect_prediction() {
        let f1 = f1_scores(&[0, 1, 0, 1], &[0, 1, 0, 1], 2);
        assert_eq!(f1[0], Some((1.0, 1.0, 1.0)));
        assert_eq!(f1[1], Some((1.0, 1.0, 1.0)));
    }

    #[test]
    fn f1_matches_manual_computation() {
        // class 0: tp=1 (idx0), fp=1 (idx3 predicted 0, true 1), fn=1 (idx1).
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 1, 0];
        let f1 = f1_scores(&truth, &pred, 2);
        let (p, r, f) = f1[0].unwrap();
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f1_absent_class_is_none() {
        let f1 = f1_scores(&[0, 0], &[0, 0], 3);
        assert!(f1[2].is_none());
        assert!(f1[1].is_none());
    }

    #[test]
    fn f1_zero_when_never_correct() {
        let f1 = f1_scores(&[0, 0], &[1, 1], 2);
        assert_eq!(f1[0].unwrap().2, 0.0);
    }

    #[test]
    fn evaluation_omits_group0_when_absent_from_truth() {
        let e = Evaluation::compute(&[1, 2, 3], &[1, 2, 0], 4);
        assert!(e.group0_f1.is_none(), "no Group 0 in truth ⇒ omitted");
        let e2 = Evaluation::compute(&[0, 2, 3], &[0, 2, 3], 4);
        assert_eq!(e2.group0_f1, Some(1.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatched_lengths() {
        let _ = accuracy(&[0, 1], &[0]);
    }
}
