//! Stratified train/test splitting.
//!
//! The paper: “Stratified training and testing datasets were created where
//! possible (at least two samples per class were required) … Stratified
//! randomized folds were used to preserve class proportions, ensuring
//! balanced representation despite the computational cost.”
//!
//! This module reproduces scikit-learn's `train_test_split(stratify=y)`
//! behaviour: per-class proportional allocation with at least one sample
//! on each side for every class that has ≥ 2 samples; classes with a
//! single sample fall back to the training side (and the split degrades
//! to unstratified only when *no* class is splittable).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split parameters.
#[derive(Clone, Copy, Debug)]
pub struct SplitConfig {
    /// Fraction of samples assigned to the test side (0, 1).
    pub test_fraction: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self {
            test_fraction: 0.25,
            seed: 0,
        }
    }
}

/// Returns `(train_indices, test_indices)` for labels `y`, stratified by
/// class where possible.
///
/// # Panics
/// Panics if `test_fraction` is outside (0, 1) or `y` is empty.
pub fn stratified_split(y: &[u8], config: SplitConfig) -> (Vec<usize>, Vec<usize>) {
    assert!(!y.is_empty(), "cannot split an empty dataset");
    assert!(
        config.test_fraction > 0.0 && config.test_fraction < 1.0,
        "test_fraction must be in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5711_F01D);

    // Bucket indices per class.
    let n_classes = y.iter().copied().max().unwrap() as usize + 1;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &label) in y.iter().enumerate() {
        buckets[label as usize].push(i);
    }

    let mut train = Vec::new();
    let mut test = Vec::new();
    for bucket in buckets.iter_mut() {
        if bucket.is_empty() {
            continue;
        }
        bucket.shuffle(&mut rng);
        if bucket.len() < 2 {
            // The paper requires ≥ 2 samples per class to stratify; a
            // singleton class cannot appear on both sides, so it trains.
            train.extend_from_slice(bucket);
            continue;
        }
        // Proportional allocation with both sides non-empty.
        let n_test = ((bucket.len() as f64 * config.test_fraction).round() as usize)
            .clamp(1, bucket.len() - 1);
        test.extend_from_slice(&bucket[..n_test]);
        train.extend_from_slice(&bucket[n_test..]);
    }
    // Shuffle the final order so downstream mini-batches aren't
    // class-sorted.
    train.shuffle(&mut rng);
    test.shuffle(&mut rng);
    (train, test)
}

/// Stratified K-fold indices (“stratified randomized folds were used to
/// preserve class proportions”): each fold's test side draws
/// proportionally from every class. Classes with fewer samples than
/// folds appear in as many folds as they have samples (the rest of the
/// folds see them only in training).
///
/// Returns `k` pairs of `(train_indices, test_indices)`.
///
/// # Panics
/// Panics if `k < 2` or `y` is empty.
pub fn stratified_k_fold(y: &[u8], k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(!y.is_empty(), "cannot fold an empty dataset");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0_1D5);

    let n_classes = y.iter().copied().max().unwrap() as usize + 1;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &label) in y.iter().enumerate() {
        buckets[label as usize].push(i);
    }
    // Assign each sample a fold round-robin within its (shuffled) class.
    let mut fold_of = vec![0usize; y.len()];
    for bucket in buckets.iter_mut() {
        bucket.shuffle(&mut rng);
        for (pos, &i) in bucket.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    (0..k)
        .map(|fold| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &f) in fold_of.iter().enumerate() {
                if f == fold {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            train.shuffle(&mut rng);
            test.shuffle(&mut rng);
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(spec: &[(u8, usize)]) -> Vec<u8> {
        let mut y = Vec::new();
        for &(class, count) in spec {
            y.extend(std::iter::repeat_n(class, count));
        }
        y
    }

    #[test]
    fn split_is_a_partition() {
        let y = labels(&[(0, 10), (1, 40), (2, 3)]);
        let (train, test) = stratified_split(
            &y,
            SplitConfig {
                test_fraction: 0.25,
                seed: 1,
            },
        );
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..y.len()).collect::<Vec<_>>());
    }

    #[test]
    fn class_proportions_preserved() {
        let y = labels(&[(0, 100), (1, 400)]);
        let (_, test) = stratified_split(
            &y,
            SplitConfig {
                test_fraction: 0.2,
                seed: 2,
            },
        );
        let test_c0 = test.iter().filter(|&&i| y[i] == 0).count();
        let test_c1 = test.iter().filter(|&&i| y[i] == 1).count();
        assert_eq!(test_c0, 20);
        assert_eq!(test_c1, 80);
    }

    #[test]
    fn every_splittable_class_appears_on_both_sides() {
        let y = labels(&[(0, 2), (1, 2), (5, 30)]);
        let (train, test) = stratified_split(
            &y,
            SplitConfig {
                test_fraction: 0.3,
                seed: 3,
            },
        );
        for class in [0u8, 1, 5] {
            assert!(
                train.iter().any(|&i| y[i] == class),
                "class {class} missing in train"
            );
            assert!(
                test.iter().any(|&i| y[i] == class),
                "class {class} missing in test"
            );
        }
    }

    #[test]
    fn singleton_classes_go_to_train() {
        let y = labels(&[(0, 1), (1, 20)]);
        let (train, test) = stratified_split(
            &y,
            SplitConfig {
                test_fraction: 0.25,
                seed: 4,
            },
        );
        assert!(train.iter().any(|&i| y[i] == 0));
        assert!(!test.iter().any(|&i| y[i] == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let y = labels(&[(0, 13), (3, 29)]);
        let a = stratified_split(
            &y,
            SplitConfig {
                test_fraction: 0.25,
                seed: 9,
            },
        );
        let b = stratified_split(
            &y,
            SplitConfig {
                test_fraction: 0.25,
                seed: 9,
            },
        );
        assert_eq!(a, b);
        let c = stratified_split(
            &y,
            SplitConfig {
                test_fraction: 0.25,
                seed: 10,
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_labels() {
        let _ = stratified_split(&[], SplitConfig::default());
    }

    #[test]
    fn k_fold_test_sides_partition_everything() {
        let y = labels(&[(0, 9), (1, 17), (3, 4)]);
        let folds = stratified_k_fold(&y, 3, 7);
        assert_eq!(folds.len(), 3);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.iter().copied()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..y.len()).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), y.len());
            let overlap = train.iter().any(|i| test.contains(i));
            assert!(!overlap, "train/test overlap in a fold");
        }
    }

    #[test]
    fn k_fold_preserves_class_proportions() {
        let y = labels(&[(0, 30), (1, 60)]);
        for (_, test) in stratified_k_fold(&y, 3, 1) {
            let c0 = test.iter().filter(|&&i| y[i] == 0).count();
            let c1 = test.iter().filter(|&&i| y[i] == 1).count();
            assert_eq!(c0, 10);
            assert_eq!(c1, 20);
        }
    }

    #[test]
    fn k_fold_handles_tiny_classes() {
        // A 2-sample class across 4 folds: appears in exactly 2 test
        // sides, trains in the others.
        let y = labels(&[(0, 2), (1, 40)]);
        let folds = stratified_k_fold(&y, 4, 3);
        let test_appearances: usize = folds
            .iter()
            .map(|(_, t)| t.iter().filter(|&&i| y[i] == 0).count())
            .sum();
        assert_eq!(test_appearances, 2);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_fold_rejects_k1() {
        let _ = stratified_k_fold(&[0, 1], 1, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn partition_property(
                counts in prop::collection::vec(1usize..30, 1..8),
                seed in 0u64..100,
            ) {
                let y: Vec<u8> = counts
                    .iter()
                    .enumerate()
                    .flat_map(|(c, &n)| std::iter::repeat_n(c as u8, n))
                    .collect();
                let (train, test) =
                    stratified_split(&y, SplitConfig { test_fraction: 0.25, seed });
                let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
                all.sort_unstable();
                prop_assert_eq!(all, (0..y.len()).collect::<Vec<_>>());
                // Any class with ≥2 samples must be represented in train.
                for (c, &n) in counts.iter().enumerate() {
                    if n >= 2 {
                        prop_assert!(train.iter().any(|&i| y[i] == c as u8));
                        prop_assert!(test.iter().any(|&i| y[i] == c as u8));
                    }
                }
            }
        }
    }
}
