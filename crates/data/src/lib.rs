//! # ctlm-data — constraint-operator datasets
//!
//! Everything between raw task constraints and trainable matrices:
//!
//! * [`compaction`] — Table V's constraint collapsing: combining ordering
//!   operators into a *Between* range, folding Not-Equal lists into a
//!   *Non-Equal-Array*, letting *Equal* dominate, and flagging the rare
//!   contradictions the paper says get logged and skipped.
//! * [`vocab`] — the append-only attribute-value vocabulary that defines
//!   the CO-VV feature-array layout (new values become the last column).
//! * [`encode`] — the two dataset encodings the paper compares: CO-EL
//!   (collapsed COs one-hot encoded as labels, Table VI) and CO-VV
//!   (reversed 0/1 value vectors, Tables VII–VIII).
//! * [`dataset`] — labelled sparse datasets with grow-in-place columns.
//! * [`split`] — stratified train/test splitting (the paper stratifies
//!   whenever every class has at least two samples).
//! * [`metrics`] — accuracy, confusion matrices and per-class F1 (the
//!   evaluation tracks overall accuracy and Group-0 F1).

pub mod compaction;
pub mod dataset;
pub mod encode;
pub mod export;
pub mod metrics;
pub mod split;
pub mod vocab;

pub use compaction::{collapse, AttrRequirement, CompactionError, Presence};
pub use dataset::{Dataset, NUM_GROUPS};
pub use encode::{co_el::CoElEncoder, co_vv::CoVvEncoder};
pub use metrics::{accuracy, confusion_matrix, f1_scores, Evaluation};
pub use split::{stratified_split, SplitConfig};
pub use vocab::{ValueKey, ValueVocab};
