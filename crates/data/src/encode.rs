//! The two dataset encodings the paper compares (§III.C–D).

pub mod co_el;
pub mod co_vv;
