//! The attribute-value vocabulary backing the CO-VV feature array.
//!
//! Every feature column of the CO-VV dataset corresponds to either a
//! concrete `(attribute, value)` pair observed on some machine, or the
//! attribute's `(none)` pseudo-value (Table VII's first column). Columns
//! are allocated append-only in first-seen order — the paper: “for
//! traceability and simplicity, new attribute values are appended as the
//! last column”. This append-only discipline is what lets the growing
//! model pad its input weights instead of retraining.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use ctlm_trace::{AttrId, AttrValue};

/// A column key: the `(none)` pseudo-value or a concrete value of an
/// attribute.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ValueKey {
    /// The attribute being absent (Table VII's `${AM}: (none)` column).
    Absent,
    /// A concrete attribute value.
    Value(AttrValue),
}

/// Append-only `(attr, value-key) → column` vocabulary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ValueVocab {
    columns: Vec<(AttrId, ValueKey)>,
    index: BTreeMap<(AttrId, ValueKey), usize>,
    /// Column indices per attribute, in allocation order — keeps row
    /// encoding O(columns-of-attr) instead of O(total columns).
    by_attr: BTreeMap<AttrId, Vec<usize>>,
}

impl ValueVocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current feature-array width.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when no column has been allocated.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Registers an observed value of an attribute, allocating its column
    /// (and, on the attribute's first sighting, the `(none)` column) if
    /// new. Returns the value's column.
    pub fn observe(&mut self, attr: AttrId, value: &AttrValue) -> usize {
        // First sighting of the attribute allocates the Absent column so
        // "attribute must be present" constraints have a cell to mark.
        let absent_key = (attr, ValueKey::Absent);
        if !self.index.contains_key(&absent_key) {
            let col = self.columns.len();
            self.columns.push(absent_key.clone());
            self.index.insert(absent_key, col);
            self.by_attr.entry(attr).or_default().push(col);
        }
        let key = (attr, ValueKey::Value(value.clone()));
        if let Some(&col) = self.index.get(&key) {
            return col;
        }
        let col = self.columns.len();
        self.columns.push(key.clone());
        self.index.insert(key, col);
        self.by_attr.entry(attr).or_default().push(col);
        col
    }

    /// The column of a key, if allocated.
    pub fn column(&self, attr: AttrId, key: &ValueKey) -> Option<usize> {
        self.index.get(&(attr, key.clone())).copied()
    }

    /// The key stored at a column.
    pub fn key_at(&self, col: usize) -> Option<&(AttrId, ValueKey)> {
        self.columns.get(col)
    }

    /// Iterates the columns belonging to one attribute, in column order,
    /// as `(column, key)` pairs. The encoder walks this to build a row;
    /// cost is proportional to the attribute's own column count.
    pub fn attr_columns(&self, attr: AttrId) -> impl Iterator<Item = (usize, &ValueKey)> {
        self.by_attr
            .get(&attr)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| (i, &self.columns[i].1))
    }

    /// All attributes with at least one column.
    pub fn attrs(&self) -> Vec<AttrId> {
        self.by_attr.keys().copied().collect()
    }

    /// Builds a compacted vocabulary containing only the columns in
    /// `keep` (in that order), returning it together with the
    /// old-column → new-column remap. This is the vocabulary-side half of
    /// the attribute-expiry extension; the model side is
    /// `ctlm_nn::state_dict::select_input_columns`.
    ///
    /// # Panics
    /// Panics if `keep` references a column out of range or repeats one.
    pub fn rebuild_keeping(&self, keep: &[usize]) -> (ValueVocab, Vec<Option<usize>>) {
        let mut remap = vec![None; self.columns.len()];
        let mut new = ValueVocab::new();
        for (new_col, &old_col) in keep.iter().enumerate() {
            assert!(
                old_col < self.columns.len(),
                "column {old_col} out of range"
            );
            assert!(remap[old_col].is_none(), "column {old_col} kept twice");
            let (attr, key) = self.columns[old_col].clone();
            new.columns.push((attr, key.clone()));
            new.index.insert((attr, key), new_col);
            new.by_attr.entry(attr).or_default().push(new_col);
            remap[old_col] = Some(new_col);
        }
        (new, remap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_allocates_absent_then_value() {
        let mut v = ValueVocab::new();
        let col = v.observe(3, &AttrValue::Int(7));
        assert_eq!(v.len(), 2);
        assert_eq!(v.column(3, &ValueKey::Absent), Some(0));
        assert_eq!(col, 1);
    }

    #[test]
    fn observe_is_idempotent() {
        let mut v = ValueVocab::new();
        let a = v.observe(0, &AttrValue::Int(1));
        let b = v.observe(0, &AttrValue::Int(1));
        assert_eq!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn new_values_append_at_the_end() {
        let mut v = ValueVocab::new();
        v.observe(0, &AttrValue::Int(1));
        v.observe(1, &AttrValue::from("x"));
        let before = v.len();
        let col = v.observe(0, &AttrValue::Int(2));
        assert_eq!(col, before, "new value must take the last column");
        assert_eq!(v.len(), before + 1);
    }

    #[test]
    fn attr_columns_filters_by_attribute() {
        let mut v = ValueVocab::new();
        v.observe(0, &AttrValue::Int(1));
        v.observe(1, &AttrValue::Int(9));
        v.observe(0, &AttrValue::Int(2));
        let cols: Vec<usize> = v.attr_columns(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1, 4]);
        assert_eq!(v.attrs(), vec![0, 1]);
    }

    #[test]
    fn key_at_roundtrips() {
        let mut v = ValueVocab::new();
        let col = v.observe(2, &AttrValue::from("gpu"));
        assert_eq!(
            v.key_at(col),
            Some(&(2, ValueKey::Value(AttrValue::from("gpu"))))
        );
        assert_eq!(v.key_at(99), None);
    }
}
