//! Constraint-operator compaction (paper Table V).
//!
//! Before encoding, a task's constraints are collapsed per attribute:
//!
//! * ordering operators combine into a **Between** range
//!   (`8 > ${AM}` + `3 > ${AM}` + `${AM} > 0` → `3 > ${AM} > 0`);
//! * `Not-Equal` operators fold into a **Non-Equal-Array**
//!   (`${N} <> 'a'`, `<> 'b'`, `<> 'c'` → `${N} <> 'a';'b';'c'`);
//! * `Equal` dominates `Not-Equal`s on the same attribute
//!   (`${G} <> 'a'`, `<> 'b'`, `= 'c'` → `${G} = 'c'`);
//! * contradictions (`${DC} = 1` + `${DC} = 7`) produce an error — the
//!   paper logs these (fewer than twenty across all datasets) and skips
//!   the task.
//!
//! The result of collapsing is an [`AttrRequirement`] per attribute — a
//! normal form that both the dataset encoders and the tests' equivalence
//! property consume.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use ctlm_trace::{AttrId, AttrValue, ConstraintOp, TaskConstraint};

/// Presence demanded of the attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Presence {
    /// No presence requirement beyond what other fields imply.
    Any,
    /// The attribute must be defined (Present, or implied by a range).
    Required,
    /// The attribute must be undefined (Not-Present / `Equal(None)`).
    Forbidden,
}

/// The collapsed normal form of all constraints on one attribute.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttrRequirement {
    /// The attribute this requirement constrains.
    pub attr: AttrId,
    /// Presence demand.
    pub presence: Presence,
    /// Exact-match demand (dominates everything else when present).
    pub equal: Option<AttrValue>,
    /// Inclusive numeric range `[lo, hi]`; either side may be unbounded.
    /// A range implies `presence == Required`.
    pub lo: Option<i64>,
    /// Upper inclusive bound.
    pub hi: Option<i64>,
    /// Excluded values (the Non-Equal-Array payload).
    pub excluded: BTreeSet<AttrValue>,
}

impl AttrRequirement {
    fn new(attr: AttrId) -> Self {
        Self {
            attr,
            presence: Presence::Any,
            equal: None,
            lo: None,
            hi: None,
            excluded: BTreeSet::new(),
        }
    }

    /// True when this requirement accepts the given attribute state
    /// (`None` = attribute absent). By construction this is equivalent to
    /// evaluating all original constraints — the property tests verify it.
    pub fn accepts(&self, attr: Option<&AttrValue>) -> bool {
        match self.presence {
            Presence::Forbidden => return attr.is_none(),
            Presence::Required => {
                if attr.is_none() {
                    return false;
                }
            }
            Presence::Any => {}
        }
        if let Some(eq) = &self.equal {
            return attr == Some(eq);
        }
        if let Some(v) = attr {
            if self.excluded.contains(v) {
                return false;
            }
        }
        if self.lo.is_some() || self.hi.is_some() {
            let Some(n) = attr.and_then(AttrValue::as_int) else {
                return false;
            };
            if let Some(lo) = self.lo {
                if n < lo {
                    return false;
                }
            }
            if let Some(hi) = self.hi {
                if n > hi {
                    return false;
                }
            }
        }
        true
    }

    /// True when the requirement is a pure range (the paper's *Between*
    /// operator) — used for the Table V regeneration binary.
    pub fn is_between(&self) -> bool {
        self.equal.is_none() && (self.lo.is_some() || self.hi.is_some())
    }

    /// True when the requirement is a pure Non-Equal-Array.
    pub fn is_not_equal_array(&self) -> bool {
        self.equal.is_none()
            && self.lo.is_none()
            && self.hi.is_none()
            && !self.excluded.is_empty()
            && self.presence == Presence::Any
    }
}

impl fmt::Display for AttrRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.attr;
        if self.presence == Presence::Forbidden {
            return write!(f, "${{{a}}} not-present");
        }
        if let Some(eq) = &self.equal {
            return write!(f, "${{{a}}} = {eq}");
        }
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) => write!(f, "{} > ${{{a}}} > {}", hi + 1, lo - 1)?,
            (Some(lo), None) => write!(f, "${{{a}}} > {}", lo - 1)?,
            (None, Some(hi)) => write!(f, "{} > ${{{a}}}", hi + 1)?,
            (None, None) => {
                if self.excluded.is_empty() {
                    return write!(f, "${{{a}}} present");
                }
                let list: Vec<String> = self.excluded.iter().map(|v| v.to_string()).collect();
                return write!(f, "${{{a}}} <> {}", list.join("; "));
            }
        }
        if !self.excluded.is_empty() {
            let list: Vec<String> = self.excluded.iter().map(|v| v.to_string()).collect();
            write!(f, " (excluding {})", list.join("; "))?;
        }
        Ok(())
    }
}

/// A contradiction or type error found while collapsing. The paper logs
/// these ("such anomalies are very rare — fewer than twenty across all
/// datasets — and are ignored in the simulation").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompactionError {
    /// Two constraints can never hold together.
    Contradiction {
        /// The attribute whose constraints conflict.
        attr: AttrId,
        /// Human-readable description.
        detail: String,
    },
    /// An ordering operator was applied alongside non-numeric demands in a
    /// way that can never match.
    TypeMismatch {
        /// The attribute involved.
        attr: AttrId,
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for CompactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompactionError::Contradiction { attr, detail } => {
                write!(f, "contradictory constraints on ${{{attr}}}: {detail}")
            }
            CompactionError::TypeMismatch { attr, detail } => {
                write!(f, "type mismatch on ${{{attr}}}: {detail}")
            }
        }
    }
}

impl std::error::Error for CompactionError {}

/// Collapses a task's constraints into per-attribute requirements,
/// in first-appearance attribute order.
pub fn collapse(constraints: &[TaskConstraint]) -> Result<Vec<AttrRequirement>, CompactionError> {
    let mut order: Vec<AttrId> = Vec::new();
    let mut map: BTreeMap<AttrId, AttrRequirement> = BTreeMap::new();
    for c in constraints {
        map.entry(c.attr).or_insert_with(|| {
            order.push(c.attr);
            AttrRequirement::new(c.attr)
        });
        let req = map.get_mut(&c.attr).expect("just inserted");
        apply(req, &c.op)?;
    }
    // Final normalisation pass per attribute.
    for req in map.values_mut() {
        normalise(req)?;
    }
    Ok(order
        .into_iter()
        .map(|a| map.remove(&a).expect("ordered key"))
        .collect())
}

/// Folds one operator into the running requirement.
fn apply(req: &mut AttrRequirement, op: &ConstraintOp) -> Result<(), CompactionError> {
    let attr = req.attr;
    match op {
        ConstraintOp::Equal(Some(v)) => {
            if let Some(prev) = &req.equal {
                if prev != v {
                    return Err(CompactionError::Contradiction {
                        attr,
                        detail: format!("= {prev} and = {v}"),
                    });
                }
            }
            if req.presence == Presence::Forbidden {
                return Err(CompactionError::Contradiction {
                    attr,
                    detail: format!("not-present and = {v}"),
                });
            }
            req.equal = Some(v.clone());
            req.presence = Presence::Required;
        }
        ConstraintOp::Equal(None) | ConstraintOp::NotPresent => {
            if req.presence == Presence::Required || req.equal.is_some() {
                return Err(CompactionError::Contradiction {
                    attr,
                    detail: "attribute required present and absent".into(),
                });
            }
            req.presence = Presence::Forbidden;
        }
        ConstraintOp::NotEqual(v) => {
            req.excluded.insert(v.clone());
        }
        ConstraintOp::Present => {
            if req.presence == Presence::Forbidden {
                return Err(CompactionError::Contradiction {
                    attr,
                    detail: "attribute required absent and present".into(),
                });
            }
            req.presence = Presence::Required;
        }
        ConstraintOp::LessThan(v) => merge_range(req, None, Some(v - 1))?,
        ConstraintOp::LessThanEqual(v) => merge_range(req, None, Some(*v))?,
        ConstraintOp::GreaterThan(v) => merge_range(req, Some(v + 1), None)?,
        ConstraintOp::GreaterThanEqual(v) => merge_range(req, Some(*v), None)?,
    }
    Ok(())
}

/// Intersects a numeric range into the requirement (ranges imply
/// presence).
fn merge_range(
    req: &mut AttrRequirement,
    lo: Option<i64>,
    hi: Option<i64>,
) -> Result<(), CompactionError> {
    if req.presence == Presence::Forbidden {
        return Err(CompactionError::Contradiction {
            attr: req.attr,
            detail: "range on attribute required absent".into(),
        });
    }
    req.presence = Presence::Required;
    if let Some(lo) = lo {
        req.lo = Some(req.lo.map_or(lo, |old| old.max(lo)));
    }
    if let Some(hi) = hi {
        req.hi = Some(req.hi.map_or(hi, |old| old.min(hi)));
    }
    Ok(())
}

/// Post-pass: tighten bounds past adjacent exclusions, validate `Equal`
/// against ranges and exclusions, detect empty ranges.
fn normalise(req: &mut AttrRequirement) -> Result<(), CompactionError> {
    let attr = req.attr;
    if let Some(eq) = req.equal.clone() {
        // Equal dominates Not-Equal (Table V) — but must not contradict
        // them or the range.
        if req.excluded.contains(&eq) {
            return Err(CompactionError::Contradiction {
                attr,
                detail: format!("= {eq} and <> {eq}"),
            });
        }
        if req.lo.is_some() || req.hi.is_some() {
            let Some(n) = eq.as_int() else {
                return Err(CompactionError::TypeMismatch {
                    attr,
                    detail: format!("range combined with non-numeric = {eq}"),
                });
            };
            if req.lo.is_some_and(|lo| n < lo) || req.hi.is_some_and(|hi| n > hi) {
                return Err(CompactionError::Contradiction {
                    attr,
                    detail: format!("= {eq} outside range"),
                });
            }
        }
        // Dominance: drop the subsumed demands.
        req.excluded.clear();
        req.lo = None;
        req.hi = None;
        return Ok(());
    }
    // The GCD traces support only integer numbers in constraint operators,
    // so `AM > 3` + `AM <> 4` tightens to `AM > 4` (Table V row 2).
    if req.lo.is_some() || req.hi.is_some() {
        loop {
            let mut changed = false;
            if let Some(lo) = req.lo {
                if req.excluded.remove(&AttrValue::Int(lo)) {
                    req.lo = Some(lo + 1);
                    changed = true;
                }
            }
            if let Some(hi) = req.hi {
                if req.excluded.remove(&AttrValue::Int(hi)) {
                    req.hi = Some(hi - 1);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if let (Some(lo), Some(hi)) = (req.lo, req.hi) {
            if lo > hi {
                return Err(CompactionError::Contradiction {
                    attr,
                    detail: format!("empty range [{lo}, {hi}]"),
                });
            }
        }
        // Exclusions outside the range are redundant.
        let (lo, hi) = (req.lo, req.hi);
        req.excluded.retain(|v| match v.as_int() {
            Some(n) => lo.is_none_or(|l| n >= l) && hi.is_none_or(|h| n <= h),
            None => false, // strings can never match a ranged attribute
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_trace::ConstraintOp as Op;

    fn iv(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
    fn c(attr: AttrId, op: Op) -> TaskConstraint {
        TaskConstraint::new(attr, op)
    }

    // --- The exact Table V rows -----------------------------------------

    #[test]
    fn table5_row1_bounds_compact_to_between() {
        // 8 > ${AM}, 3 > ${AM}, ${AM} > 0  →  3 > ${AM} > 0
        let reqs = collapse(&[
            c(0, Op::LessThan(8)),
            c(0, Op::LessThan(3)),
            c(0, Op::GreaterThan(0)),
        ])
        .unwrap();
        assert_eq!(reqs.len(), 1);
        let r = &reqs[0];
        assert!(r.is_between());
        assert_eq!((r.lo, r.hi), (Some(1), Some(2)));
        assert_eq!(r.to_string(), "3 > ${0} > 0");
    }

    #[test]
    fn table5_row2_not_equals_tighten_integer_bounds() {
        // ${AM} <> 1, ${AM} > 3, ${AM} <> 4  →  ${AM} > 4
        let reqs = collapse(&[
            c(0, Op::NotEqual(iv(1))),
            c(0, Op::GreaterThan(3)),
            c(0, Op::NotEqual(iv(4))),
        ])
        .unwrap();
        let r = &reqs[0];
        assert_eq!((r.lo, r.hi), (Some(5), None));
        assert!(r.excluded.is_empty(), "1 is outside the range, 4 absorbed");
        assert_eq!(r.to_string(), "${0} > 4");
    }

    #[test]
    fn table5_row3_not_equal_array() {
        // ${N} <> 'a', 'b', 'c' → Non-Equal-Array
        let reqs = collapse(&[
            c(0, Op::NotEqual("a".into())),
            c(0, Op::NotEqual("b".into())),
            c(0, Op::NotEqual("c".into())),
        ])
        .unwrap();
        let r = &reqs[0];
        assert!(r.is_not_equal_array());
        assert_eq!(r.excluded.len(), 3);
        assert_eq!(r.to_string(), "${0} <> 'a'; 'b'; 'c'");
    }

    #[test]
    fn table5_row4_equal_dominates_not_equals() {
        // ${G} <> 'a', <> 'b', = 'c'  →  ${G} = 'c'
        let reqs = collapse(&[
            c(0, Op::NotEqual("a".into())),
            c(0, Op::NotEqual("b".into())),
            c(0, Op::Equal(Some("c".into()))),
        ])
        .unwrap();
        let r = &reqs[0];
        assert_eq!(r.equal, Some("c".into()));
        assert!(r.excluded.is_empty());
        assert_eq!(r.to_string(), "${0} = 'c'");
    }

    #[test]
    fn table5_row5_conflicting_equals_error() {
        // ${DC} = 1, ${DC} = 7 → logged error
        let err =
            collapse(&[c(0, Op::Equal(Some(iv(1)))), c(0, Op::Equal(Some(iv(7))))]).unwrap_err();
        assert!(matches!(
            err,
            CompactionError::Contradiction { attr: 0, .. }
        ));
    }

    // --- Additional semantics --------------------------------------------

    #[test]
    fn equal_and_not_equal_same_value_is_contradiction() {
        let err = collapse(&[c(0, Op::Equal(Some(iv(2)))), c(0, Op::NotEqual(iv(2)))]).unwrap_err();
        assert!(matches!(err, CompactionError::Contradiction { .. }));
    }

    #[test]
    fn equal_outside_range_is_contradiction() {
        let err = collapse(&[c(0, Op::GreaterThan(5)), c(0, Op::Equal(Some(iv(3))))]).unwrap_err();
        assert!(matches!(err, CompactionError::Contradiction { .. }));
    }

    #[test]
    fn equal_inside_range_dominates() {
        let reqs = collapse(&[c(0, Op::GreaterThan(5)), c(0, Op::Equal(Some(iv(7))))]).unwrap();
        assert_eq!(reqs[0].equal, Some(iv(7)));
        assert_eq!(reqs[0].lo, None);
    }

    #[test]
    fn empty_range_is_contradiction() {
        let err = collapse(&[c(0, Op::GreaterThan(5)), c(0, Op::LessThan(5))]).unwrap_err();
        assert!(matches!(err, CompactionError::Contradiction { .. }));
    }

    #[test]
    fn le_ge_collapse_to_inclusive_bounds() {
        let reqs = collapse(&[c(0, Op::GreaterThanEqual(2)), c(0, Op::LessThanEqual(6))]).unwrap();
        assert_eq!((reqs[0].lo, reqs[0].hi), (Some(2), Some(6)));
    }

    #[test]
    fn not_present_with_range_is_contradiction() {
        let err = collapse(&[c(0, Op::NotPresent), c(0, Op::GreaterThan(1))]).unwrap_err();
        assert!(matches!(err, CompactionError::Contradiction { .. }));
        let err2 = collapse(&[c(0, Op::GreaterThan(1)), c(0, Op::NotPresent)]).unwrap_err();
        assert!(matches!(err2, CompactionError::Contradiction { .. }));
    }

    #[test]
    fn present_plus_not_equal_keeps_both() {
        let reqs = collapse(&[c(0, Op::Present), c(0, Op::NotEqual(iv(1)))]).unwrap();
        let r = &reqs[0];
        assert_eq!(r.presence, Presence::Required);
        assert!(!r.accepts(None));
        assert!(!r.accepts(Some(&iv(1))));
        assert!(r.accepts(Some(&iv(2))));
    }

    #[test]
    fn equal_none_behaves_as_not_present() {
        let reqs = collapse(&[c(0, Op::Equal(None))]).unwrap();
        assert_eq!(reqs[0].presence, Presence::Forbidden);
        assert!(reqs[0].accepts(None));
        assert!(!reqs[0].accepts(Some(&iv(0))));
    }

    #[test]
    fn attributes_keep_first_appearance_order() {
        let reqs = collapse(&[
            c(5, Op::Present),
            c(2, Op::NotEqual(iv(1))),
            c(5, Op::NotEqual(iv(9))),
        ])
        .unwrap();
        assert_eq!(reqs.iter().map(|r| r.attr).collect::<Vec<_>>(), vec![5, 2]);
    }

    #[test]
    fn duplicated_equal_is_fine() {
        let reqs = collapse(&[c(0, Op::Equal(Some(iv(1)))), c(0, Op::Equal(Some(iv(1))))]).unwrap();
        assert_eq!(reqs[0].equal, Some(iv(1)));
    }

    // --- Equivalence property: collapsed ≡ original ----------------------

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        fn arb_value() -> impl Strategy<Value = AttrValue> {
            prop_oneof![
                (-4i64..10).prop_map(AttrValue::Int),
                prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(AttrValue::from),
            ]
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                arb_value().prop_map(|v| Op::Equal(Some(v))),
                Just(Op::Equal(None)),
                arb_value().prop_map(Op::NotEqual),
                (-4i64..10).prop_map(Op::LessThan),
                (-4i64..10).prop_map(Op::GreaterThan),
                (-4i64..10).prop_map(Op::LessThanEqual),
                (-4i64..10).prop_map(Op::GreaterThanEqual),
                Just(Op::Present),
                Just(Op::NotPresent),
            ]
        }

        proptest! {
            /// For any constraint set that collapses cleanly, the collapsed
            /// requirement accepts an attribute state iff every original
            /// operator matches it.
            #[test]
            fn collapse_preserves_matching(ops in prop::collection::vec(arb_op(), 1..6)) {
                let constraints: Vec<TaskConstraint> =
                    ops.iter().cloned().map(|op| TaskConstraint::new(0, op)).collect();
                if let Ok(reqs) = collapse(&constraints) {
                    prop_assert_eq!(reqs.len(), 1);
                    let req = &reqs[0];
                    let mut states: Vec<Option<AttrValue>> =
                        vec![None];
                    for n in -5i64..11 {
                        states.push(Some(AttrValue::Int(n)));
                    }
                    for s in ["a", "b", "c", "d"] {
                        states.push(Some(AttrValue::from(s)));
                    }
                    for st in &states {
                        let original = constraints.iter().all(|c| c.op.matches(st.as_ref()));
                        let collapsed = req.accepts(st.as_ref());
                        prop_assert_eq!(
                            original, collapsed,
                            "state {:?} original={} collapsed={} ops={:?}",
                            st, original, collapsed, &ops
                        );
                    }
                }
            }

            /// A contradiction error really means no attribute state can
            /// satisfy all original constraints.
            #[test]
            fn contradictions_are_unsatisfiable(ops in prop::collection::vec(arb_op(), 1..6)) {
                let constraints: Vec<TaskConstraint> =
                    ops.iter().cloned().map(|op| TaskConstraint::new(0, op)).collect();
                if collapse(&constraints).is_err() {
                    let mut states: Vec<Option<AttrValue>> = vec![None];
                    for n in -5i64..11 {
                        states.push(Some(AttrValue::Int(n)));
                    }
                    for s in ["a", "b", "c", "d"] {
                        states.push(Some(AttrValue::from(s)));
                    }
                    for st in &states {
                        let sat = constraints.iter().all(|c| c.op.matches(st.as_ref()));
                        prop_assert!(!sat, "claimed contradiction but {st:?} satisfies {ops:?}");
                    }
                }
            }
        }
    }
}
