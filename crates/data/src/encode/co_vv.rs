//! CO-VV — constraint operators as value vectors (§III.D, Tables VII–VIII).
//!
//! For every attribute the cluster has ever reported, the feature array
//! lists all its observed values plus a `(none)` pseudo-value. A task's row
//! marks each cell with **1 when the value is unacceptable** under the
//! task's (collapsed) constraints and 0 otherwise — the reversed notation
//! the paper chose "since the model focuses on detecting unacceptable
//! nodes".
//!
//! Because new values append at the end of the array, the encoding can be
//! extended while the cluster is being reconfigured, and an existing model
//! can be expanded through transfer learning — the property the whole
//! growing-model design rests on.

use ctlm_trace::AttrValue;

use crate::compaction::{collapse, AttrRequirement, CompactionError};
use crate::vocab::{ValueKey, ValueVocab};
use ctlm_trace::TaskConstraint;

/// Stateless encoder over a shared [`ValueVocab`].
#[derive(Clone, Debug, Default)]
pub struct CoVvEncoder;

impl CoVvEncoder {
    /// Encodes a task's constraints into sparse `(column, 1.0)` entries
    /// against the current vocabulary.
    ///
    /// Unconstrained attributes contribute nothing (all their values are
    /// acceptable). Constraint values never observed on any machine do not
    /// allocate columns — the encoding enumerates *observed* values only.
    pub fn encode(
        &self,
        constraints: &[TaskConstraint],
        vocab: &ValueVocab,
    ) -> Result<Vec<(usize, f32)>, CompactionError> {
        let reqs = collapse(constraints)?;
        Ok(self.encode_requirements(&reqs, vocab))
    }

    /// Encodes pre-collapsed requirements (used by the replayer, which
    /// collapses once for matching and once for encoding).
    pub fn encode_requirements(
        &self,
        reqs: &[AttrRequirement],
        vocab: &ValueVocab,
    ) -> Vec<(usize, f32)> {
        let mut out = Vec::new();
        for req in reqs {
            for (col, key) in vocab.attr_columns(req.attr) {
                let state: Option<&AttrValue> = match key {
                    ValueKey::Absent => None,
                    ValueKey::Value(v) => Some(v),
                };
                if !req.accepts(state) {
                    out.push((col, 1.0));
                }
            }
        }
        out.sort_unstable_by_key(|&(c, _)| c);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_trace::{AttrValue, ConstraintOp as Op};

    /// Builds the Table VII vocabulary: attribute `AM` (id 0) with values
    /// 0..=9, columns `[(none), 0, 1, ..., 9]`.
    fn table7_vocab() -> ValueVocab {
        let mut v = ValueVocab::new();
        for n in 0..10 {
            v.observe(0, &AttrValue::Int(n));
        }
        assert_eq!(v.len(), 11);
        v
    }

    fn row(constraints: &[Op]) -> Vec<u8> {
        let v = table7_vocab();
        let cs: Vec<TaskConstraint> = constraints
            .iter()
            .cloned()
            .map(|op| TaskConstraint::new(0, op))
            .collect();
        let entries = CoVvEncoder.encode(&cs, &v).unwrap();
        let mut dense = vec![0u8; v.len()];
        for (c, val) in entries {
            dense[c] = val as u8;
        }
        dense
    }

    // --- The exact four rows of Table VII --------------------------------

    #[test]
    fn table7_row1_ge_5() {
        // ${AM} >= 5 → 1 1 1 1 1 1 0 0 0 0 0
        assert_eq!(
            row(&[Op::GreaterThanEqual(5)]),
            vec![1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn table7_row2_between_0_and_3() {
        // 3 > ${AM} > 0 → 1 1 0 0 1 1 1 1 1 1 1
        assert_eq!(
            row(&[Op::LessThan(3), Op::GreaterThan(0)]),
            vec![1, 1, 0, 0, 1, 1, 1, 1, 1, 1, 1]
        );
    }

    #[test]
    fn table7_row3_not_equal_array() {
        // ${AM} <> 0; 7; 8 → 0 1 0 0 0 0 0 0 1 1 0
        assert_eq!(
            row(&[
                Op::NotEqual(0.into()),
                Op::NotEqual(7.into()),
                Op::NotEqual(8.into())
            ]),
            vec![0, 1, 0, 0, 0, 0, 0, 0, 1, 1, 0]
        );
    }

    #[test]
    fn table7_row4_greater_than_0() {
        // ${AM} > 0 → 1 1 0 0 0 0 0 0 0 0 0
        assert_eq!(
            row(&[Op::GreaterThan(0)]),
            vec![1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]
        );
    }

    // --- Structural properties -------------------------------------------

    #[test]
    fn unconstrained_attributes_contribute_nothing() {
        let mut v = table7_vocab();
        v.observe(1, &AttrValue::from("x")); // second attribute
        let cs = vec![TaskConstraint::new(0, Op::GreaterThan(0))];
        let entries = CoVvEncoder.encode(&cs, &v).unwrap();
        assert!(
            entries.iter().all(|&(c, _)| c < 11),
            "attr 1 columns must stay zero"
        );
    }

    #[test]
    fn empty_constraints_encode_to_empty_row() {
        let v = table7_vocab();
        assert!(CoVvEncoder.encode(&[], &v).unwrap().is_empty());
    }

    #[test]
    fn growing_vocab_extends_rows_without_reindexing() {
        let mut v = table7_vocab();
        let cs = vec![TaskConstraint::new(0, Op::GreaterThanEqual(5))];
        let before = CoVvEncoder.encode(&cs, &v).unwrap();
        // Cluster reconfiguration: value 10 appears.
        v.observe(0, &AttrValue::Int(10));
        let after = CoVvEncoder.encode(&cs, &v).unwrap();
        // Old columns keep their meaning (prefix identical)...
        assert_eq!(&after[..before.len()], &before[..]);
        // ...and the new value (10 >= 5, acceptable) adds no mark.
        assert_eq!(after.len(), before.len());
        // A task rejecting 10 marks exactly the appended column.
        let cs2 = vec![TaskConstraint::new(0, Op::LessThan(10))];
        let r2 = CoVvEncoder.encode(&cs2, &v).unwrap();
        assert!(
            r2.contains(&(11, 1.0)),
            "column 11 is the appended value-10 column"
        );
    }

    #[test]
    fn equal_constraint_marks_everything_but_the_value() {
        let v = table7_vocab();
        let cs = vec![TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(4))))];
        let entries = CoVvEncoder.encode(&cs, &v).unwrap();
        // 10 of 11 columns marked: (none) and all values except 4.
        assert_eq!(entries.len(), 10);
        assert!(
            !entries.iter().any(|&(c, _)| c == 5),
            "value-4 column must stay 0"
        );
    }

    #[test]
    fn present_marks_only_the_none_column() {
        let v = table7_vocab();
        let cs = vec![TaskConstraint::new(0, Op::Present)];
        assert_eq!(CoVvEncoder.encode(&cs, &v).unwrap(), vec![(0, 1.0)]);
    }

    #[test]
    fn not_present_marks_every_value_column() {
        let v = table7_vocab();
        let cs = vec![TaskConstraint::new(0, Op::NotPresent)];
        let entries = CoVvEncoder.encode(&cs, &v).unwrap();
        assert_eq!(entries.len(), 10);
        assert!(
            !entries.iter().any(|&(c, _)| c == 0),
            "(none) column must stay 0"
        );
    }

    #[test]
    fn contradiction_propagates_as_error() {
        let v = table7_vocab();
        let cs = vec![
            TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(1)))),
            TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(7)))),
        ];
        assert!(CoVvEncoder.encode(&cs, &v).is_err());
    }
}
