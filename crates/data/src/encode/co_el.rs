//! CO-EL — constraint operators as encoded labels (§III.C, Table VI).
//!
//! The original encoding from the paper's prior work \[27\]: each collapsed
//! constraint (attribute + operator + value) is treated as an opaque
//! *label*; the label set is one-hot encoded, so a task's row has a 1 in
//! the column of every label it carries.
//!
//! Its disadvantage — the reason the paper moves to CO-VV — is that a
//! newly appearing CO needs to be label re-encoded, and the label space
//! has no overlapping structure for a model to generalise over, so the
//! model may need full retraining. We reproduce the encoding faithfully so
//! the paper's negative result (“the growing model approach worked well
//! for CO-VV but not for CO-EL”) is demonstrable.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use ctlm_trace::TaskConstraint;

use crate::compaction::{collapse, AttrRequirement, CompactionError};

/// Stateful CO-EL encoder: owns the append-only label → column map.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CoElEncoder {
    labels: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl CoElEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of label columns allocated so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no label has been seen.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label string at a column.
    pub fn label_at(&self, col: usize) -> Option<&str> {
        self.labels.get(col).map(|s| s.as_str())
    }

    /// Encodes a task, registering any new labels (which is exactly the
    /// re-encoding burden the paper criticises).
    pub fn encode(
        &mut self,
        constraints: &[TaskConstraint],
    ) -> Result<Vec<(usize, f32)>, CompactionError> {
        let reqs = collapse(constraints)?;
        Ok(self.encode_requirements(&reqs))
    }

    /// Encodes pre-collapsed requirements.
    pub fn encode_requirements(&mut self, reqs: &[AttrRequirement]) -> Vec<(usize, f32)> {
        let mut out = Vec::new();
        for req in reqs {
            let label = req.to_string();
            let col = match self.index.get(&label) {
                Some(&c) => c,
                None => {
                    let c = self.labels.len();
                    self.labels.push(label.clone());
                    self.index.insert(label, c);
                    c
                }
            };
            out.push((col, 1.0));
        }
        out.sort_unstable_by_key(|&(c, _)| c);
        out.dedup_by_key(|&mut (c, _)| c);
        out
    }

    /// Encodes without registering new labels; unknown labels are dropped.
    /// Used when a frozen model must score new tasks (the failure mode the
    /// paper describes: unseen COs are invisible to a CO-EL model).
    pub fn encode_frozen(
        &self,
        constraints: &[TaskConstraint],
    ) -> Result<Vec<(usize, f32)>, CompactionError> {
        let reqs = collapse(constraints)?;
        let mut out = Vec::new();
        for req in reqs {
            if let Some(&c) = self.index.get(&req.to_string()) {
                out.push((c, 1.0));
            }
        }
        out.sort_unstable_by_key(|&(c, _)| c);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_trace::{AttrValue, ConstraintOp as Op};

    fn c(attr: u32, op: Op) -> TaskConstraint {
        TaskConstraint::new(attr, op)
    }

    #[test]
    fn same_collapsed_constraint_reuses_column() {
        let mut e = CoElEncoder::new();
        let r1 = e
            .encode(&[c(0, Op::Equal(Some(AttrValue::Int(1))))])
            .unwrap();
        let r2 = e
            .encode(&[c(0, Op::Equal(Some(AttrValue::Int(1))))])
            .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn distinct_values_get_distinct_labels() {
        let mut e = CoElEncoder::new();
        e.encode(&[c(0, Op::Equal(Some(AttrValue::Int(1))))])
            .unwrap();
        e.encode(&[c(0, Op::Equal(Some(AttrValue::Int(2))))])
            .unwrap();
        assert_eq!(e.len(), 2, "CO-EL cannot share structure across values");
    }

    #[test]
    fn collapsing_happens_before_labelling() {
        let mut e = CoElEncoder::new();
        // The Table V row-1 triple collapses to one Between label.
        let r = e
            .encode(&[
                c(0, Op::LessThan(8)),
                c(0, Op::LessThan(3)),
                c(0, Op::GreaterThan(0)),
            ])
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(e.label_at(0), Some("3 > ${0} > 0"));
    }

    #[test]
    fn multi_attribute_tasks_mark_multiple_columns() {
        let mut e = CoElEncoder::new();
        let r = e
            .encode(&[c(0, Op::Present), c(1, Op::NotEqual(AttrValue::from("a")))])
            .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn frozen_encoding_drops_unseen_labels() {
        let mut e = CoElEncoder::new();
        e.encode(&[c(0, Op::Present)]).unwrap();
        let frozen = e
            .encode_frozen(&[c(0, Op::Present), c(2, Op::NotPresent)])
            .unwrap();
        assert_eq!(
            frozen.len(),
            1,
            "unseen CO must be invisible to a frozen CO-EL model"
        );
        assert_eq!(e.len(), 1, "frozen encoding must not register labels");
    }

    #[test]
    fn label_space_grows_monotonically() {
        let mut e = CoElEncoder::new();
        for v in 0..10 {
            e.encode(&[c(0, Op::Equal(Some(AttrValue::Int(v))))])
                .unwrap();
        }
        assert_eq!(e.len(), 10);
        for v in 0..10 {
            let r = e
                .encode(&[c(0, Op::Equal(Some(AttrValue::Int(v))))])
                .unwrap();
            assert_eq!(r[0].0, v as usize, "columns must be stable");
        }
    }
}
