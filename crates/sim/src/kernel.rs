//! The simulation kernel: components, contexts, and the run loop.

use crate::event::{Event, EventQueue, LaneStats, Time};

/// Component identifier, assigned sequentially at registration.
pub type CompId = usize;

/// An event handler registered on the kernel.
///
/// Handlers receive events *by value* — payloads move through the
/// simulation without cloning — and emit follow-up events through the
/// [`Ctx`]. Components that share mutable state (e.g. a cluster) do so
/// via `Rc<RefCell<...>>`, dslab-style; the kernel itself is
/// single-threaded.
pub trait Component<E> {
    /// Handles one delivered event at `ctx.now() == event.time`.
    fn on_event(&mut self, event: Event<E>, ctx: &mut Ctx<'_, E>);
}

/// Emission context handed to a component while it handles an event.
///
/// Emissions are buffered and flushed into the queue after the handler
/// returns, in emission order — so a handler that emits `a` then `b` at
/// the same timestamp is guaranteed `a` delivers first.
pub struct Ctx<'a, E> {
    now: Time,
    self_id: CompId,
    out: &'a mut Vec<(Time, u8, CompId, E)>,
    outbox: &'a mut Vec<(Time, u8, CompId, E)>,
}

impl<E> Ctx<'_, E> {
    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The handling component's own id.
    pub fn self_id(&self) -> CompId {
        self.self_id
    }

    /// Emits `payload` to `dst` after `delay` microseconds, in delivery
    /// class 0 (first at its timestamp).
    pub fn emit(&mut self, delay: Time, dst: CompId, payload: E) {
        self.emit_prio(delay, 0, dst, payload);
    }

    /// [`Ctx::emit`] with an explicit delivery class — lower classes
    /// deliver first among events sharing a timestamp.
    pub fn emit_prio(&mut self, delay: Time, priority: u8, dst: CompId, payload: E) {
        self.out.push((self.now + delay, priority, dst, payload));
    }

    /// Emits `payload` to `dst` at absolute time `time` (clamped to now —
    /// the clock never runs backwards).
    pub fn emit_at(&mut self, time: Time, dst: CompId, payload: E) {
        self.emit_at_prio(time, 0, dst, payload);
    }

    /// [`Ctx::emit_at`] with an explicit delivery class.
    pub fn emit_at_prio(&mut self, time: Time, priority: u8, dst: CompId, payload: E) {
        self.out.push((time.max(self.now), priority, dst, payload));
    }

    /// Emits `payload` back to the handling component after `delay` —
    /// the timer/self-wakeup pattern.
    pub fn emit_self(&mut self, delay: Time, payload: E) {
        let dst = self.self_id;
        self.emit(delay, dst, payload);
    }

    /// [`Ctx::emit_self`] with an explicit delivery class.
    pub fn emit_self_prio(&mut self, delay: Time, priority: u8, payload: E) {
        let dst = self.self_id;
        self.emit_prio(delay, priority, dst, payload);
    }

    /// Records `payload` in this simulation's **outbox** instead of its
    /// own queue: cross-shard traffic for a coordinator (see
    /// [`ParallelSim`](crate::parallel::ParallelSim)) to collect at the
    /// next epoch barrier. The entry is stamped `(now, priority,
    /// self_id)`; its position in the outbox is its per-shard sequence,
    /// so the coordinator can merge outboxes deterministically. In a
    /// plain single-timeline run the outbox is simply never drained
    /// unless the driver asks for it.
    pub fn emit_remote(&mut self, priority: u8, payload: E) {
        self.outbox
            .push((self.now, priority, self.self_id, payload));
    }
}

/// The simulation: a clock, the event queue, and the registered
/// components.
///
/// The lifetime parameter lets components borrow data owned by the
/// driver (e.g. the arrival list) instead of copying it into the
/// simulation.
pub struct Sim<'a, E> {
    now: Time,
    queue: EventQueue<E>,
    components: Vec<Option<Box<dyn Component<E> + 'a>>>,
    names: Vec<String>,
    out_buf: Vec<(Time, u8, CompId, E)>,
    outbox: Vec<(Time, u8, CompId, E)>,
    delivered: u64,
}

impl<'a, E> Default for Sim<'a, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, E> Sim<'a, E> {
    /// An empty simulation at time 0.
    pub fn new() -> Self {
        Self {
            now: 0,
            queue: EventQueue::new(),
            components: Vec::new(),
            names: Vec::new(),
            out_buf: Vec::new(),
            outbox: Vec::new(),
            delivered: 0,
        }
    }

    /// Registers a component under `name`, returning its id.
    pub fn add_component(&mut self, name: impl Into<String>, c: impl Component<E> + 'a) -> CompId {
        let id = self.components.len();
        self.components.push(Some(Box::new(c)));
        self.names.push(name.into());
        id
    }

    /// A registered component's name.
    pub fn name(&self, id: CompId) -> &str {
        &self.names[id]
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Per-lane queue routing/pop counters — sim-plane telemetry, a pure
    /// function of the event sequence (see [`LaneStats`]).
    pub fn lane_stats(&self) -> LaneStats {
        self.queue.lane_stats()
    }

    /// Pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event from outside any handler (simulation seeding),
    /// in delivery class 0.
    ///
    /// # Panics
    /// Panics when `time` is before the current clock.
    pub fn schedule(&mut self, time: Time, src: CompId, dst: CompId, payload: E) {
        self.schedule_prio(time, 0, src, dst, payload);
    }

    /// [`Sim::schedule`] with an explicit delivery class.
    ///
    /// # Panics
    /// Panics when `time` is before the current clock.
    pub fn schedule_prio(
        &mut self,
        time: Time,
        priority: u8,
        src: CompId,
        dst: CompId,
        payload: E,
    ) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.queue.push(time, priority, src, dst, payload);
    }

    /// Schedules a time-ordered bulk stream (e.g. a replayed trace) in
    /// one O(N) pass — see
    /// [`EventQueue::push_sorted_batch`](crate::event::EventQueue::push_sorted_batch).
    ///
    /// # Panics
    /// Panics if the batch is out of order or starts before the clock.
    pub fn schedule_batch(
        &mut self,
        priority: u8,
        src: CompId,
        dst: CompId,
        batch: impl IntoIterator<Item = (Time, E)>,
    ) {
        let now = self.now;
        self.queue.push_sorted_batch(
            priority,
            src,
            dst,
            batch.into_iter().inspect(move |(t, _)| {
                assert!(*t >= now, "cannot schedule into the past");
            }),
        );
    }

    /// Delivers the earliest pending event. Returns false when the queue
    /// is empty. Events addressed to unregistered components are dropped
    /// (counted as delivered) — the equivalent of dslab's undelivered-log.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "queue violated time order");
        self.now = ev.time;
        self.delivered += 1;
        let dst = ev.dst;
        // Take the handler out so it can receive `&mut self` while the
        // kernel stays borrowable through the context.
        let mut handler = match self.components.get_mut(dst).and_then(Option::take) {
            Some(h) => h,
            None => return true, // unknown dst or re-entrant delivery: drop
        };
        let mut ctx = Ctx {
            now: self.now,
            self_id: dst,
            out: &mut self.out_buf,
            outbox: &mut self.outbox,
        };
        handler.on_event(ev, &mut ctx);
        self.components[dst] = Some(handler);
        for (time, priority, to, payload) in self.out_buf.drain(..) {
            self.queue.push(time, priority, dst, to, payload);
        }
        true
    }

    /// Runs until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the next event lies strictly
    /// beyond `horizon`; events at exactly `horizon` are delivered. The
    /// clock never advances past the last delivered event.
    pub fn run_until(&mut self, horizon: Time) {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
    }

    /// Runs until the queue is empty or the next event lies at or beyond
    /// `bound` (exclusive — the epoch-barrier counterpart of
    /// [`Sim::run_until`]): every event strictly before `bound` is
    /// delivered, events at `bound` stay pending for the next epoch.
    pub fn run_before(&mut self, bound: Time) {
        while let Some(t) = self.queue.peek_time() {
            if t >= bound {
                break;
            }
            self.step();
        }
    }

    /// Delivery time of the earliest pending event, if any.
    pub fn next_event_time(&mut self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Drains the cross-shard outbox (entries recorded by
    /// [`Ctx::emit_remote`] since the last take), in emission order.
    pub fn take_outbox(&mut self) -> Vec<(Time, u8, CompId, E)> {
        std::mem::take(&mut self.outbox)
    }

    /// True when [`Ctx::emit_remote`] entries are waiting to be taken.
    pub fn has_outbox(&self) -> bool {
        !self.outbox.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records every delivery into a shared log.
    struct Recorder {
        log: Rc<RefCell<Vec<(Time, u32)>>>,
    }
    impl Component<u32> for Recorder {
        fn on_event(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
            self.log.borrow_mut().push((ctx.now(), ev.payload));
        }
    }

    /// Emits `payload + 1` to a recorder every `period` until `until`.
    struct Timer {
        period: Time,
        until: Time,
        dst: CompId,
    }
    impl Component<u32> for Timer {
        fn on_event(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
            ctx.emit(0, self.dst, ev.payload);
            if ctx.now() + self.period <= self.until {
                ctx.emit_self(self.period, ev.payload + 1);
            }
        }
    }

    #[test]
    fn timer_chain_fires_on_schedule() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let rec = sim.add_component("rec", Recorder { log: log.clone() });
        let timer = sim.add_component(
            "timer",
            Timer {
                period: 10,
                until: 35,
                dst: rec,
            },
        );
        sim.schedule(5, timer, timer, 0);
        sim.run();
        assert_eq!(*log.borrow(), vec![(5, 0), (15, 1), (25, 2), (35, 3)]);
        assert_eq!(sim.now(), 35);
    }

    #[test]
    fn same_time_events_deliver_in_emission_order() {
        struct Burst {
            dst: CompId,
        }
        impl Component<u32> for Burst {
            fn on_event(&mut self, _ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
                for i in 0..5 {
                    ctx.emit(0, self.dst, i);
                }
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let rec = sim.add_component("rec", Recorder { log: log.clone() });
        let burst = sim.add_component("burst", Burst { dst: rec });
        sim.schedule(7, burst, burst, 0);
        sim.run();
        let got: Vec<u32> = log.borrow().iter().map(|&(_, p)| p).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.now(), 7, "zero-delay events must not advance time");
    }

    #[test]
    fn run_until_stops_at_horizon_inclusive() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let rec = sim.add_component("rec", Recorder { log: log.clone() });
        for t in [10, 20, 30, 40] {
            sim.schedule(t, rec, rec, t as u32);
        }
        sim.run_until(30);
        assert_eq!(log.borrow().len(), 3);
        assert_eq!(sim.now(), 30);
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(log.borrow().len(), 4);
    }

    #[test]
    fn components_can_borrow_driver_data() {
        // The lifetime parameter at work: the component reads from a
        // slice owned by the test frame.
        let data = vec![3u32, 1, 4, 1, 5];
        struct Summer<'s> {
            data: &'s [u32],
            total: Rc<RefCell<u32>>,
        }
        impl<E> Component<E> for Summer<'_> {
            fn on_event(&mut self, _ev: Event<E>, _ctx: &mut Ctx<'_, E>) {
                *self.total.borrow_mut() += self.data.iter().sum::<u32>();
            }
        }
        let total = Rc::new(RefCell::new(0));
        let mut sim: Sim<'_, ()> = Sim::new();
        let s = sim.add_component(
            "sum",
            Summer {
                data: &data,
                total: total.clone(),
            },
        );
        sim.schedule(0, s, s, ());
        sim.run();
        assert_eq!(*total.borrow(), 14);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim: Sim<'_, ()> = Sim::new();
        let id = sim.add_component("noop", NoOp);
        sim.schedule(50, id, id, ());
        sim.run();
        sim.schedule(10, id, id, ());
    }

    struct NoOp;
    impl Component<()> for NoOp {
        fn on_event(&mut self, _ev: Event<()>, _ctx: &mut Ctx<'_, ()>) {}
    }
}
