//! Typed events and the deterministic event queue.

use std::collections::BinaryHeap;

use crate::kernel::CompId;

/// Simulation time in microseconds — the GCD trace convention shared by
/// every consumer of the kernel.
pub type Time = u64;

/// A scheduled event: a payload travelling from `src` to `dst`, delivered
/// at `time`.
#[derive(Clone, Debug)]
pub struct Event<E> {
    /// Delivery time (µs).
    pub time: Time,
    /// Delivery class at equal timestamps: lower delivers first. Lets a
    /// model define intra-instant phases (e.g. completions before
    /// admissions before the scheduling pass) without fragile reliance on
    /// insertion order.
    pub priority: u8,
    /// Queue insertion number — the final, stable tie-break for events
    /// sharing `(time, priority)`, and a per-run unique id.
    pub seq: u64,
    /// Component that scheduled the event.
    pub src: CompId,
    /// Component the event is delivered to.
    pub dst: CompId,
    /// The typed payload.
    pub payload: E,
}

/// Heap entry ordered as a *min*-heap on `(time, seq)`. Payloads never
/// participate in ordering, so `E` needs no trait bounds.
struct Entry<E>(Event<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.0.time, other.0.priority, other.0.seq).cmp(&(
            self.0.time,
            self.0.priority,
            self.0.seq,
        ))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The pending-event queue: a binary heap with a stable
/// `(time, priority, seq)` total order, so two runs that schedule the
/// same events pop them in the same order — the kernel's reproducibility
/// guarantee.
///
/// Bulk pre-sorted streams (a replayed trace is one long time-ordered
/// event list) take a second lane: [`EventQueue::push_sorted_batch`]
/// appends them to a FIFO that [`EventQueue::pop`] merges with the heap,
/// so feeding N already-ordered events costs O(N) instead of
/// O(N log N) heap sifts.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    sorted: std::collections::VecDeque<Event<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            sorted: std::collections::VecDeque::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event, assigning the next sequence number.
    pub fn push(&mut self, time: Time, priority: u8, src: CompId, dst: CompId, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(Event {
            time,
            priority,
            seq,
            src,
            dst,
            payload,
        }));
    }

    /// Appends a time-ordered batch to the sorted lane, assigning
    /// sequence numbers in stream order.
    ///
    /// # Panics
    /// Panics if the batch is not sorted by time, or starts before the
    /// sorted lane's current tail.
    pub fn push_sorted_batch(
        &mut self,
        priority: u8,
        src: CompId,
        dst: CompId,
        batch: impl IntoIterator<Item = (Time, E)>,
    ) {
        let mut last = self.sorted.back().map(|e| e.time).unwrap_or(0);
        for (time, payload) in batch {
            assert!(time >= last, "sorted batch out of order");
            last = time;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.sorted.push_back(Event {
                time,
                priority,
                seq,
                src,
                dst,
                payload,
            });
        }
    }

    /// Removes and returns the earliest event across both lanes.
    pub fn pop(&mut self) -> Option<Event<E>> {
        let take_sorted = match (self.sorted.front(), self.heap.peek()) {
            (Some(s), Some(h)) => (s.time, s.priority, s.seq) < (h.0.time, h.0.priority, h.0.seq),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_sorted {
            self.sorted.pop_front()
        } else {
            self.heap.pop().map(|e| e.0)
        }
    }

    /// Delivery time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        let s = self.sorted.front().map(|e| e.time);
        let h = self.heap.peek().map(|e| e.0.time);
        match (s, h) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.sorted.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 0, 0, 0, "c");
        q.push(10, 0, 0, 0, "a");
        q.push(20, 0, 0, 0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(5, 0, 0, 0, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seq_is_globally_unique_across_times() {
        let mut q = EventQueue::new();
        q.push(1, 0, 0, 0, ());
        q.push(1, 0, 0, 0, ());
        q.push(0, 0, 0, 0, ());
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.seq)).collect();
        assert_eq!(seqs, vec![2, 0, 1]);
    }

    #[test]
    fn priority_orders_within_a_timestamp() {
        let mut q = EventQueue::new();
        q.push(5, 2, 0, 0, "pass");
        q.push(5, 0, 0, 0, "finish");
        q.push(5, 1, 0, 0, "admit");
        q.push(4, 9, 0, 0, "earlier");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["earlier", "finish", "admit", "pass"]);
    }
}
