//! Typed events and the deterministic event queue.

use std::collections::BinaryHeap;

use crate::kernel::CompId;

/// Simulation time in microseconds — the GCD trace convention shared by
/// every consumer of the kernel.
pub type Time = u64;

/// A scheduled event: a payload travelling from `src` to `dst`, delivered
/// at `time`.
#[derive(Clone, Debug)]
pub struct Event<E> {
    /// Delivery time (µs).
    pub time: Time,
    /// Delivery class at equal timestamps: lower delivers first. Lets a
    /// model define intra-instant phases (e.g. completions before
    /// admissions before the scheduling pass) without fragile reliance on
    /// insertion order.
    pub priority: u8,
    /// Queue insertion number — the final, stable tie-break for events
    /// sharing `(time, priority)`, and a per-run unique id.
    pub seq: u64,
    /// Component that scheduled the event.
    pub src: CompId,
    /// Component the event is delivered to.
    pub dst: CompId,
    /// The typed payload.
    pub payload: E,
}

/// Heap entry ordered as a *min*-heap on `(time, seq)`. Payloads never
/// participate in ordering, so `E` needs no trait bounds.
struct Entry<E>(Event<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.0.time, other.0.priority, other.0.seq).cmp(&(
            self.0.time,
            self.0.priority,
            self.0.seq,
        ))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Always-on per-lane routing and pop counters — sim-plane telemetry.
///
/// Each field is a plain `u64` bumped on the corresponding branch of
/// [`EventQueue::push`] / [`EventQueue::push_sorted_batch`] /
/// [`EventQueue::pop`]; maintaining them is a handful of increments per
/// event and never allocates, so they are unconditionally on. The values
/// are a pure function of the (deterministic) event sequence — identical
/// across thread counts for a given shard — which makes them safe to
/// export into byte-compared metrics files.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// `push` calls routed into a timer-wheel slot.
    pub push_wheel: u64,
    /// `push` calls routed to the binary heap.
    pub push_heap: u64,
    /// Batch events routed into a timer-wheel slot.
    pub batch_wheel: u64,
    /// Batch events appended to the sorted FIFO lane.
    pub batch_sorted: u64,
    /// Events popped out of a drained wheel slot.
    pub pop_wheel: u64,
    /// Events popped from the sorted FIFO lane.
    pub pop_sorted: u64,
    /// Events popped from the binary heap.
    pub pop_heap: u64,
}

/// Log2 of the timer-wheel slot granularity in µs: one slot covers
/// 2^16 µs ≈ 65 ms of simulated time.
const WHEEL_SHIFT: u32 = 16;
/// Timer-wheel slot count (one revolution covers ≈ 67 s of simulated
/// time at the 65 ms granularity).
const WHEEL_SLOTS: usize = 1024;

/// The pending-event queue: a stable `(time, priority, seq)` total
/// order, so two runs that schedule the same events pop them in the same
/// order — the kernel's reproducibility guarantee.
///
/// Three lanes hold pending events; the total order is lane-independent
/// (pop always compares the lane heads by the full key), so lane routing
/// is pure placement policy:
///
/// * **heap** — the general O(log n) lane;
/// * **sorted** — bulk pre-sorted streams (a replayed trace is one long
///   time-ordered event list): [`EventQueue::push_sorted_batch`] appends
///   to a FIFO, so feeding N already-ordered events costs O(N) instead
///   of O(N log N) heap sifts;
/// * **wheel** — a timing-wheel lane for the near future (the dominant
///   `emit_self` cycle-timer and task-completion pattern): events within
///   one wheel revolution of the clock land in a bucketed slot in O(1)
///   and are sorted per slot only when the clock reaches it, keeping the
///   heap small and each slot sort tiny. Slot vectors and the active-run
///   buffer are reused across revolutions, so the steady-state cycle
///   pattern allocates nothing.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    sorted: std::collections::VecDeque<Event<E>>,
    /// Timer-wheel slots; slot `page % WHEEL_SLOTS` holds events of
    /// exactly one time page (`time >> WHEEL_SHIFT`) at a time.
    wheel: Vec<Vec<Event<E>>>,
    /// Events currently resident in wheel slots.
    wheel_len: usize,
    /// The page the wheel has been drained through: pushes for this page
    /// or earlier go to the heap.
    active_page: u64,
    /// The drained slot currently being consumed, sorted by
    /// `(time, priority, seq)` **descending** so the head pops from the
    /// back in O(1).
    run: Vec<Event<E>>,
    next_seq: u64,
    /// Per-lane routing/pop counters (always on; see [`LaneStats`]).
    stats: LaneStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            sorted: std::collections::VecDeque::new(),
            wheel: std::iter::repeat_with(Vec::new).take(WHEEL_SLOTS).collect(),
            wheel_len: 0,
            active_page: 0,
            run: Vec::new(),
            next_seq: 0,
            stats: LaneStats::default(),
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event, assigning the next sequence number.
    pub fn push(&mut self, time: Time, priority: u8, src: CompId, dst: CompId, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event {
            time,
            priority,
            seq,
            src,
            dst,
            payload,
        };
        let page = time >> WHEEL_SHIFT;
        if page > self.active_page && page - self.active_page < WHEEL_SLOTS as u64 {
            self.wheel[(page % WHEEL_SLOTS as u64) as usize].push(ev);
            self.wheel_len += 1;
            self.stats.push_wheel += 1;
        } else {
            self.heap.push(Entry(ev));
            self.stats.push_heap += 1;
        }
    }

    /// Ensures the wheel's earliest events are visible in the active run:
    /// advances the wheel page by page until a non-empty slot is drained
    /// (sorted descending for O(1) pops). Invariant: a slot holds events
    /// of exactly one page, because pushes land strictly beyond
    /// `active_page` and never more than one revolution ahead.
    fn prime(&mut self) {
        while self.run.is_empty() && self.wheel_len > 0 {
            self.active_page += 1;
            let slot = &mut self.wheel[(self.active_page % WHEEL_SLOTS as u64) as usize];
            if !slot.is_empty() {
                self.wheel_len -= slot.len();
                std::mem::swap(&mut self.run, slot);
                self.run.sort_unstable_by(|a, b| {
                    (b.time, b.priority, b.seq).cmp(&(a.time, a.priority, a.seq))
                });
            }
        }
    }

    /// Schedules a time-ordered bulk stream, assigning sequence numbers
    /// in stream order.
    ///
    /// Each event is routed by the same placement policy as
    /// [`EventQueue::push`]: events whose time page falls inside the
    /// wheel window land in a wheel slot in O(1), everything further out
    /// appends to the sorted FIFO lane. Since sequence numbers follow the
    /// stream and the `(time, priority, seq)` total order is
    /// lane-independent, the pop order is identical whichever lane held
    /// an event — wheel routing just keeps near-future batch spans out of
    /// the sorted lane, so batches may overlap within the wheel horizon
    /// (a second replay stream or another cell's arrivals can start
    /// before the first stream's tail).
    ///
    /// # Panics
    /// Panics if the batch is not internally sorted by time, or if an
    /// event beyond the wheel window starts before the sorted lane's
    /// current tail.
    pub fn push_sorted_batch(
        &mut self,
        priority: u8,
        src: CompId,
        dst: CompId,
        batch: impl IntoIterator<Item = (Time, E)>,
    ) {
        let mut tail = self.sorted.back().map(|e| e.time).unwrap_or(0);
        let mut prev = 0;
        for (time, payload) in batch {
            assert!(time >= prev, "sorted batch out of order");
            prev = time;
            let seq = self.next_seq;
            self.next_seq += 1;
            let ev = Event {
                time,
                priority,
                seq,
                src,
                dst,
                payload,
            };
            let page = time >> WHEEL_SHIFT;
            if page > self.active_page && page - self.active_page < WHEEL_SLOTS as u64 {
                self.wheel[(page % WHEEL_SLOTS as u64) as usize].push(ev);
                self.wheel_len += 1;
                self.stats.batch_wheel += 1;
            } else {
                assert!(time >= tail, "sorted batch out of order");
                tail = time;
                self.sorted.push_back(ev);
                self.stats.batch_sorted += 1;
            }
        }
    }

    /// Removes and returns the earliest event across all lanes.
    pub fn pop(&mut self) -> Option<Event<E>> {
        self.prime();
        // Lane heads by (time, priority, seq); the smallest key wins.
        let key = |e: &Event<E>| (e.time, e.priority, e.seq);
        let heads = [
            self.run.last().map(&key),
            self.sorted.front().map(&key),
            self.heap.peek().map(|e| key(&e.0)),
        ];
        let winner = heads
            .iter()
            .enumerate()
            .filter_map(|(lane, k)| k.map(|k| (k, lane)))
            .min()?
            .1;
        let ev = match winner {
            0 => {
                self.stats.pop_wheel += 1;
                self.run.pop()
            }
            1 => {
                self.stats.pop_sorted += 1;
                self.sorted.pop_front()
            }
            _ => {
                self.stats.pop_heap += 1;
                self.heap.pop().map(|e| e.0)
            }
        };
        if let Some(ev) = &ev {
            if self.wheel_len == 0 && self.run.is_empty() {
                // Wheel idle: fast-forward its window to the clock so
                // near-future pushes use it again.
                self.active_page = self.active_page.max(ev.time >> WHEEL_SHIFT);
            }
        }
        ev
    }

    /// Delivery time of the earliest event, if any.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.prime();
        [
            self.run.last().map(|e| e.time),
            self.sorted.front().map(|e| e.time),
            self.heap.peek().map(|e| e.0.time),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.sorted.len() + self.wheel_len + self.run.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the per-lane routing/pop counters.
    pub fn lane_stats(&self) -> LaneStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 0, 0, 0, "c");
        q.push(10, 0, 0, 0, "a");
        q.push(20, 0, 0, 0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(5, 0, 0, 0, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seq_is_globally_unique_across_times() {
        let mut q = EventQueue::new();
        q.push(1, 0, 0, 0, ());
        q.push(1, 0, 0, 0, ());
        q.push(0, 0, 0, 0, ());
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.seq)).collect();
        assert_eq!(seqs, vec![2, 0, 1]);
    }

    #[test]
    fn wheel_lane_preserves_total_order_across_lanes() {
        // Mix near-future events (wheel), far-future events (heap), and
        // current-page events (heap) in a scrambled push order; pops must
        // follow the exact (time, priority, seq) total order regardless
        // of which lane held each event.
        let mut q = EventQueue::new();
        let slot = 1u64 << WHEEL_SHIFT;
        let horizon = slot * WHEEL_SLOTS as u64;
        let mut expect: Vec<(Time, u8, u64)> = Vec::new();
        let mut state = 0x9E37_79B9u64;
        for i in 0..3000u64 {
            // Deterministic pseudo-random times spanning page 0, the
            // wheel window, and several revolutions beyond it.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let time = state % (3 * horizon);
            let priority = (state >> 32) as u8 % 3;
            q.push(time, priority, 0, 0, i);
            expect.push((time, priority, i));
        }
        expect.sort_unstable();
        let got: Vec<(Time, u8, u64)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.time, e.priority, e.seq))).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn wheel_and_heap_interleave_with_incremental_pushes() {
        // The cycle-timer pattern: pop one event, push the next wake-up —
        // exercising prime()/fast-forward across many wheel revolutions.
        let mut q = EventQueue::new();
        let period = 700_000u64; // lands in the wheel window
        q.push(period, 0, 0, 0, 0u32);
        let mut last = 0u64;
        for k in 1..200u32 {
            let ev = q.pop().expect("timer pending");
            assert!(ev.time > last, "time must advance monotonically");
            last = ev.time;
            q.push(ev.time + period, 0, 0, 0, k);
            // A far-future completion beyond the wheel window each tick.
            q.push(ev.time + 400_000_000, 1, 0, 0, 10_000 + k);
        }
        // Everything still pending pops in time order.
        let mut prev = 0u64;
        while let Some(ev) = q.pop() {
            assert!(ev.time >= prev);
            prev = ev.time;
        }
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_lane_len_accounts_all_lanes() {
        let mut q = EventQueue::new();
        q.push(1 << WHEEL_SHIFT, 0, 0, 0, "wheel");
        q.push(0, 0, 0, 0, "heap");
        q.push_sorted_batch(0, 0, 0, [(5u64, "sorted")]);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(0));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["heap", "sorted", "wheel"]);
        assert!(q.is_empty());
    }

    #[test]
    fn sorted_batches_route_through_the_wheel_window() {
        // Two batches overlapping inside the wheel horizon: the wheel
        // absorbs the near-future spans, so the second batch may start
        // before the first one's tail, and pops still follow the global
        // (time, priority, seq) order.
        let slot = 1u64 << WHEEL_SHIFT;
        let horizon = slot * WHEEL_SLOTS as u64;
        let mut q = EventQueue::new();
        let batch_a: Vec<(Time, u64)> = (0..400u64)
            .map(|i| (slot + i * slot / 2, i))
            .chain((0..50u64).map(|i| (horizon + i * slot, 1000 + i)))
            .collect();
        let batch_b: Vec<(Time, u64)> = (0..400u64)
            .map(|i| (slot * 3 + i * slot / 3, 2000 + i))
            .collect();
        let mut expect: Vec<(Time, u8, u64)> = batch_a
            .iter()
            .chain(batch_b.iter())
            .enumerate()
            .map(|(seq, (t, _))| (*t, 0, seq as u64))
            .collect();
        expect.sort_unstable();
        q.push_sorted_batch(0, 0, 0, batch_a);
        q.push_sorted_batch(0, 0, 0, batch_b);
        let got: Vec<(Time, u8, u64)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.time, e.priority, e.seq))).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn lane_stats_track_routing_and_pops() {
        let mut q = EventQueue::new();
        q.push(1 << WHEEL_SHIFT, 0, 0, 0, "wheel");
        q.push(0, 0, 0, 0, "heap");
        q.push_sorted_batch(0, 0, 0, [(5u64, "sorted")]);
        let s = q.lane_stats();
        assert_eq!((s.push_wheel, s.push_heap), (1, 1));
        assert_eq!((s.batch_wheel, s.batch_sorted), (0, 1));
        while q.pop().is_some() {}
        let s = q.lane_stats();
        assert_eq!((s.pop_wheel, s.pop_sorted, s.pop_heap), (1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "sorted batch out of order")]
    fn unsorted_batch_panics() {
        let mut q = EventQueue::new();
        q.push_sorted_batch(0, 0, 0, [(10u64, "a"), (5, "b")]);
    }

    #[test]
    fn priority_orders_within_a_timestamp() {
        let mut q = EventQueue::new();
        q.push(5, 2, 0, 0, "pass");
        q.push(5, 0, 0, 0, "finish");
        q.push(5, 1, 0, 0, "admit");
        q.push(4, 9, 0, 0, "earlier");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["earlier", "finish", "admit", "pass"]);
    }
}
