//! Epoch-sharded parallel execution: many independent [`Sim`] shards
//! advancing in lock-step epochs on the worker pool.
//!
//! The model is conservative parallel discrete-event simulation in the
//! dslab style. Each *shard* (one simulation cell) owns a complete
//! [`Sim`] — its own clock, event queue, and components — and runs
//! independently up to the next epoch boundary
//! `t_epoch = (floor(t_min / epoch) + 1) * epoch`, where `t_min` is the
//! earliest pending event across all shards (so runs skip over empty
//! epochs instead of spinning barriers). Cross-shard traffic never
//! enters another shard's queue mid-epoch: a component calls
//! [`Ctx::emit_remote`](crate::Ctx::emit_remote), which records the
//! payload in the shard's *outbox*. At the barrier the coordinator
//! drains every outbox, merges the entries into a single list ordered by
//! `(time, priority, shard, seq)` — a total order fixed entirely by
//! simulation state, never by worker timing — and hands them to the
//! driver's barrier hook, which may schedule follow-up events into any
//! shard at or after the barrier time.
//!
//! Determinism is the contract: thread count only changes which OS
//! thread runs a shard's epoch, never the event order inside a shard
//! (each shard is a sequential [`Sim`]) nor the merge order at barriers
//! (fixed by the sort key). For a given set of shards, seeds, and epoch
//! length, results are bit-identical for any `threads` value.
//!
//! # Why `CellKernel` is `Send`
//!
//! Components are `Rc`/`RefCell`-rich and therefore not `Send` in
//! general. [`CellKernel`] asserts `Send` anyway, under an *island
//! invariant* the driver must uphold: every `Rc`/`RefCell` allocation
//! reachable from a shard's components is reachable only from (a) that
//! same shard and (b) barrier-time observers (the driver and the barrier
//! hook), which access it only while no worker is running the shard. The
//! pool's completion latch provides the happens-before edge between an
//! epoch's worker and the barrier, so those accesses never race. Sharing
//! an `Rc` between two shards, or touching a shard-held `Rc` from the
//! driver mid-epoch, violates the invariant and is undefined behaviour —
//! keep per-cell state per-cell, and move cross-cell state behind `Arc`.

use rayon::prelude::*;

use crate::event::Time;
use crate::kernel::{CompId, Sim};

/// A cross-shard message drained from a shard outbox at an epoch
/// barrier.
#[derive(Clone, Debug)]
pub struct RemoteEvent<E> {
    /// Shard-local time at which [`Ctx::emit_remote`](crate::Ctx::emit_remote)
    /// ran.
    pub time: Time,
    /// Delivery class, as for queued events.
    pub priority: u8,
    /// Index of the shard that emitted the message.
    pub shard: usize,
    /// Position in the emitting shard's outbox for this epoch — the
    /// final tie-break of the merge order.
    pub seq: u64,
    /// Component (in the emitting shard) that emitted the message.
    pub src: CompId,
    /// The typed payload.
    pub payload: E,
}

/// One shard: a [`Sim`] hosted on the coordinator, dispatchable to a
/// worker thread for the duration of an epoch.
///
/// Dereferences to the inner [`Sim`], so a barrier hook can call
/// [`Sim::schedule_prio`] etc. directly on a shard.
pub struct CellKernel<'a, E> {
    sim: Sim<'a, E>,
    shard: usize,
    /// Wall-clock ns the shard's last `run_before` took — written by
    /// whichever worker ran the shard this round (exactly one per round,
    /// so no race), read by the coordinator after the barrier. Only
    /// maintained when profiling is enabled.
    last_run_ns: u64,
}

// SAFETY: see the module docs ("Why `CellKernel` is `Send`"). The inner
// `Sim` is a self-contained island of non-`Send` state; the coordinator
// only moves it across threads between epochs, with the pool latch
// ordering every access.
unsafe impl<E: Send> Send for CellKernel<'_, E> {}

impl<'a, E> CellKernel<'a, E> {
    /// This shard's index in the coordinator.
    pub fn shard_id(&self) -> usize {
        self.shard
    }
}

impl<'a, E> std::ops::Deref for CellKernel<'a, E> {
    type Target = Sim<'a, E>;
    fn deref(&self) -> &Self::Target {
        &self.sim
    }
}

impl<'a, E> std::ops::DerefMut for CellKernel<'a, E> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.sim
    }
}

/// Bounds and setpoint for epoch-length autotuning — see
/// [`ParallelSim::set_autotune`].
///
/// A hand-picked epoch length is wrong somewhere: sparse fleets (1M
/// mostly-idle machines) want long epochs so rounds aren't dominated by
/// barrier overhead, dense bursts want short epochs so cross-shard
/// traffic isn't delayed and per-round work stays balanced. The
/// controller watches per-round event density and doubles or halves the
/// epoch toward `target` delivered events per round, clamped to
/// `[min, max]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochAutotune {
    /// Shortest epoch the controller may pick (µs).
    pub min: Time,
    /// Longest epoch the controller may pick (µs).
    pub max: Time,
    /// Desired events delivered per round; the epoch halves above
    /// `2 × target` and doubles below `target / 2`.
    pub target: u64,
}

impl Default for EpochAutotune {
    fn default() -> Self {
        Self {
            min: 1_000,       // 1 ms
            max: 600_000_000, // 10 min
            target: 4_096,
        }
    }
}

/// Host-plane wall-clock totals for one parallel run — where epoch time
/// went, per shard. Only maintained when
/// [`ParallelSim::enable_profiling`] was called; the numbers are
/// host-dependent and must never feed deterministic output (keep them in
/// `_perf`-style sections that byte-compares exclude).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParallelPerf {
    /// Rounds (epoch barriers) profiled.
    pub rounds: u64,
    /// Total coordinator time draining and merge-sorting outboxes (ns).
    pub drain_ns: u64,
    /// Per-shard total time inside `run_before` (ns).
    pub shard_run_ns: Vec<u64>,
    /// Per-shard total derived barrier wait (ns): per round, the slowest
    /// shard's run time minus this shard's. The spread across shards is
    /// the load-imbalance signal.
    pub shard_barrier_ns: Vec<u64>,
    /// Per-round epoch bounds (µs sim time), one entry per profiled
    /// round. Together with [`ParallelPerf::round_shard_run_ns`] this is
    /// the flight-recorder host track: where each shard's wall time went,
    /// round by round. In-memory only — the `_perf` report serialization
    /// carries totals, never these samples.
    pub round_bounds: Vec<Time>,
    /// Per-round per-shard `run_before` wall time (ns), row-major:
    /// `round_shard_run_ns[round * shards + shard]`.
    pub round_shard_run_ns: Vec<u64>,
}

/// The epoch-barrier coordinator: owns the shards, advances them epoch
/// by epoch (in parallel when `threads > 1`), and merges cross-shard
/// outboxes deterministically at each barrier.
pub struct ParallelSim<'a, E> {
    shards: Vec<CellKernel<'a, E>>,
    epoch: Time,
    threads: usize,
    barriers: u64,
    /// Epoch-length controller; `None` keeps the configured epoch fixed.
    autotune: Option<EpochAutotune>,
    /// `events_delivered()` at the previous barrier — the controller's
    /// per-round density signal.
    last_delivered: u64,
    /// Test-only override of the sequential execution order — see
    /// [`ParallelSim::set_sequential_order`].
    exec_order: Option<Vec<usize>>,
    /// Wall-clock profile accumulator; `None` (the default) keeps the
    /// run loop free of any timing calls.
    perf: Option<ParallelPerf>,
}

impl<'a, E: Send> ParallelSim<'a, E> {
    /// A coordinator with the given epoch length (µs) and thread count.
    ///
    /// `threads == 0` means "use the worker pool's configured width";
    /// `threads == 1` (or a single shard) runs shards sequentially on
    /// the calling thread — same semantics, no pool dispatch.
    ///
    /// # Panics
    /// Panics when `epoch` is 0.
    pub fn new(epoch: Time, threads: usize) -> Self {
        assert!(epoch > 0, "epoch length must be positive");
        Self {
            shards: Vec::new(),
            epoch,
            threads,
            barriers: 0,
            autotune: None,
            last_delivered: 0,
            exec_order: None,
            perf: None,
        }
    }

    /// Turns on host-plane profiling: subsequent [`ParallelSim::run_until`]
    /// rounds record per-shard `run_before` time, derived barrier wait,
    /// and coordinator drain time into a [`ParallelPerf`] readable via
    /// [`ParallelSim::perf`]. Off by default — the run loop then makes no
    /// clock calls at all, preserving the zero-overhead contract.
    pub fn enable_profiling(&mut self) {
        if self.perf.is_none() {
            self.perf = Some(ParallelPerf::default());
        }
    }

    /// The accumulated wall-clock profile, when profiling is enabled.
    pub fn perf(&self) -> Option<&ParallelPerf> {
        self.perf.as_ref()
    }

    /// Enables epoch-length autotuning: after every barrier the epoch
    /// halves when the round delivered more than `2 × target` events and
    /// doubles when it delivered fewer than `target / 2`, clamped to
    /// `[min, max]`. The signal (events delivered per round) depends only
    /// on simulation state, so tuned runs remain bit-identical for any
    /// thread count. The current epoch is clamped into the bounds
    /// immediately.
    ///
    /// # Panics
    /// Panics when `min` is 0 or `min > max`.
    pub fn set_autotune(&mut self, tune: EpochAutotune) {
        assert!(tune.min > 0, "autotune min epoch must be positive");
        assert!(tune.min <= tune.max, "autotune min must not exceed max");
        self.epoch = self.epoch.clamp(tune.min, tune.max);
        self.autotune = Some(tune);
    }

    /// Adds a shard, returning its index.
    pub fn add_shard(&mut self, sim: Sim<'a, E>) -> usize {
        let shard = self.shards.len();
        self.shards.push(CellKernel {
            sim,
            shard,
            last_run_ns: 0,
        });
        shard
    }

    /// Number of shards attached.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// A shard by index.
    pub fn shard(&self, i: usize) -> &CellKernel<'a, E> {
        &self.shards[i]
    }

    /// A shard by index, mutably.
    pub fn shard_mut(&mut self, i: usize) -> &mut CellKernel<'a, E> {
        &mut self.shards[i]
    }

    /// All shards, mutably (e.g. for seeding before the run).
    pub fn shards_mut(&mut self) -> &mut [CellKernel<'a, E>] {
        &mut self.shards
    }

    /// The configured epoch length (µs).
    pub fn epoch(&self) -> Time {
        self.epoch
    }

    /// Epoch barriers crossed so far (empty epochs are skipped, so this
    /// counts rounds that actually delivered events).
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Total events delivered across all shards.
    pub fn events_delivered(&self) -> u64 {
        self.shards.iter().map(|s| s.sim.events_delivered()).sum()
    }

    /// Overrides the order in which the *sequential* path (threads ≤ 1)
    /// runs shards within an epoch. Exists so tests can prove the merge
    /// order is independent of shard scheduling — any permutation of
    /// `0..num_shards()` must produce identical results. Ignored on the
    /// parallel path.
    #[doc(hidden)]
    pub fn set_sequential_order(&mut self, order: Vec<usize>) {
        assert_eq!(order.len(), self.shards.len());
        self.exec_order = Some(order);
    }

    /// Runs all shards up to `horizon` (inclusive, as
    /// [`Sim::run_until`]) in epoch-barrier rounds.
    ///
    /// Each round: find the earliest pending event time `t_min` across
    /// shards; stop if none remains or `t_min > horizon`; advance every
    /// shard through `[t_min, bound)` where
    /// `bound = min((t_min/epoch + 1) * epoch, horizon + 1)`; then drain
    /// the outboxes, merge them by `(time, priority, shard, seq)`, and
    /// call `hook(bound, messages, shards)`. The hook routes cross-shard
    /// traffic by scheduling events into target shards — at `bound` or
    /// later (times below a shard's clock panic, as always). Each round
    /// delivers at least one event (`bound > t_min`), so the loop
    /// terminates whenever the underlying simulation does.
    pub fn run_until<F>(&mut self, horizon: Time, mut hook: F)
    where
        F: FnMut(Time, Vec<RemoteEvent<E>>, &mut [CellKernel<'a, E>]),
    {
        let effective = match self.threads {
            0 => rayon::current_num_threads().max(1),
            t => t,
        };
        while let Some(t_min) = self
            .shards
            .iter_mut()
            .filter_map(|s| s.sim.next_event_time())
            .min()
        {
            if t_min > horizon {
                break;
            }
            let bound = (t_min / self.epoch + 1)
                .saturating_mul(self.epoch)
                .min(horizon.saturating_add(1));
            self.barriers += 1;
            let profile = self.perf.is_some();
            if effective > 1 && self.shards.len() > 1 {
                let chunk = self.shards.len().div_ceil(effective);
                self.shards.par_chunks_mut(chunk).for_each(|shards| {
                    for shard in shards {
                        if profile {
                            let t0 = std::time::Instant::now();
                            shard.sim.run_before(bound);
                            shard.last_run_ns = t0.elapsed().as_nanos() as u64;
                        } else {
                            shard.sim.run_before(bound);
                        }
                    }
                });
            } else {
                match &self.exec_order {
                    Some(order) => {
                        for &i in order {
                            let shard = &mut self.shards[i];
                            if profile {
                                let t0 = std::time::Instant::now();
                                shard.sim.run_before(bound);
                                shard.last_run_ns = t0.elapsed().as_nanos() as u64;
                            } else {
                                shard.sim.run_before(bound);
                            }
                        }
                    }
                    None => {
                        for shard in &mut self.shards {
                            if profile {
                                let t0 = std::time::Instant::now();
                                shard.sim.run_before(bound);
                                shard.last_run_ns = t0.elapsed().as_nanos() as u64;
                            } else {
                                shard.sim.run_before(bound);
                            }
                        }
                    }
                }
            }
            if let Some(perf) = &mut self.perf {
                perf.rounds += 1;
                perf.shard_run_ns.resize(self.shards.len(), 0);
                perf.shard_barrier_ns.resize(self.shards.len(), 0);
                // Barrier wait is derived: a worker that finished early
                // sat at the barrier for (slowest shard − its own) time.
                // With threads < shards this over-approximates (shards
                // sharing a worker run back to back), but the spread
                // remains the imbalance signal and the derivation keeps
                // the hot path free of any synchronised clocks.
                let round_max = self.shards.iter().map(|s| s.last_run_ns).max().unwrap_or(0);
                perf.round_bounds.push(bound);
                for (i, shard) in self.shards.iter().enumerate() {
                    perf.shard_run_ns[i] += shard.last_run_ns;
                    perf.shard_barrier_ns[i] += round_max - shard.last_run_ns;
                    perf.round_shard_run_ns.push(shard.last_run_ns);
                }
            }
            let drain_t0 = self.perf.is_some().then(std::time::Instant::now);
            let mut msgs: Vec<RemoteEvent<E>> = Vec::new();
            for (i, shard) in self.shards.iter_mut().enumerate() {
                if !shard.sim.has_outbox() {
                    continue;
                }
                for (seq, (time, priority, src, payload)) in
                    shard.sim.take_outbox().into_iter().enumerate()
                {
                    msgs.push(RemoteEvent {
                        time,
                        priority,
                        shard: i,
                        seq: seq as u64,
                        src,
                        payload,
                    });
                }
            }
            msgs.sort_by_key(|m| (m.time, m.priority, m.shard, m.seq));
            if let (Some(perf), Some(t0)) = (&mut self.perf, drain_t0) {
                perf.drain_ns += t0.elapsed().as_nanos() as u64;
            }
            hook(bound, msgs, &mut self.shards);
            if let Some(tune) = self.autotune {
                let delivered = self.events_delivered();
                let delta = delivered - self.last_delivered;
                self.last_delivered = delivered;
                if delta > tune.target.saturating_mul(2) {
                    self.epoch = (self.epoch / 2).max(tune.min);
                } else if delta < tune.target / 2 {
                    self.epoch = self.epoch.saturating_mul(2).min(tune.max);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::kernel::{Component, Ctx};
    use std::cell::RefCell;
    use std::rc::Rc;

    const HOPS: u64 = 64;
    const EPOCH: Time = 1 << 18;
    const HORIZON: Time = 1 << 26;

    /// Logs every delivery, forwards the hop count cross-shard, and
    /// spawns some shard-local echo traffic so epochs are not trivially
    /// single-event.
    struct Relay {
        log: Rc<RefCell<Vec<(Time, u64)>>>,
    }
    impl Component<u64> for Relay {
        fn on_event(&mut self, ev: Event<u64>, ctx: &mut Ctx<'_, u64>) {
            self.log.borrow_mut().push((ctx.now(), ev.payload));
            if ev.payload < HOPS {
                ctx.emit_remote(1, ev.payload + 1);
                if ev.payload.is_multiple_of(2) {
                    ctx.emit_self(EPOCH / 3 + 1, ev.payload + 1001);
                }
            }
        }
    }

    /// One shard's delivery log, shared with its `Relay` component.
    type DeliveryLog = Rc<RefCell<Vec<(Time, u64)>>>;

    /// Four shards ringing hop counters around; returns each shard's
    /// delivery log.
    fn run_ring(threads: usize, order: Option<Vec<usize>>) -> Vec<Vec<(Time, u64)>> {
        const SHARDS: usize = 4;
        let logs: Vec<DeliveryLog> = (0..SHARDS)
            .map(|_| Rc::new(RefCell::new(Vec::new())))
            .collect();
        let mut psim: ParallelSim<'_, u64> = ParallelSim::new(EPOCH, threads);
        let mut relays = Vec::new();
        for log in &logs {
            let mut sim = Sim::new();
            let id = sim.add_component("relay", Relay { log: log.clone() });
            sim.schedule(1000 * (relays.len() as u64 + 1), id, id, 0);
            relays.push(id);
            psim.add_shard(sim);
        }
        if let Some(order) = order {
            psim.set_sequential_order(order);
        }
        psim.run_until(HORIZON, |bound, msgs, shards| {
            for m in msgs {
                let target = (m.shard + 1) % SHARDS;
                let at = bound.min(HORIZON);
                shards[target].schedule_prio(
                    at,
                    m.priority,
                    relays[target],
                    relays[target],
                    m.payload,
                );
            }
        });
        logs.iter().map(|l| l.borrow().clone()).collect()
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let baseline = run_ring(1, None);
        assert!(
            baseline.iter().map(|l| l.len()).sum::<usize>() > 4 * HOPS as usize,
            "ring traffic should have flowed"
        );
        for threads in [0, 2, 3, 4, 7] {
            assert_eq!(run_ring(threads, None), baseline, "threads={threads}");
        }
    }

    #[test]
    fn shard_execution_order_does_not_change_results() {
        let baseline = run_ring(1, None);
        for order in [
            vec![3, 2, 1, 0],
            vec![1, 0, 3, 2],
            vec![2, 3, 0, 1],
            vec![0, 2, 1, 3],
        ] {
            assert_eq!(
                run_ring(1, Some(order.clone())),
                baseline,
                "order={order:?}"
            );
        }
    }

    #[test]
    fn remote_merge_order_is_time_priority_shard_seq() {
        struct Burst {
            shard: usize,
        }
        impl Component<u64> for Burst {
            fn on_event(&mut self, _ev: Event<u64>, ctx: &mut Ctx<'_, u64>) {
                // Same instant, mixed priorities, two messages per shard.
                ctx.emit_remote(1, 100 + self.shard as u64);
                ctx.emit_remote(0, 200 + self.shard as u64);
            }
        }
        let mut psim: ParallelSim<'_, u64> = ParallelSim::new(1_000, 1);
        for shard in 0..3 {
            let mut sim = Sim::new();
            let id = sim.add_component("burst", Burst { shard });
            sim.schedule(500, id, id, 0);
            psim.add_shard(sim);
        }
        let mut merged = Vec::new();
        psim.run_until(2_000, |_bound, msgs, _shards| {
            merged.extend(
                msgs.into_iter()
                    .map(|m| (m.time, m.priority, m.shard, m.seq, m.payload)),
            );
        });
        assert_eq!(
            merged,
            vec![
                (500, 0, 0, 1, 200),
                (500, 0, 1, 1, 201),
                (500, 0, 2, 1, 202),
                (500, 1, 0, 0, 100),
                (500, 1, 1, 0, 101),
                (500, 1, 2, 0, 102),
            ]
        );
    }

    #[test]
    fn empty_epochs_are_skipped() {
        struct Quiet;
        impl Component<u64> for Quiet {
            fn on_event(&mut self, _ev: Event<u64>, _ctx: &mut Ctx<'_, u64>) {}
        }
        let mut psim: ParallelSim<'_, u64> = ParallelSim::new(1_000, 1);
        let mut sim = Sim::new();
        let id = sim.add_component("quiet", Quiet);
        // Two busy epochs separated by ~100 empty ones.
        sim.schedule(10, id, id, 0);
        sim.schedule(20, id, id, 0);
        sim.schedule(100_500, id, id, 0);
        psim.add_shard(sim);
        let mut sim2 = Sim::new();
        let id2 = sim2.add_component("quiet", Quiet);
        sim2.schedule(15, id2, id2, 0);
        psim.add_shard(sim2);
        psim.run_until(1_000_000, |_, _, _| {});
        assert_eq!(psim.barriers(), 2, "only busy epochs cross a barrier");
        assert_eq!(psim.events_delivered(), 4);
    }

    /// A fixed-step self-event chain: `hops` deliveries spaced `step` µs
    /// apart — event density is exactly `1/step`, so the autotune
    /// controller's trajectory is easy to predict.
    fn chain_sim(hops: u64, step: Time) -> Sim<'static, u64> {
        struct Chain {
            remaining: u64,
            step: Time,
        }
        impl Component<u64> for Chain {
            fn on_event(&mut self, _ev: Event<u64>, ctx: &mut Ctx<'_, u64>) {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.emit_self(self.step, 0);
                }
            }
        }
        let mut sim = Sim::new();
        let id = sim.add_component(
            "chain",
            Chain {
                remaining: hops,
                step,
            },
        );
        sim.schedule(0, id, id, 0);
        sim
    }

    #[test]
    fn autotune_shrinks_epoch_when_density_is_high() {
        // 100 µs steps under a 1 s epoch = 10k events per round against a
        // target of 128: the controller must halve its way down (and stay
        // above the floor).
        let mut psim: ParallelSim<'_, u64> = ParallelSim::new(1_000_000, 1);
        psim.add_shard(chain_sim(30_000, 100));
        psim.set_autotune(EpochAutotune {
            min: 1_000,
            max: 600_000_000,
            target: 128,
        });
        psim.run_until(3_000_000, |_, _, _| {});
        assert!(
            psim.epoch() < 1_000_000,
            "dense traffic should shrink the epoch, got {}",
            psim.epoch()
        );
        assert!(psim.epoch() >= 1_000, "epoch must respect the floor");
    }

    #[test]
    fn autotune_grows_epoch_when_density_is_low_and_clamps_at_max() {
        // One event per second under a 10 ms epoch: every round delivers
        // a single event, far below target/2, so the epoch doubles each
        // barrier until the ceiling.
        let mut psim: ParallelSim<'_, u64> = ParallelSim::new(10_000, 1);
        psim.add_shard(chain_sim(20, 1_000_000));
        psim.set_autotune(EpochAutotune {
            min: 1_000,
            max: 200_000,
            target: 128,
        });
        psim.run_until(25_000_000, |_, _, _| {});
        assert_eq!(
            psim.epoch(),
            200_000,
            "sparse traffic should hit the ceiling"
        );
    }

    #[test]
    fn autotune_clamps_at_min() {
        let mut psim: ParallelSim<'_, u64> = ParallelSim::new(1_000_000, 1);
        psim.add_shard(chain_sim(30_000, 100));
        psim.set_autotune(EpochAutotune {
            min: 100_000,
            max: 600_000_000,
            target: 1,
        });
        psim.run_until(3_000_000, |_, _, _| {});
        assert_eq!(
            psim.epoch(),
            100_000,
            "every round over-target: floor holds"
        );
    }

    /// `run_ring` with autotune enabled — returns the logs plus the final
    /// (adapted) epoch so thread-independence covers the controller too.
    fn run_ring_tuned(threads: usize) -> (Vec<Vec<(Time, u64)>>, Time) {
        const SHARDS: usize = 4;
        let logs: Vec<DeliveryLog> = (0..SHARDS)
            .map(|_| Rc::new(RefCell::new(Vec::new())))
            .collect();
        let mut psim: ParallelSim<'_, u64> = ParallelSim::new(EPOCH, threads);
        // target 1 pushes every round over 2×target, so the controller
        // keeps halving — the run exercises adapted (changing) epochs
        // rather than settling in the dead band.
        psim.set_autotune(EpochAutotune {
            min: 1 << 10,
            max: 1 << 22,
            target: 1,
        });
        let mut relays = Vec::new();
        for log in &logs {
            let mut sim = Sim::new();
            let id = sim.add_component("relay", Relay { log: log.clone() });
            sim.schedule(1000 * (relays.len() as u64 + 1), id, id, 0);
            relays.push(id);
            psim.add_shard(sim);
        }
        psim.run_until(HORIZON, |bound, msgs, shards| {
            for m in msgs {
                let target = (m.shard + 1) % SHARDS;
                let at = bound.min(HORIZON);
                shards[target].schedule_prio(
                    at,
                    m.priority,
                    relays[target],
                    relays[target],
                    m.payload,
                );
            }
        });
        let epoch = psim.epoch();
        (logs.iter().map(|l| l.borrow().clone()).collect(), epoch)
    }

    #[test]
    fn autotuned_runs_are_thread_independent() {
        let (base, base_epoch) = run_ring_tuned(1);
        assert_ne!(
            base_epoch, EPOCH,
            "the controller should have moved the epoch"
        );
        for threads in [2, 4] {
            let (logs, epoch) = run_ring_tuned(threads);
            assert_eq!(logs, base, "threads={threads}");
            assert_eq!(epoch, base_epoch, "threads={threads}");
        }
    }

    #[test]
    fn profiling_accumulates_per_shard_and_keeps_results_identical() {
        let baseline = run_ring(2, None);
        // Same ring with profiling on: deliveries must not change, and
        // the profile must cover every shard and round.
        const SHARDS: usize = 4;
        let logs: Vec<DeliveryLog> = (0..SHARDS)
            .map(|_| Rc::new(RefCell::new(Vec::new())))
            .collect();
        let mut psim: ParallelSim<'_, u64> = ParallelSim::new(EPOCH, 2);
        psim.enable_profiling();
        let mut relays = Vec::new();
        for log in &logs {
            let mut sim = Sim::new();
            let id = sim.add_component("relay", Relay { log: log.clone() });
            sim.schedule(1000 * (relays.len() as u64 + 1), id, id, 0);
            relays.push(id);
            psim.add_shard(sim);
        }
        psim.run_until(HORIZON, |bound, msgs, shards| {
            for m in msgs {
                let target = (m.shard + 1) % SHARDS;
                let at = bound.min(HORIZON);
                shards[target].schedule_prio(
                    at,
                    m.priority,
                    relays[target],
                    relays[target],
                    m.payload,
                );
            }
        });
        let got: Vec<Vec<(Time, u64)>> = logs.iter().map(|l| l.borrow().clone()).collect();
        assert_eq!(got, baseline, "profiling must not perturb the simulation");
        let perf = psim.perf().expect("profiling enabled");
        assert_eq!(perf.rounds, psim.barriers());
        assert_eq!(perf.shard_run_ns.len(), SHARDS);
        assert_eq!(perf.shard_barrier_ns.len(), SHARDS);
        assert!(perf.shard_run_ns.iter().sum::<u64>() > 0);
        assert_eq!(perf.round_bounds.len() as u64, perf.rounds);
        assert_eq!(
            perf.round_shard_run_ns.len() as u64,
            perf.rounds * SHARDS as u64,
            "one run sample per shard per round"
        );
        assert!(
            perf.round_bounds.windows(2).all(|w| w[0] < w[1]),
            "round bounds advance monotonically"
        );
    }

    #[test]
    fn profiling_disabled_reports_no_perf() {
        let mut psim: ParallelSim<'_, u64> = ParallelSim::new(1_000, 1);
        psim.add_shard(chain_sim(5, 100));
        psim.run_until(10_000, |_, _, _| {});
        assert!(psim.perf().is_none());
    }

    #[test]
    fn single_shard_runs_sequentially_even_with_threads() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut psim: ParallelSim<'_, u64> = ParallelSim::new(EPOCH, 4);
        let mut sim = Sim::new();
        let id = sim.add_component("relay", Relay { log: log.clone() });
        sim.schedule(0, id, id, 0);
        psim.add_shard(sim);
        psim.run_until(HORIZON, |bound, msgs, shards| {
            for m in msgs {
                shards[0].schedule_prio(bound.min(HORIZON), m.priority, m.src, m.src, m.payload);
            }
        });
        assert!(log.borrow().len() as u64 > HOPS);
    }
}
