//! # ctlm-sim — the deterministic discrete-event simulation kernel
//!
//! A small dslab-style kernel shared by the scheduler simulation
//! (`ctlm-sched`) and the AGOCS trace replayer (`ctlm-agocs`): a
//! monotonic microsecond clock, a typed event queue with stable
//! tie-breaking, and a [`Component`] trait that event handlers register
//! on. Everything that used to be a bespoke simulation loop becomes a
//! component exchanging events on one timeline, so scenarios compose —
//! trace replay, scheduling, machine churn and live model retraining can
//! all run in a single simulation.
//!
//! Determinism is the design constraint: two runs over the same inputs
//! deliver the same events in the same order. The queue orders by
//! `(time, seq)` where `seq` is a global insertion counter, so
//! same-timestamp events fire in the order they were scheduled — there is
//! no iteration over hash maps and no wall-clock anywhere in the kernel.
//!
//! ```
//! use ctlm_sim::{Component, Ctx, Event, Sim};
//!
//! struct Ping { peer: ctlm_sim::CompId, left: u32 }
//! impl Component<&'static str> for Ping {
//!     fn on_event(&mut self, ev: Event<&'static str>, ctx: &mut Ctx<'_, &'static str>) {
//!         if self.left > 0 {
//!             self.left -= 1;
//!             let reply = if ev.payload == "ping" { "pong" } else { "ping" };
//!             ctx.emit(10, self.peer, reply);
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new();
//! let a = sim.add_component("a", Ping { peer: 1, left: 2 });
//! let b = sim.add_component("b", Ping { peer: 0, left: 2 });
//! sim.schedule(0, a, b, "ping");
//! sim.run();
//! // b replies at 10, a at 20, b at 30, a at 40; the final delivery
//! // finds b out of budget, so the queue drains.
//! assert_eq!(sim.now(), 40);
//! assert_eq!(sim.events_delivered(), 5);
//! ```

pub mod event;
pub mod kernel;

pub use event::{Event, EventQueue, Time};
pub use kernel::{CompId, Component, Ctx, Sim};
