//! # ctlm-sim — the deterministic discrete-event simulation kernel
//!
//! A small dslab-style kernel shared by the scheduler simulation
//! (`ctlm-sched`) and the AGOCS trace replayer (`ctlm-agocs`): a
//! monotonic microsecond clock, a typed event queue with stable
//! tie-breaking, and a [`Component`] trait that event handlers register
//! on. Everything that used to be a bespoke simulation loop becomes a
//! component exchanging events on one timeline, so scenarios compose —
//! trace replay, scheduling, machine churn and live model retraining can
//! all run in a single simulation.
//!
//! Determinism is the design constraint: two runs over the same inputs
//! deliver the same events in the same order. The queue orders by
//! `(time, seq)` where `seq` is a global insertion counter, so
//! same-timestamp events fire in the order they were scheduled — there is
//! no iteration over hash maps and no wall-clock anywhere in the kernel.
//!
//! The crate splits into two layers:
//!
//! * **Shard layer** ([`kernel`], [`event`]) — a sequential [`Sim`]: one
//!   clock, one `(time, priority, seq)`-ordered queue (heap,
//!   sorted-batch, and timer-wheel lanes), and the registered
//!   components. One `Sim` is one *cell kernel*: a self-contained
//!   simulation island with no shared mutable state outside it.
//! * **Coordinator layer** ([`parallel`]) — [`ParallelSim`] hosts many
//!   shards and advances them in epoch-barrier rounds on the worker
//!   pool. Cross-shard traffic leaves a shard only through
//!   [`Ctx::emit_remote`] outboxes and re-enters other shards only at
//!   barriers, merged in a deterministic `(time, priority, shard, seq)`
//!   order — so results are bit-identical for any thread count.
//!
//! Single-timeline users (the replayer, single-cell scenarios) use the
//! shard layer directly and never pay for coordination.
//!
//! ```
//! use ctlm_sim::{Component, Ctx, Event, Sim};
//!
//! struct Ping { peer: ctlm_sim::CompId, left: u32 }
//! impl Component<&'static str> for Ping {
//!     fn on_event(&mut self, ev: Event<&'static str>, ctx: &mut Ctx<'_, &'static str>) {
//!         if self.left > 0 {
//!             self.left -= 1;
//!             let reply = if ev.payload == "ping" { "pong" } else { "ping" };
//!             ctx.emit(10, self.peer, reply);
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new();
//! let a = sim.add_component("a", Ping { peer: 1, left: 2 });
//! let b = sim.add_component("b", Ping { peer: 0, left: 2 });
//! sim.schedule(0, a, b, "ping");
//! sim.run();
//! // b replies at 10, a at 20, b at 30, a at 40; the final delivery
//! // finds b out of budget, so the queue drains.
//! assert_eq!(sim.now(), 40);
//! assert_eq!(sim.events_delivered(), 5);
//! ```

pub mod event;
pub mod kernel;
pub mod parallel;

pub use event::{Event, EventQueue, LaneStats, Time};
pub use kernel::{CompId, Component, Ctx, Sim};
pub use parallel::{CellKernel, EpochAutotune, ParallelPerf, ParallelSim, RemoteEvent};
