//! Row-major dense `f32` matrix.
//!
//! This is the workhorse type for layer weights, activations, gradients and
//! optimizer state. It deliberately mirrors the small slice of the
//! `torch.Tensor` API the paper's listings use: shape inspection, zero/pad
//! construction, element access and in-place arithmetic.

use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f32`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// An `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair, matching `tensor.size()` in the listings.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major backing slice, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Sets every element to zero (used between gradient accumulations,
    /// mirroring `optimizer.zero_grad()`).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshapes the matrix in place, reusing the existing allocation
    /// whenever the new element count fits its capacity. Element contents
    /// are unspecified afterwards — every `_into` kernel overwrites its
    /// output. This is what lets training workspaces stay allocation-free
    /// across batches of varying size.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies another matrix's contents into this one, reshaping as
    /// needed (no allocation when the element count fits capacity).
    pub fn copy_from(&mut self, other: &Matrix) {
        self.resize(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// In-place scalar multiply (`tensor.mul_` in Listing 3).
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// In-place element-wise add of another matrix of identical shape.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy over the whole matrix).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Returns the transpose as a new matrix (cache-blocked; see
    /// [`crate::ops::transpose_into`]).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        crate::ops::transpose_into(self, &mut out);
        out
    }

    /// Pads the matrix on the right with `extra` zero columns, preserving
    /// existing values. This is the Rust equivalent of the paper's
    /// Listing 2 (`torch.nn.functional.pad(..., pad=(0, extra))` on
    /// `fc1.weight`): existing weights keep their column index, new columns
    /// start at zero so the model's behaviour on the old feature prefix is
    /// unchanged.
    pub fn pad_cols(&self, extra: usize) -> Matrix {
        let new_cols = self.cols + extra;
        let mut out = Matrix::zeros(self.rows, new_cols);
        for r in 0..self.rows {
            out.data[r * new_cols..r * new_cols + self.cols]
                .copy_from_slice(&self.data[r * self.cols..(r + 1) * self.cols]);
        }
        out
    }

    /// Index of the maximum element in each row (`argmax(dim=1)`).
    /// Ties resolve to the lowest index, matching PyTorch.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for (i, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element difference to another matrix of the same
    /// shape. Useful in tests that compare analytic and numeric gradients.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_roundtrips() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn row_views_are_consistent() {
        let mut m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.row(1), &[2.0, 3.0]);
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m.get(1, 0), 9.0);
    }

    #[test]
    fn pad_cols_preserves_prefix_and_zeroes_suffix() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let p = m.pad_cols(3);
        assert_eq!(p.shape(), (2, 5));
        assert_eq!(p.row(0), &[1.0, 2.0, 0.0, 0.0, 0.0]);
        assert_eq!(p.row(1), &[3.0, 4.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pad_cols_zero_extra_is_identity() {
        let m = Matrix::from_fn(4, 3, |r, c| (r + c) as f32);
        assert_eq!(m.pad_cols(0), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 31 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn argmax_rows_picks_first_on_tie() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 5.0, 5.0, 0.0, -1.0, -2.0]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        a.scale(2.0);
        assert!(a.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
