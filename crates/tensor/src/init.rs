//! Layer-weight initialisation.
//!
//! `torch.nn.Linear` initialises both weights and biases from
//! `U(-1/√fan_in, 1/√fan_in)` (Kaiming-uniform with a = √5 reduces to this
//! bound for the weight, and the bias bound matches). The paper relies on
//! PyTorch defaults for fresh models, so we reproduce them exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dense::Matrix;

/// Deterministic RNG used throughout the workspace. Seeded `StdRng`
/// (ChaCha-based) so results are reproducible across platforms.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Kaiming-uniform weight matrix `(out_features × in_features)` with the
/// PyTorch `nn.Linear` bound `1/√in_features`.
pub fn linear_weight(out_features: usize, in_features: usize, rng: &mut StdRng) -> Matrix {
    let bound = 1.0 / (in_features.max(1) as f32).sqrt();
    let mut data = Vec::with_capacity(out_features * in_features);
    for _ in 0..out_features * in_features {
        data.push(rng.gen_range(-bound..bound));
    }
    Matrix::from_vec(out_features, in_features, data)
}

/// Bias vector with the same `1/√in_features` uniform bound.
pub fn linear_bias(out_features: usize, in_features: usize, rng: &mut StdRng) -> Vec<f32> {
    let bound = 1.0 / (in_features.max(1) as f32).sqrt();
    (0..out_features)
        .map(|_| rng.gen_range(-bound..bound))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_within_fan_in_bound() {
        let mut rng = seeded_rng(7);
        let w = linear_weight(30, 100, &mut rng);
        let bound = 1.0 / (100.0f32).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
        assert_eq!(w.shape(), (30, 100));
    }

    #[test]
    fn bias_within_fan_in_bound() {
        let mut rng = seeded_rng(7);
        let b = linear_bias(26, 30, &mut rng);
        let bound = 1.0 / (30.0f32).sqrt();
        assert!(b.iter().all(|v| v.abs() <= bound));
        assert_eq!(b.len(), 26);
    }

    #[test]
    fn same_seed_same_weights() {
        let a = linear_weight(4, 9, &mut seeded_rng(42));
        let b = linear_weight(4, 9, &mut seeded_rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = linear_weight(4, 9, &mut seeded_rng(1));
        let b = linear_weight(4, 9, &mut seeded_rng(2));
        assert_ne!(a, b);
    }

    #[test]
    fn weights_are_not_degenerate() {
        let w = linear_weight(10, 50, &mut seeded_rng(3));
        let mean: f32 = w.as_slice().iter().sum::<f32>() / w.len() as f32;
        // Mean of U(-b, b) is 0; with 500 samples it should be close.
        assert!(mean.abs() < 0.02, "suspicious mean {mean}");
        let distinct = w
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > w.len() / 2);
    }
}
