//! Compressed-sparse-row matrix for the constraint-operator datasets.
//!
//! Both dataset encodings the paper studies (CO-EL one-hot labels and CO-VV
//! value vectors, §III) are extremely sparse — the paper reports non-zero
//! densities below 0.01 % at full feature width (~16k columns). A CSR layout
//! keeps dataset memory proportional to the number of set bits and makes the
//! input-layer products in `ctlm-nn` O(nnz) instead of O(n·d).

use serde::{Deserialize, Serialize};

use crate::dense::Matrix;

/// Immutable CSR matrix of `f32`.
///
/// Row `i` owns entries `indptr[i]..indptr[i+1]` of `indices`/`values`.
/// Column indices within a row are strictly increasing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// An empty matrix with the given shape and no stored entries.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the feature-array width in dataset terms).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored; the paper's density claim is testable
    /// through this.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The `(column, value)` pairs of one row.
    #[inline]
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.indptr[r] as usize;
        let hi = self.indptr[r + 1] as usize;
        self.indices[lo..hi]
            .iter()
            .zip(self.values[lo..hi].iter())
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Number of stored entries in one row.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.indptr[r + 1] - self.indptr[r]) as usize
    }

    /// Value at `(r, c)`; zero when not stored. O(log row_nnz).
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let lo = self.indptr[r] as usize;
        let hi = self.indptr[r + 1] as usize;
        match self.indices[lo..hi].binary_search(&(c as u32)) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Widens the matrix to `new_cols` columns without touching stored
    /// entries. This is the dataset-side half of the paper's growing
    /// mechanism: when the attribute vocabulary gains values, older samples
    /// simply have implicit zeros in the appended columns.
    ///
    /// # Panics
    /// Panics if `new_cols < self.cols()`.
    pub fn widen(&mut self, new_cols: usize) {
        assert!(new_cols >= self.cols, "widen cannot shrink a matrix");
        self.cols = new_cols;
    }

    /// Materialises the matrix (or a row subset) densely. Intended for tests
    /// and small examples; dataset-scale matrices should stay sparse.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Builds a new CSR containing only the given rows, in the given order.
    /// Used by the stratified train/test splitter.
    pub fn select_rows(&self, rows: &[usize]) -> Csr {
        let mut out = Csr::empty(0, self.cols);
        self.select_rows_into(rows, &mut out);
        out
    }

    /// Like [`Csr::select_rows`], writing into a caller-provided matrix.
    /// `out`'s buffers are reused, so the mini-batch loop can gather
    /// batches without allocating once capacities have warmed up.
    pub fn select_rows_into(&self, rows: &[usize], out: &mut Csr) {
        out.rows = rows.len();
        out.cols = self.cols;
        out.indptr.clear();
        out.indices.clear();
        out.values.clear();
        out.indptr.push(0);
        for &r in rows {
            assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
            let lo = self.indptr[r] as usize;
            let hi = self.indptr[r + 1] as usize;
            out.indices.extend_from_slice(&self.indices[lo..hi]);
            out.values.extend_from_slice(&self.values[lo..hi]);
            out.indptr.push(out.indices.len() as u32);
        }
    }

    /// Vertically stacks two matrices with the same column count.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &Csr) -> Csr {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut b = CsrBuilder::new(self.cols);
        for r in 0..self.rows {
            b.push_row(self.row_entries(r));
        }
        for r in 0..other.rows {
            b.push_row(other.row_entries(r));
        }
        b.finish()
    }
}

/// Incremental row-by-row CSR builder.
///
/// The AGOCS dataset generator appends one row per task submission; columns
/// may keep growing while rows are appended (vocabulary growth), so the
/// builder tracks the maximum column seen and the caller fixes the final
/// width via [`CsrBuilder::finish_with_cols`] or lets [`CsrBuilder::finish`]
/// use the declared width.
#[derive(Clone, Debug)]
pub struct CsrBuilder {
    cols: usize,
    indptr: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrBuilder {
    /// A builder for matrices with (at least) `cols` columns.
    pub fn new(cols: usize) -> Self {
        Self {
            cols,
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows pushed so far.
    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Current column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Widens the declared column count (monotonic).
    pub fn widen(&mut self, new_cols: usize) {
        assert!(new_cols >= self.cols, "builder cannot shrink");
        self.cols = new_cols;
    }

    /// Appends a row given `(column, value)` pairs. Pairs need not be
    /// sorted; they are sorted here. Zero values are dropped; duplicate
    /// columns keep the last value.
    ///
    /// # Panics
    /// Panics if any column index is `>= cols()`.
    pub fn push_row(&mut self, entries: impl IntoIterator<Item = (usize, f32)>) {
        let start = self.indices.len();
        for (c, v) in entries {
            assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
            if v != 0.0 {
                self.indices.push(c as u32);
                self.values.push(v);
            }
        }
        // Sort the freshly appended slice by column and de-duplicate
        // (keeping the last write, matching dense overwrite semantics).
        let tail_idx = &mut self.indices[start..];
        let tail_val = &mut self.values[start..];
        let mut perm: Vec<usize> = (0..tail_idx.len()).collect();
        perm.sort_by_key(|&i| tail_idx[i]);
        let sorted_idx: Vec<u32> = perm.iter().map(|&i| tail_idx[i]).collect();
        let sorted_val: Vec<f32> = perm.iter().map(|&i| tail_val[i]).collect();
        tail_idx.copy_from_slice(&sorted_idx);
        tail_val.copy_from_slice(&sorted_val);
        // Deduplicate in place.
        let mut write = start;
        let mut read = start;
        while read < self.indices.len() {
            let col = self.indices[read];
            let mut val = self.values[read];
            read += 1;
            while read < self.indices.len() && self.indices[read] == col {
                val = self.values[read];
                read += 1;
            }
            self.indices[write] = col;
            self.values[write] = val;
            write += 1;
        }
        self.indices.truncate(write);
        self.values.truncate(write);
        self.indptr.push(self.indices.len() as u32);
    }

    /// Finishes with the builder's current column count.
    pub fn finish(self) -> Csr {
        Csr {
            rows: self.indptr.len() - 1,
            cols: self.cols,
            indptr: self.indptr,
            indices: self.indices,
            values: self.values,
        }
    }

    /// Finishes, widening to `cols` first (useful when the vocabulary kept
    /// growing after the last row was pushed).
    pub fn finish_with_cols(mut self, cols: usize) -> Csr {
        self.widen(cols);
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        let mut b = CsrBuilder::new(5);
        b.push_row([(1, 1.0), (3, 1.0)]);
        b.push_row([]);
        b.push_row([(0, 2.0), (4, -1.0)]);
        b.finish()
    }

    #[test]
    fn builder_produces_expected_entries() {
        let m = sample();
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(2, 4), -1.0);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn push_row_sorts_unsorted_entries() {
        let mut b = CsrBuilder::new(4);
        b.push_row([(3, 1.0), (0, 2.0), (2, 3.0)]);
        let m = b.finish();
        let entries: Vec<_> = m.row_entries(0).collect();
        assert_eq!(entries, vec![(0, 2.0), (2, 3.0), (3, 1.0)]);
    }

    #[test]
    fn push_row_drops_zeros_and_dedups_keeping_last() {
        let mut b = CsrBuilder::new(4);
        b.push_row([(1, 0.0), (2, 1.0), (2, 5.0)]);
        let m = b.finish();
        let entries: Vec<_> = m.row_entries(0).collect();
        assert_eq!(entries, vec![(2, 5.0)]);
    }

    #[test]
    fn widen_preserves_entries() {
        let mut m = sample();
        m.widen(9);
        assert_eq!(m.cols(), 9);
        assert_eq!(m.get(2, 0), 2.0);
        assert_eq!(m.get(0, 8), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn widen_rejects_shrink() {
        sample().widen(2);
    }

    #[test]
    fn to_dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(d.get(r, c), m.get(r, c));
            }
        }
    }

    #[test]
    fn select_rows_reorders() {
        let m = sample();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(1, 1), 1.0);
    }

    #[test]
    fn vstack_concatenates() {
        let m = sample();
        let v = m.vstack(&m);
        assert_eq!(v.rows(), 6);
        assert_eq!(v.get(3, 1), 1.0);
        assert_eq!(v.nnz(), 8);
    }

    #[test]
    fn density_counts_nnz() {
        let m = sample();
        assert!((m.density() - 4.0 / 15.0).abs() < 1e-12);
    }
}
