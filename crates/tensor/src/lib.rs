//! # ctlm-tensor — numeric substrate for the CTLM reproduction
//!
//! The paper's models are built on PyTorch tensors. This crate provides the
//! small subset of tensor machinery the paper actually uses, implemented
//! natively in Rust:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix used for layer weights,
//!   activations and gradients.
//! * [`Csr`] — a compressed-sparse-row matrix used for the highly sparse
//!   CO-VV / CO-EL feature datasets (the paper notes ones represent less
//!   than 0.01 % of entries at full scale).
//! * [`ops`] — the linear-algebra kernels (dense GEMM, sparse×dense
//!   products, reductions), parallelised with Rayon where batch sizes make
//!   it worthwhile.
//! * [`init`] — PyTorch-compatible layer weight initialisation
//!   (Kaiming-uniform fan-in scaling, as `torch.nn.Linear` uses).
//!
//! Everything is deterministic given an RNG seed, which the reproduction
//! relies on for its table-regeneration binaries.

pub mod dense;
pub mod init;
pub mod ops;
pub mod sparse;

pub use dense::Matrix;
pub use sparse::{Csr, CsrBuilder};

/// Convenience alias used across the workspace for sample-index slices.
pub type IndexSlice<'a> = &'a [usize];
