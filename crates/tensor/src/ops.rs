//! Linear-algebra kernels.
//!
//! The layer shapes in the paper are tiny (hidden width 30, 26 classes)
//! but batches and feature widths are large (tens of thousands of
//! samples, ~16k features), so the kernels are organised for data
//! movement first:
//!
//! * **cache blocking** — GEMMs walk `b` in `KC`-deep k-panels shared
//!   across an `MC`-row block of `a`, so the panel stays hot in cache
//!   instead of being re-streamed per row;
//! * **register microkernels** — dot-product kernels ([`matmul_bt_into`],
//!   [`csr_matmul_bt_into`]) and outer-product kernels
//!   ([`matmul_at_acc`]) keep an `NR`-wide accumulator tile in registers,
//!   amortising every load of the shared operand over `NR` outputs;
//! * **`_into`/`_acc` variants** — every kernel can write into (or
//!   accumulate onto) a caller-provided buffer, which is what lets
//!   `ctlm_nn::Workspace` run steady-state training steps without heap
//!   allocation;
//! * **Rayon row-parallelism** above [`PAR_THRESHOLD`], the idiom the HPC
//!   guides prescribe: `par_chunks_mut` over independent output rows, no
//!   shared mutable state.
//!
//! The pre-optimization reference kernels are retained in [`naive`]; the
//! property tests in `tests/kernel_properties.rs` pin the blocked kernels
//! to them within 1e-5, and `ctlm-bench`'s `training_step` bench measures
//! both sides in the same run.

use rayon::prelude::*;

use crate::dense::Matrix;
use crate::sparse::Csr;

/// Minimum *output-row* count before a kernel switches to its parallel
/// path. Tiny batches are faster sequentially (thread dispatch dominates,
/// and the shim pool spawns per call). The same constant gates every
/// kernel in this module; `ctlm_agocs::matcher::PAR_THRESHOLD` documents
/// its own (higher) value for the much cheaper per-machine predicate.
pub const PAR_THRESHOLD: usize = 64;

/// Rows of `a` processed per cache block: one block's k-panel traffic is
/// amortised over `MC` output rows.
const MC: usize = 32;

/// Depth of a k-panel: `KC × m` elements of `b` (≤ 64 KiB at the paper's
/// widths) stay cache-hot while a row block consumes them.
const KC: usize = 256;

/// Width of the register accumulator tile in the dot-product and
/// outer-product microkernels.
const NR: usize = 4;

/// Edge length of the square tiles used by [`transpose_into`].
const TILE: usize = 32;

/// Dense GEMM: `a (n×k) · b (k×m) → (n×m)`.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut out);
    out
}

/// [`matmul`] into a caller-provided output (resized, fully overwritten).
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (n, k) = a.shape();
    let m = b.cols();
    out.resize(n, m);
    let b_data = b.as_slice();
    let a_data = a.as_slice();
    // Each body call owns an MC-row block of `out`; k-panels of `b` are
    // the innermost shared operand, reused across the block's rows while
    // cache-hot. The per-element zero skip from the original kernel is
    // kept inside the panel loop — CO-VV gradients are full of zeros.
    let body = |(block, out_block): (usize, &mut [f32])| {
        out_block.fill(0.0);
        let r0 = block * MC;
        let rows = out_block.len() / m;
        for kb in (0..k).step_by(KC) {
            let k_end = (kb + KC).min(k);
            for (i, out_row) in out_block.chunks_exact_mut(m).enumerate() {
                let a_row = &a_data[(r0 + i) * k + kb..(r0 + i) * k + k_end];
                for (kk, &av) in a_row.iter().enumerate() {
                    if av != 0.0 {
                        let b_row = &b_data[(kb + kk) * m..(kb + kk + 1) * m];
                        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
        debug_assert_eq!(rows * m, out_block.len());
    };
    if n >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_mut(MC * m)
            .enumerate()
            .for_each(body);
    } else {
        out.as_mut_slice()
            .chunks_mut(MC * m)
            .enumerate()
            .for_each(body);
    }
}

/// `a (n×k) · bᵀ` where `b` is `(m×k)` — the PyTorch `x @ W.T` used in
/// `nn.Linear.forward` with `W` stored as `(out_features, in_features)`.
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    matmul_bt_into(a, b, &mut out);
    out
}

/// [`matmul_bt`] into a caller-provided output (resized, overwritten).
///
/// Register microkernel: `NR` output columns share every load of the
/// `a`-row, with `NR` scalar accumulators the compiler keeps in
/// registers and vectorises along `k`.
pub fn matmul_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.cols(), "matmul_bt inner dimension mismatch");
    let n = a.rows();
    let k = a.cols();
    let m = b.rows();
    out.resize(n, m);
    let b_data = b.as_slice();
    let body = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        let mut c = 0;
        while c + NR <= m {
            let b0 = &b_data[c * k..(c + 1) * k];
            let b1 = &b_data[(c + 1) * k..(c + 2) * k];
            let b2 = &b_data[(c + 2) * k..(c + 3) * k];
            let b3 = &b_data[(c + 3) * k..(c + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for kk in 0..k {
                let av = a_row[kk];
                s0 += av * b0[kk];
                s1 += av * b1[kk];
                s2 += av * b2[kk];
                s3 += av * b3[kk];
            }
            out_row[c] = s0;
            out_row[c + 1] = s1;
            out_row[c + 2] = s2;
            out_row[c + 3] = s3;
            c += NR;
        }
        for (tail, o) in out_row[c..].iter_mut().enumerate() {
            let b_row = &b_data[(c + tail) * k..(c + tail + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &w) in a_row.iter().zip(b_row.iter()) {
                acc += x * w;
            }
            *o = acc;
        }
    };
    if n >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_mut(m)
            .enumerate()
            .for_each(body);
    } else {
        out.as_mut_slice().chunks_mut(m).enumerate().for_each(body);
    }
}

/// `aᵀ (k×n) · b (n×m) → (k×m)` without materialising the transpose —
/// the weight-gradient product `grad_W = grad_outᵀ · x` for dense inputs.
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    matmul_at_acc(a, b, &mut out);
    out
}

/// [`matmul_at`] into a caller-provided output (resized, overwritten).
pub fn matmul_at_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    out.resize(a.cols(), b.cols());
    out.zero();
    matmul_at_acc(a, b, out);
}

/// Accumulating [`matmul_at`]: `out += aᵀ · b`, with `out` pre-shaped
/// `(a.cols × b.cols)`. This is the gradient-accumulation form — layers
/// add straight onto `grad_weight` with no temporary.
///
/// Outer-product microkernel: an `NR`-row group of `out` (columns of `a`)
/// consumes each `b`-row once, so `b` is streamed `NR×` less often than
/// in the row-at-a-time formulation.
///
/// # Panics
/// Panics on sample-count or output-shape mismatch.
pub fn matmul_at_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.rows(), b.rows(), "matmul_at sample-count mismatch");
    assert_eq!(
        out.shape(),
        (a.cols(), b.cols()),
        "matmul_at_acc output shape mismatch"
    );
    let k = a.cols();
    let m = b.cols();
    let n = a.rows();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let body = |(block, out_block): (usize, &mut [f32])| {
        let c0 = block * NR;
        let width = out_block.len() / m;
        for r in 0..n {
            let a_row = &a_data[r * k + c0..r * k + c0 + width];
            if a_row.iter().all(|&v| v == 0.0) {
                continue;
            }
            let b_row = &b_data[r * m..(r + 1) * m];
            for (j, &av) in a_row.iter().enumerate() {
                if av != 0.0 {
                    let out_row = &mut out_block[j * m..(j + 1) * m];
                    for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += av * bv;
                    }
                }
            }
        }
    };
    if k >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_mut(NR * m)
            .enumerate()
            .for_each(body);
    } else {
        out.as_mut_slice()
            .chunks_mut(NR * m)
            .enumerate()
            .for_each(body);
    }
}

/// Blocked transpose: `a (n×m) → out (m×n)` via `TILE×TILE` tiles so both
/// the read and the write side stay within a cache-line-friendly window.
pub fn transpose_into(a: &Matrix, out: &mut Matrix) {
    let (n, m) = a.shape();
    out.resize(m, n);
    let a_data = a.as_slice();
    let out_data = out.as_mut_slice();
    for rb in (0..n).step_by(TILE) {
        let r_end = (rb + TILE).min(n);
        for cb in (0..m).step_by(TILE) {
            let c_end = (cb + TILE).min(m);
            for r in rb..r_end {
                for c in cb..c_end {
                    out_data[c * n + r] = a_data[r * m + c];
                }
            }
        }
    }
}

/// Sparse × dense-transposed product: `x (n×d, CSR) · Wᵀ` with `W (out×d)`.
///
/// This is the input-layer forward pass on CO-VV/CO-EL batches; cost is
/// `O(nnz · out)` rather than `O(n · d · out)`.
pub fn csr_matmul_bt(x: &Csr, w: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), w.rows());
    csr_matmul_bt_into(x, w, &mut out);
    out
}

/// [`csr_matmul_bt`] into a caller-provided output (resized, overwritten).
///
/// `NR` output neurons share each pass over the row's nonzeros, turning
/// the hot loop into `NR` independent gathers per stored entry.
pub fn csr_matmul_bt_into(x: &Csr, w: &Matrix, out: &mut Matrix) {
    assert_eq!(x.cols(), w.cols(), "csr_matmul_bt inner dimension mismatch");
    let n = x.rows();
    let d = w.cols();
    let out_f = w.rows();
    out.resize(n, out_f);
    let w_data = w.as_slice();
    let body = |(r, out_row): (usize, &mut [f32])| {
        let mut o = 0;
        while o + NR <= out_f {
            let w0 = &w_data[o * d..(o + 1) * d];
            let w1 = &w_data[(o + 1) * d..(o + 2) * d];
            let w2 = &w_data[(o + 2) * d..(o + 3) * d];
            let w3 = &w_data[(o + 3) * d..(o + 4) * d];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (j, v) in x.row_entries(r) {
                s0 += v * w0[j];
                s1 += v * w1[j];
                s2 += v * w2[j];
                s3 += v * w3[j];
            }
            out_row[o] = s0;
            out_row[o + 1] = s1;
            out_row[o + 2] = s2;
            out_row[o + 3] = s3;
            o += NR;
        }
        for oo in o..out_f {
            let w_row = &w_data[oo * d..(oo + 1) * d];
            out_row[oo] = x.row_entries(r).map(|(j, v)| v * w_row[j]).sum();
        }
    };
    if n >= PAR_THRESHOLD {
        out.as_mut_slice()
            .par_chunks_mut(out_f)
            .enumerate()
            .for_each(body);
    } else {
        out.as_mut_slice()
            .chunks_mut(out_f)
            .enumerate()
            .for_each(body);
    }
}

/// Sparse weight-gradient product: `grad_W (out×d) = grad_outᵀ (out×n) · x (n×d, CSR)`.
pub fn csr_grad_weight(grad_out: &Matrix, x: &Csr) -> Matrix {
    let mut gw = Matrix::zeros(grad_out.cols(), x.cols());
    csr_grad_weight_acc(grad_out, x, &mut gw);
    gw
}

/// Accumulating [`csr_grad_weight`]: `gw += grad_outᵀ · x` with `gw`
/// pre-shaped `(grad_out.cols × x.cols)`. Parallelises over output
/// neurons so each thread owns one `grad_W` row.
///
/// # Panics
/// Panics on sample-count or output-shape mismatch.
pub fn csr_grad_weight_acc(grad_out: &Matrix, x: &Csr, gw: &mut Matrix) {
    assert_eq!(
        grad_out.rows(),
        x.rows(),
        "csr_grad_weight sample-count mismatch"
    );
    assert_eq!(
        gw.shape(),
        (grad_out.cols(), x.cols()),
        "csr_grad_weight_acc output shape mismatch"
    );
    let out_f = grad_out.cols();
    let d = x.cols();
    let n = x.rows();
    let body = |(o, gw_row): (usize, &mut [f32])| {
        for r in 0..n {
            let g = grad_out.get(r, o);
            if g != 0.0 {
                for (j, v) in x.row_entries(r) {
                    gw_row[j] += g * v;
                }
            }
        }
    };
    if n >= PAR_THRESHOLD && out_f > 1 {
        gw.as_mut_slice()
            .par_chunks_mut(d)
            .enumerate()
            .for_each(body);
    } else {
        gw.as_mut_slice().chunks_mut(d).enumerate().for_each(body);
    }
}

/// Sparse matrix–vector product `x (n×d) · v (d) → (n)`.
pub fn csr_matvec(x: &Csr, v: &[f32]) -> Vec<f32> {
    assert_eq!(x.cols(), v.len(), "csr_matvec dimension mismatch");
    let n = x.rows();
    let body = |r: usize| -> f32 { x.row_entries(r).map(|(j, xv)| xv * v[j]).sum() };
    if n >= PAR_THRESHOLD {
        (0..n).into_par_iter().map(body).collect()
    } else {
        (0..n).map(body).collect()
    }
}

/// Transposed sparse matrix–vector product `xᵀ (d×n) · u (n) → (d)`.
pub fn csr_tmatvec(x: &Csr, u: &[f32]) -> Vec<f32> {
    assert_eq!(x.rows(), u.len(), "csr_tmatvec dimension mismatch");
    let mut out = vec![0.0f32; x.cols()];
    for (r, &s) in u.iter().enumerate() {
        if s != 0.0 {
            for (j, v) in x.row_entries(r) {
                out[j] += s * v;
            }
        }
    }
    out
}

/// Adds `bias` (length m) to every row of `a (n×m)` in place, in
/// parallel above [`PAR_THRESHOLD`] rows.
pub fn add_bias(a: &mut Matrix, bias: &[f32]) {
    assert_eq!(a.cols(), bias.len(), "bias length mismatch");
    let (n, m) = a.shape();
    let body = |row: &mut [f32]| {
        for (v, &b) in row.iter_mut().zip(bias.iter()) {
            *v += b;
        }
    };
    if n >= PAR_THRESHOLD {
        a.as_mut_slice().par_chunks_mut(m).for_each(body);
    } else {
        a.as_mut_slice().chunks_mut(m).for_each(body);
    }
}

/// Column sums of `a` — the bias gradient `Σ_samples grad_out`.
pub fn col_sums(a: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; a.cols()];
    col_sums_acc(a, &mut out);
    out
}

/// Accumulating column sums: `out[c] += Σ_r a[r][c]`. Sequential below
/// [`PAR_THRESHOLD`] rows (and allocation-free there — the Workspace hot
/// path); above it, row blocks reduce in parallel into per-block partials.
///
/// # Panics
/// Panics when `out.len() != a.cols()`.
pub fn col_sums_acc(a: &Matrix, out: &mut [f32]) {
    assert_eq!(out.len(), a.cols(), "col_sums output length mismatch");
    let (n, m) = a.shape();
    if m == 0 {
        return;
    }
    if n >= PAR_THRESHOLD {
        let data = a.as_slice();
        let blocks = n.div_ceil(MC);
        let partials: Vec<Vec<f32>> = (0..blocks)
            .into_par_iter()
            .map(|b| {
                let mut acc = vec![0.0f32; m];
                for row in data[b * MC * m..((b + 1) * MC * m).min(data.len())].chunks_exact(m) {
                    for (o, &v) in acc.iter_mut().zip(row.iter()) {
                        *o += v;
                    }
                }
                acc
            })
            .collect();
        for p in partials {
            for (o, v) in out.iter_mut().zip(p) {
                *o += v;
            }
        }
    } else {
        for row in a.as_slice().chunks_exact(m) {
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
    }
}

/// Row-wise softmax, numerically stabilised by max subtraction.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// In-place row-wise softmax — the allocation-free path
/// `CrossEntropyLoss` uses on workspace buffers.
pub fn softmax_rows_inplace(logits: &mut Matrix) {
    let (n, m) = logits.shape();
    let body = |row: &mut [f32]| {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    };
    if n >= PAR_THRESHOLD {
        logits.as_mut_slice().par_chunks_mut(m).for_each(body);
    } else {
        logits.as_mut_slice().chunks_mut(m).for_each(body);
    }
}

pub mod naive {
    //! Pre-optimization reference kernels.
    //!
    //! Retained on purpose: the property tests pin every blocked kernel
    //! to these within 1e-5, and the criterion benches measure both sides
    //! in the same run (`BENCH_PR1.json`). Textbook loops over `get()`,
    //! no blocking, no parallelism.

    use crate::dense::Matrix;
    use crate::sparse::Csr;

    /// Reference dense GEMM.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(r, k) * b.get(k, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// Reference `a · bᵀ`.
    pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_bt inner dimension mismatch");
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for r in 0..a.rows() {
            for c in 0..b.rows() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(r, k) * b.get(c, k);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// Reference `aᵀ · b`.
    pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "matmul_at sample-count mismatch");
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for c in 0..a.cols() {
            for m in 0..b.cols() {
                let mut acc = 0.0;
                for r in 0..a.rows() {
                    acc += a.get(r, c) * b.get(r, m);
                }
                out.set(c, m, acc);
            }
        }
        out
    }

    /// Reference transpose.
    pub fn transpose(a: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), a.rows());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                out.set(c, r, a.get(r, c));
            }
        }
        out
    }

    /// Reference sparse × dense-transposed product.
    pub fn csr_matmul_bt(x: &Csr, w: &Matrix) -> Matrix {
        assert_eq!(x.cols(), w.cols(), "csr_matmul_bt inner dimension mismatch");
        let mut out = Matrix::zeros(x.rows(), w.rows());
        for r in 0..x.rows() {
            for o in 0..w.rows() {
                let mut acc = 0.0;
                for (j, v) in x.row_entries(r) {
                    acc += v * w.get(o, j);
                }
                out.set(r, o, acc);
            }
        }
        out
    }

    /// Reference sparse weight gradient.
    pub fn csr_grad_weight(grad_out: &Matrix, x: &Csr) -> Matrix {
        assert_eq!(
            grad_out.rows(),
            x.rows(),
            "csr_grad_weight sample-count mismatch"
        );
        let mut gw = Matrix::zeros(grad_out.cols(), x.cols());
        for o in 0..grad_out.cols() {
            for r in 0..x.rows() {
                let g = grad_out.get(r, o);
                for (j, v) in x.row_entries(r) {
                    gw.set(o, j, gw.get(o, j) + g * v);
                }
            }
        }
        gw
    }

    /// Reference column sums.
    pub fn col_sums(a: &Matrix) -> Vec<f32> {
        let mut out = vec![0.0f32; a.cols()];
        for r in 0..a.rows() {
            for (o, &v) in out.iter_mut().zip(a.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Reference row softmax.
    pub fn softmax_rows(logits: &Matrix) -> Matrix {
        let mut out = logits.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrBuilder;

    #[test]
    fn matmul_matches_naive() {
        let a = Matrix::from_fn(7, 5, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32 * 0.25);
        assert!(matmul(&a, &b).max_abs_diff(&naive::matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        let a = Matrix::from_fn(130, 9, |r, c| ((r * 7 + c) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(9, 4, |r, c| ((r + c) % 3) as f32);
        assert!(matmul(&a, &b).max_abs_diff(&naive::matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_blocked_k_panels_match_naive() {
        // k straddles KC so multiple panels execute.
        let a = Matrix::from_fn(5, 2 * super::KC + 17, |r, c| {
            ((r * 13 + c) % 7) as f32 - 3.0
        });
        let b = Matrix::from_fn(2 * super::KC + 17, 6, |r, c| ((r + 2 * c) % 5) as f32 * 0.5);
        assert!(matmul(&a, &b).max_abs_diff(&naive::matmul(&a, &b)) < 1e-2);
    }

    #[test]
    fn matmul_bt_equals_matmul_with_transpose() {
        let a = Matrix::from_fn(6, 4, |r, c| (r + 2 * c) as f32);
        let w = Matrix::from_fn(3, 4, |r, c| (r as f32 + 1.0) * (c as f32 - 1.5));
        assert!(matmul_bt(&a, &w).max_abs_diff(&matmul(&a, &w.transpose())) < 1e-4);
    }

    #[test]
    fn matmul_bt_microkernel_tail_matches_naive() {
        // m not divisible by NR exercises the scalar tail.
        for m in 1..=9 {
            let a = Matrix::from_fn(3, 11, |r, c| ((r * 5 + c) % 7) as f32 - 2.0);
            let b = Matrix::from_fn(m, 11, |r, c| ((r * 3 + c) % 5) as f32 * 0.5);
            assert!(matmul_bt(&a, &b).max_abs_diff(&naive::matmul_bt(&a, &b)) < 1e-4);
        }
    }

    #[test]
    fn matmul_at_equals_transpose_then_matmul() {
        let a = Matrix::from_fn(8, 3, |r, c| ((r * c) % 5) as f32 - 2.0);
        let b = Matrix::from_fn(8, 6, |r, c| ((r + c) % 4) as f32);
        assert!(matmul_at(&a, &b).max_abs_diff(&matmul(&a.transpose(), &b)) < 1e-4);
    }

    #[test]
    fn matmul_at_acc_accumulates() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(4, 2, |r, c| (r as f32) - (c as f32));
        let mut acc = naive::matmul_at(&a, &b);
        matmul_at_acc(&a, &b, &mut acc);
        let mut twice = naive::matmul_at(&a, &b);
        twice.scale(2.0);
        assert!(acc.max_abs_diff(&twice) < 1e-4);
    }

    #[test]
    fn transpose_into_matches_naive_off_tile_sizes() {
        for (n, m) in [(1, 1), (3, 70), (33, 31), (64, 65)] {
            let a = Matrix::from_fn(n, m, |r, c| (r * m + c) as f32);
            let mut out = Matrix::zeros(0, 0);
            transpose_into(&a, &mut out);
            assert_eq!(out, naive::transpose(&a));
        }
    }

    #[test]
    fn csr_matmul_bt_matches_dense() {
        let mut b = CsrBuilder::new(10);
        for r in 0..9 {
            b.push_row([(r % 10, 1.0), ((r * 3 + 1) % 10, 0.5)]);
        }
        let x = b.finish();
        let w = Matrix::from_fn(4, 10, |r, c| (r as f32 + 1.0) * 0.1 * (c as f32 - 4.0));
        let sparse_out = csr_matmul_bt(&x, &w);
        let dense_out = matmul_bt(&x.to_dense(), &w);
        assert!(sparse_out.max_abs_diff(&dense_out) < 1e-4);
    }

    #[test]
    fn csr_grad_weight_matches_dense() {
        let mut b = CsrBuilder::new(12);
        for r in 0..20 {
            b.push_row([((r * 5) % 12, 1.0)]);
        }
        let x = b.finish();
        let go = Matrix::from_fn(20, 3, |r, c| ((r + c) % 7) as f32 * 0.3 - 0.9);
        let sparse_gw = csr_grad_weight(&go, &x);
        let dense_gw = matmul_at(&go, &x.to_dense());
        assert!(sparse_gw.max_abs_diff(&dense_gw) < 1e-4);
    }

    #[test]
    fn csr_matvec_matches_dense() {
        let mut b = CsrBuilder::new(6);
        b.push_row([(0, 1.0), (5, 2.0)]);
        b.push_row([(3, -1.0)]);
        let x = b.finish();
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let got = csr_matvec(&x, &v);
        assert_eq!(got, vec![13.0, -4.0]);
    }

    #[test]
    fn csr_tmatvec_matches_dense_transpose() {
        let mut b = CsrBuilder::new(4);
        b.push_row([(0, 1.0), (2, 1.0)]);
        b.push_row([(2, 3.0)]);
        b.push_row([(3, -2.0)]);
        let x = b.finish();
        let u = [1.0, 2.0, 0.5];
        let got = csr_tmatvec(&x, &u);
        // column sums: col0: 1*1, col1: 0, col2: 1*1+3*2, col3: -2*0.5
        assert_eq!(got, vec![1.0, 0.0, 7.0, -1.0]);
    }

    #[test]
    fn csr_matvec_tmatvec_adjoint_identity() {
        // <Xv, u> == <v, Xᵀu> — the property CG relies on.
        let mut b = CsrBuilder::new(5);
        for r in 0..7 {
            b.push_row([((r * 2) % 5, 1.0), ((r + 3) % 5, 0.5)]);
        }
        let x = b.finish();
        let v: Vec<f32> = (0..5).map(|i| i as f32 - 2.0).collect();
        let u: Vec<f32> = (0..7).map(|i| (i as f32) * 0.3).collect();
        let xv = csr_matvec(&x, &v);
        let xtu = csr_tmatvec(&x, &u);
        let lhs: f32 = xv.iter().zip(u.iter()).map(|(a, b)| a * b).sum();
        let rhs: f32 = v.iter().zip(xtu.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn add_bias_adds_rowwise() {
        let mut a = Matrix::zeros(2, 3);
        add_bias(&mut a, &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sums_matches_manual() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(col_sums(&a), vec![4.0, 6.0]);
    }

    #[test]
    fn col_sums_parallel_reduction_matches_naive() {
        let a = Matrix::from_fn(3 * PAR_THRESHOLD + 7, 5, |r, c| {
            ((r * 3 + c) % 13) as f32 - 6.0
        });
        let par = col_sums(&a);
        let reference = naive::col_sums(&a);
        for (p, n) in par.iter().zip(reference.iter()) {
            assert!((p - n).abs() < 1e-3, "{p} vs {n}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, -1.0, -1.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.get(0, 2) > p.get(0, 1));
        assert!((p.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        assert!(softmax_rows(&a).max_abs_diff(&softmax_rows(&b)) < 1e-5);
    }

    #[test]
    fn into_variants_reuse_buffers_across_shapes() {
        // A single output buffer serves differently-shaped products.
        let mut out = Matrix::zeros(9, 9);
        let a = Matrix::from_fn(4, 6, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(6, 3, |r, c| (r as f32) * 0.5 - (c as f32));
        matmul_into(&a, &b, &mut out);
        assert_eq!(out.shape(), (4, 3));
        assert!(out.max_abs_diff(&naive::matmul(&a, &b)) < 1e-4);
        let w = Matrix::from_fn(5, 6, |r, c| ((r * c) % 3) as f32);
        matmul_bt_into(&a, &w, &mut out);
        assert_eq!(out.shape(), (4, 5));
        assert!(out.max_abs_diff(&naive::matmul_bt(&a, &w)) < 1e-4);
    }
}
