//! Linear-algebra kernels.
//!
//! The layer shapes in the paper are tiny (hidden width 30, 26 classes) but
//! batches and feature widths are large (tens of thousands of samples,
//! ~16k features), so the kernels parallelise over samples with Rayon —
//! the idiom the HPC guides prescribe: `par_iter` over independent rows,
//! no shared mutable state.

use rayon::prelude::*;

use crate::dense::Matrix;
use crate::sparse::Csr;

/// Minimum row count before kernels switch to the parallel path. Tiny
/// batches are faster sequentially (thread-pool dispatch dominates).
const PAR_THRESHOLD: usize = 64;

/// Dense GEMM: `a (n×k) · b (k×m) → (n×m)`.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (n, k) = a.shape();
    let m = b.cols();
    let mut out = Matrix::zeros(n, m);
    let b_data = b.as_slice();
    let body = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        for (kk, &av) in a_row.iter().enumerate() {
            if av != 0.0 {
                let b_row = &b_data[kk * m..(kk + 1) * m];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    };
    if n >= PAR_THRESHOLD {
        out.as_mut_slice().par_chunks_mut(m).enumerate().for_each(body);
    } else {
        out.as_mut_slice().chunks_mut(m).enumerate().for_each(body);
    }
    let _ = k;
    out
}

/// `a (n×k) · bᵀ` where `b` is `(m×k)` — the PyTorch `x @ W.T` used in
/// `nn.Linear.forward` with `W` stored as `(out_features, in_features)`.
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_bt inner dimension mismatch");
    let n = a.rows();
    let m = b.rows();
    let mut out = Matrix::zeros(n, m);
    let body = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        for (c, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(c);
            let mut acc = 0.0f32;
            for (&x, &w) in a_row.iter().zip(b_row.iter()) {
                acc += x * w;
            }
            *o = acc;
        }
    };
    if n >= PAR_THRESHOLD {
        out.as_mut_slice().par_chunks_mut(m).enumerate().for_each(body);
    } else {
        out.as_mut_slice().chunks_mut(m).enumerate().for_each(body);
    }
    out
}

/// `aᵀ (k×n) · b (n×m) → (k×m)` without materialising the transpose —
/// the weight-gradient product `grad_W = grad_outᵀ · x` for dense inputs.
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at sample-count mismatch");
    let k = a.cols();
    let m = b.cols();
    let n = a.rows();
    // Parallelise over output rows (columns of `a`): each owns a disjoint
    // out row, no accumulation races.
    let mut out = Matrix::zeros(k, m);
    let body = |(c, out_row): (usize, &mut [f32])| {
        for r in 0..n {
            let av = a.get(r, c);
            if av != 0.0 {
                let b_row = b.row(r);
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    };
    if k >= PAR_THRESHOLD {
        out.as_mut_slice().par_chunks_mut(m).enumerate().for_each(body);
    } else {
        out.as_mut_slice().chunks_mut(m).enumerate().for_each(body);
    }
    out
}

/// Sparse × dense-transposed product: `x (n×d, CSR) · Wᵀ` with `W (out×d)`.
///
/// This is the input-layer forward pass on CO-VV/CO-EL batches; cost is
/// `O(nnz · out)` rather than `O(n · d · out)`.
pub fn csr_matmul_bt(x: &Csr, w: &Matrix) -> Matrix {
    assert_eq!(x.cols(), w.cols(), "csr_matmul_bt inner dimension mismatch");
    let n = x.rows();
    let out_f = w.rows();
    let mut out = Matrix::zeros(n, out_f);
    let body = |(r, out_row): (usize, &mut [f32])| {
        for (j, v) in x.row_entries(r) {
            for (o, out_v) in out_row.iter_mut().enumerate() {
                *out_v += v * w.get(o, j);
            }
        }
    };
    if n >= PAR_THRESHOLD {
        out.as_mut_slice().par_chunks_mut(out_f).enumerate().for_each(body);
    } else {
        out.as_mut_slice().chunks_mut(out_f).enumerate().for_each(body);
    }
    out
}

/// Sparse weight-gradient product: `grad_W (out×d) = grad_outᵀ (out×n) · x (n×d, CSR)`.
///
/// Parallelises over output neurons so each thread owns one `grad_W` row.
pub fn csr_grad_weight(grad_out: &Matrix, x: &Csr) -> Matrix {
    assert_eq!(grad_out.rows(), x.rows(), "csr_grad_weight sample-count mismatch");
    let out_f = grad_out.cols();
    let d = x.cols();
    let n = x.rows();
    let mut gw = Matrix::zeros(out_f, d);
    let body = |(o, gw_row): (usize, &mut [f32])| {
        for r in 0..n {
            let g = grad_out.get(r, o);
            if g != 0.0 {
                for (j, v) in x.row_entries(r) {
                    gw_row[j] += g * v;
                }
            }
        }
    };
    if out_f >= 8 && n >= PAR_THRESHOLD {
        gw.as_mut_slice().par_chunks_mut(d).enumerate().for_each(body);
    } else {
        gw.as_mut_slice().chunks_mut(d).enumerate().for_each(body);
    }
    gw
}

/// Sparse matrix–vector product `x (n×d) · v (d) → (n)`.
pub fn csr_matvec(x: &Csr, v: &[f32]) -> Vec<f32> {
    assert_eq!(x.cols(), v.len(), "csr_matvec dimension mismatch");
    let n = x.rows();
    let body = |r: usize| -> f32 { x.row_entries(r).map(|(j, xv)| xv * v[j]).sum() };
    if n >= PAR_THRESHOLD {
        (0..n).into_par_iter().map(body).collect()
    } else {
        (0..n).map(body).collect()
    }
}

/// Transposed sparse matrix–vector product `xᵀ (d×n) · u (n) → (d)`.
pub fn csr_tmatvec(x: &Csr, u: &[f32]) -> Vec<f32> {
    assert_eq!(x.rows(), u.len(), "csr_tmatvec dimension mismatch");
    let mut out = vec![0.0f32; x.cols()];
    for (r, &s) in u.iter().enumerate() {
        if s != 0.0 {
            for (j, v) in x.row_entries(r) {
                out[j] += s * v;
            }
        }
    }
    out
}

/// Adds `bias` (length m) to every row of `a (n×m)` in place.
pub fn add_bias(a: &mut Matrix, bias: &[f32]) {
    assert_eq!(a.cols(), bias.len(), "bias length mismatch");
    let m = a.cols();
    a.as_mut_slice().chunks_mut(m).for_each(|row| {
        for (v, &b) in row.iter_mut().zip(bias.iter()) {
            *v += b;
        }
    });
}

/// Column sums of `a` — the bias gradient `Σ_samples grad_out`.
pub fn col_sums(a: &Matrix) -> Vec<f32> {
    let m = a.cols();
    let mut out = vec![0.0f32; m];
    for r in 0..a.rows() {
        for (o, &v) in out.iter_mut().zip(a.row(r).iter()) {
            *o += v;
        }
    }
    out
}

/// Row-wise softmax, numerically stabilised by max subtraction.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let m = logits.cols();
    let mut out = logits.clone();
    let body = |row: &mut [f32]| {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    };
    if logits.rows() >= PAR_THRESHOLD {
        out.as_mut_slice().par_chunks_mut(m).for_each(body);
    } else {
        out.as_mut_slice().chunks_mut(m).for_each(body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrBuilder;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(r, k) * b.get(k, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Matrix::from_fn(7, 5, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32 * 0.25);
        assert!(matmul(&a, &b).max_abs_diff(&naive_matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        let a = Matrix::from_fn(130, 9, |r, c| ((r * 7 + c) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(9, 4, |r, c| ((r + c) % 3) as f32);
        assert!(matmul(&a, &b).max_abs_diff(&naive_matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_bt_equals_matmul_with_transpose() {
        let a = Matrix::from_fn(6, 4, |r, c| (r + 2 * c) as f32);
        let w = Matrix::from_fn(3, 4, |r, c| (r as f32 + 1.0) * (c as f32 - 1.5));
        assert!(matmul_bt(&a, &w).max_abs_diff(&matmul(&a, &w.transpose())) < 1e-4);
    }

    #[test]
    fn matmul_at_equals_transpose_then_matmul() {
        let a = Matrix::from_fn(8, 3, |r, c| ((r * c) % 5) as f32 - 2.0);
        let b = Matrix::from_fn(8, 6, |r, c| ((r + c) % 4) as f32);
        assert!(matmul_at(&a, &b).max_abs_diff(&matmul(&a.transpose(), &b)) < 1e-4);
    }

    #[test]
    fn csr_matmul_bt_matches_dense() {
        let mut b = CsrBuilder::new(10);
        for r in 0..9 {
            b.push_row([(r % 10, 1.0), ((r * 3 + 1) % 10, 0.5)]);
        }
        let x = b.finish();
        let w = Matrix::from_fn(4, 10, |r, c| (r as f32 + 1.0) * 0.1 * (c as f32 - 4.0));
        let sparse_out = csr_matmul_bt(&x, &w);
        let dense_out = matmul_bt(&x.to_dense(), &w);
        assert!(sparse_out.max_abs_diff(&dense_out) < 1e-4);
    }

    #[test]
    fn csr_grad_weight_matches_dense() {
        let mut b = CsrBuilder::new(12);
        for r in 0..20 {
            b.push_row([((r * 5) % 12, 1.0)]);
        }
        let x = b.finish();
        let go = Matrix::from_fn(20, 3, |r, c| ((r + c) % 7) as f32 * 0.3 - 0.9);
        let sparse_gw = csr_grad_weight(&go, &x);
        let dense_gw = matmul_at(&go, &x.to_dense());
        assert!(sparse_gw.max_abs_diff(&dense_gw) < 1e-4);
    }

    #[test]
    fn csr_matvec_matches_dense() {
        let mut b = CsrBuilder::new(6);
        b.push_row([(0, 1.0), (5, 2.0)]);
        b.push_row([(3, -1.0)]);
        let x = b.finish();
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let got = csr_matvec(&x, &v);
        assert_eq!(got, vec![13.0, -4.0]);
    }

    #[test]
    fn csr_tmatvec_matches_dense_transpose() {
        let mut b = CsrBuilder::new(4);
        b.push_row([(0, 1.0), (2, 1.0)]);
        b.push_row([(2, 3.0)]);
        b.push_row([(3, -2.0)]);
        let x = b.finish();
        let u = [1.0, 2.0, 0.5];
        let got = csr_tmatvec(&x, &u);
        // column sums: col0: 1*1, col1: 0, col2: 1*1+3*2, col3: -2*0.5
        assert_eq!(got, vec![1.0, 0.0, 7.0, -1.0]);
    }

    #[test]
    fn csr_matvec_tmatvec_adjoint_identity() {
        // <Xv, u> == <v, Xᵀu> — the property CG relies on.
        let mut b = CsrBuilder::new(5);
        for r in 0..7 {
            b.push_row([((r * 2) % 5, 1.0), ((r + 3) % 5, 0.5)]);
        }
        let x = b.finish();
        let v: Vec<f32> = (0..5).map(|i| i as f32 - 2.0).collect();
        let u: Vec<f32> = (0..7).map(|i| (i as f32) * 0.3).collect();
        let xv = csr_matvec(&x, &v);
        let xtu = csr_tmatvec(&x, &u);
        let lhs: f32 = xv.iter().zip(u.iter()).map(|(a, b)| a * b).sum();
        let rhs: f32 = v.iter().zip(xtu.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn add_bias_adds_rowwise() {
        let mut a = Matrix::zeros(2, 3);
        add_bias(&mut a, &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sums_matches_manual() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(col_sums(&a), vec![4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, -1.0, -1.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.get(0, 2) > p.get(0, 1));
        assert!((p.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        assert!(softmax_rows(&a).max_abs_diff(&softmax_rows(&b)) < 1e-5);
    }
}
