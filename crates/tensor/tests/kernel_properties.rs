//! Property tests pinning every blocked/`_into` kernel to the retained
//! naive references within 1e-5, over shapes chosen to straddle the
//! parallel threshold (`ops::PAR_THRESHOLD` = 64 rows) and the blocking
//! parameters (`MC` = 32 row blocks, `KC` = 256 k-panels, `NR` = 4 wide
//! register tiles) — so sequential/parallel paths, full blocks, and every
//! tail all get exercised.

use proptest::prelude::*;

use ctlm_tensor::ops::{self, naive};
use ctlm_tensor::{CsrBuilder, Matrix};

/// Dimensions that cross the interesting boundaries: microkernel tails
/// (1..6), the MC=32 row block (31..34), the PAR_THRESHOLD=64 switch
/// (63..66), and a straggler past two blocks (70).
fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..6, 31usize..34, 63usize..66, Just(70usize)]
}

/// Inner dimensions additionally cross the KC=256 k-panel boundary.
fn arb_inner() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..6, 63usize..66, 255usize..258, Just(520usize)]
}

fn dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    // Deterministic pseudo-random fill with exact zeros sprinkled in so
    // the kernels' zero-skip branches execute.
    Matrix::from_fn(rows, cols, |r, c| {
        let h = (r as u64)
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add((c as u64).wrapping_mul(0x85EB_CA6B))
            .wrapping_add(seed.wrapping_mul(0xC2B2_AE35));
        let h = (h ^ (h >> 13)).wrapping_mul(0x27D4_EB2F);
        if h.is_multiple_of(5) {
            0.0
        } else {
            ((h % 2000) as f32 - 1000.0) / 503.0
        }
    })
}

fn sparse(rows: usize, cols: usize, seed: u64) -> ctlm_tensor::Csr {
    let mut b = CsrBuilder::new(cols);
    for r in 0..rows {
        let nnz = ((r as u64 + seed) % 4) as usize;
        b.push_row((0..nnz).map(|k| {
            let col = ((r as u64 + seed)
                .wrapping_mul(31)
                .wrapping_add(k as u64 * 7)
                % cols as u64) as usize;
            (col, ((k + r) % 3) as f32 - 1.0)
        }));
    }
    b.finish()
}

/// 1e-5 relative to the magnitude of the values involved.
fn close(a: &Matrix, b: &Matrix, scale: f32) -> bool {
    a.shape() == b.shape() && a.max_abs_diff(b) <= 1e-5 * scale.max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn matmul_matches_naive(n in arb_dim(), k in arb_inner(), m in arb_dim(), seed in 0u64..100) {
        let a = dense(n, k, seed);
        let b = dense(k, m, seed ^ 1);
        let reference = naive::matmul(&a, &b);
        prop_assert!(close(&ops::matmul(&a, &b), &reference, k as f32 * 4.0));
        // _into with a dirty, differently-shaped buffer.
        let mut out = dense(3, 7, 99);
        ops::matmul_into(&a, &b, &mut out);
        prop_assert!(close(&out, &reference, k as f32 * 4.0));
    }

    #[test]
    fn matmul_bt_matches_naive(n in arb_dim(), k in arb_inner(), m in arb_dim(), seed in 0u64..100) {
        let a = dense(n, k, seed);
        let b = dense(m, k, seed ^ 2);
        let reference = naive::matmul_bt(&a, &b);
        prop_assert!(close(&ops::matmul_bt(&a, &b), &reference, k as f32 * 4.0));
        let mut out = Matrix::zeros(1, 1);
        ops::matmul_bt_into(&a, &b, &mut out);
        prop_assert!(close(&out, &reference, k as f32 * 4.0));
    }

    #[test]
    fn matmul_at_matches_naive(n in arb_inner(), k in arb_dim(), m in arb_dim(), seed in 0u64..100) {
        let a = dense(n, k, seed);
        let b = dense(n, m, seed ^ 3);
        let reference = naive::matmul_at(&a, &b);
        prop_assert!(close(&ops::matmul_at(&a, &b), &reference, n as f32 * 4.0));
        // The accumulating form adds on top of an existing gradient.
        let mut acc = reference.clone();
        ops::matmul_at_acc(&a, &b, &mut acc);
        let mut doubled = reference.clone();
        doubled.scale(2.0);
        prop_assert!(close(&acc, &doubled, n as f32 * 8.0));
    }

    #[test]
    fn transpose_matches_naive(n in arb_dim(), m in arb_inner(), seed in 0u64..100) {
        let a = dense(n, m, seed);
        let reference = naive::transpose(&a);
        let mut out = dense(2, 2, 5);
        ops::transpose_into(&a, &mut out);
        prop_assert_eq!(&out, &reference);
        prop_assert_eq!(&a.transpose(), &reference);
    }

    #[test]
    fn csr_kernels_match_naive(n in arb_dim(), d in arb_inner(), o in arb_dim(), seed in 0u64..100) {
        let x = sparse(n, d, seed);
        let w = dense(o, d, seed ^ 4);
        let fwd_ref = naive::csr_matmul_bt(&x, &w);
        prop_assert!(close(&ops::csr_matmul_bt(&x, &w), &fwd_ref, d as f32));
        let mut out = Matrix::zeros(0, 0);
        ops::csr_matmul_bt_into(&x, &w, &mut out);
        prop_assert!(close(&out, &fwd_ref, d as f32));

        let go = dense(n, o, seed ^ 5);
        let gw_ref = naive::csr_grad_weight(&go, &x);
        prop_assert!(close(&ops::csr_grad_weight(&go, &x), &gw_ref, n as f32));
        let mut acc = gw_ref.clone();
        ops::csr_grad_weight_acc(&go, &x, &mut acc);
        let mut doubled = gw_ref.clone();
        doubled.scale(2.0);
        prop_assert!(close(&acc, &doubled, n as f32 * 2.0));
    }

    #[test]
    fn reductions_match_naive(n in arb_inner(), m in arb_dim(), seed in 0u64..100) {
        let a = dense(n, m, seed);
        let reference = naive::col_sums(&a);
        let got = ops::col_sums(&a);
        prop_assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(reference.iter()) {
            prop_assert!((g - r).abs() <= 1e-4 * (n as f32).max(1.0), "{} vs {}", g, r);
        }

        let soft_ref = naive::softmax_rows(&a);
        prop_assert!(close(&ops::softmax_rows(&a), &soft_ref, 1.0));
        let mut inplace = a.clone();
        ops::softmax_rows_inplace(&mut inplace);
        prop_assert!(close(&inplace, &soft_ref, 1.0));
    }
}
