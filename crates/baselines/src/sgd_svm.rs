//! `sklearn.linear_model.SGDClassifier` stand-in.
//!
//! “Implements a Linear SVM trained with Stochastic Gradient Descent,
//! optimizing weights incrementally for each data point. This approach is
//! fast, memory-efficient, and suitable for high-dimensional problems.”
//!
//! One-vs-rest hinge loss with L2 penalty, per-sample updates, and
//! scikit-learn's `optimal` learning-rate schedule
//! `η_t = 1 / (α (t + t₀))`, plus the tol-based early stop.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ctlm_tensor::Csr;

use crate::{Classifier, FitReport};

/// Linear SVM via SGD, one-vs-rest.
#[derive(Clone, Debug)]
pub struct SgdClassifier {
    /// L2 regularisation strength (sklearn default 1e-4).
    pub alpha: f32,
    /// Number of classes.
    pub n_classes: usize,
    /// Epoch cap (sklearn default 1000; far fewer needed here).
    pub max_iter: usize,
    /// Early-stop tolerance on the epoch hinge objective.
    pub tol: f32,
    /// Early-stop patience in epochs (sklearn `n_iter_no_change`).
    pub n_iter_no_change: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// `(weights, intercept)` per class.
    weights: Option<Vec<(Vec<f32>, f32)>>,
}

impl SgdClassifier {
    /// Defaults close to scikit-learn's.
    pub fn new(n_classes: usize, seed: u64) -> Self {
        Self {
            alpha: 1e-4,
            n_classes,
            max_iter: 100,
            tol: 1e-3,
            n_iter_no_change: 5,
            seed,
            weights: None,
        }
    }

    fn margin(w: &[f32], b: f32, entries: impl Iterator<Item = (usize, f32)>) -> f32 {
        let mut s = b;
        for (j, v) in entries {
            s += w[j] * v;
        }
        s
    }
}

impl Classifier for SgdClassifier {
    fn fit(&mut self, x: &Csr, y: &[u8]) -> FitReport {
        assert_eq!(x.rows(), y.len(), "sample count mismatch");
        let d = x.cols();
        let n = x.rows();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x56D_C1A5);
        let mut weights: Vec<(Vec<f32>, f32)> = (0..self.n_classes)
            .map(|_| (vec![0.0f32; d], 0.0f32))
            .collect();
        // sklearn's "optimal" schedule t0 heuristic (Bottou): we use a
        // fixed pragmatic value; the schedule shape is what matters.
        let t0 = 1.0f32 / (self.alpha.max(1e-8));
        let mut t: f32 = 1.0;
        let mut order: Vec<usize> = (0..n).collect();
        let mut best_obj = f32::INFINITY;
        let mut since_best = 0usize;
        let mut epochs = 0usize;
        let mut converged = false;

        for _ in 0..self.max_iter {
            epochs += 1;
            order.shuffle(&mut rng);
            let mut hinge_sum = 0.0f32;
            for &i in &order {
                let eta = 1.0 / (self.alpha * (t + t0));
                t += 1.0;
                for (c, (w, b)) in weights.iter_mut().enumerate() {
                    let target = if y[i] as usize == c { 1.0f32 } else { -1.0 };
                    let m = target * Self::margin(w, *b, x.row_entries(i));
                    // L2 shrink (applied multiplicatively, as in sklearn's
                    // sparse implementation).
                    let shrink = 1.0 - eta * self.alpha;
                    if shrink > 0.0 {
                        for v in w.iter_mut() {
                            *v *= shrink;
                        }
                    }
                    if m < 1.0 {
                        hinge_sum += 1.0 - m;
                        for (j, v) in x.row_entries(i) {
                            w[j] += eta * target * v;
                        }
                        *b += eta * target;
                    }
                }
            }
            let obj = hinge_sum / n as f32;
            if obj < best_obj - self.tol {
                best_obj = obj;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= self.n_iter_no_change {
                    converged = true;
                    break;
                }
            }
        }
        self.weights = Some(weights);
        FitReport { epochs, converged }
    }

    fn predict(&self, x: &Csr) -> Vec<u8> {
        let weights = self.weights.as_ref().expect("fit before predict");
        (0..x.rows())
            .map(|r| {
                let mut best = 0usize;
                let mut best_s = f32::NEG_INFINITY;
                for (c, (w, b)) in weights.iter().enumerate() {
                    let s = Self::margin(w, *b, x.row_entries(r));
                    if s > best_s {
                        best_s = s;
                        best = c;
                    }
                }
                best as u8
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "SGD Classifier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::train_accuracy;

    #[test]
    fn learns_separable_problem() {
        let mut clf = SgdClassifier::new(4, 3);
        let acc = train_accuracy(&mut clf, 200, 4);
        assert!(acc > 0.9, "SGD-SVM training accuracy {acc}");
    }

    #[test]
    fn early_stops_before_cap() {
        let (x, y) = crate::test_support::toy_problem(150, 3, 8);
        let mut clf = SgdClassifier::new(3, 8);
        let report = clf.fit(&x, &y);
        assert!(
            report.epochs < clf.max_iter,
            "expected early stop, ran {}",
            report.epochs
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = crate::test_support::toy_problem(80, 3, 2);
        let mut a = SgdClassifier::new(3, 5);
        let mut b = SgdClassifier::new(3, 5);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn heavier_regularisation_shrinks_weights() {
        let (x, y) = crate::test_support::toy_problem(100, 3, 4);
        let norm = |alpha: f32| -> f32 {
            let mut clf = SgdClassifier::new(3, 4);
            clf.alpha = alpha;
            clf.fit(&x, &y);
            clf.weights
                .as_ref()
                .unwrap()
                .iter()
                .flat_map(|(w, _)| w.iter())
                .map(|v| v * v)
                .sum()
        };
        assert!(norm(0.1) < norm(1e-5), "larger alpha must shrink weights");
    }
}
