//! `sklearn.linear_model.RidgeClassifier` stand-in.
//!
//! “Uses Ridge Regression, which adds an L2 regularization penalty …
//! computationally efficient, interpretable, and effective for datasets
//! with many features or correlated variables.”
//!
//! One-vs-rest: each class regresses ±1 targets with an L2 penalty. The
//! normal equations `(XᵀX + αI) w = Xᵀ t` are solved by conjugate
//! gradient with the matrix applied implicitly through the sparse matrix
//! (`v ↦ Xᵀ(Xv) + αv`) — `XᵀX` is never materialised, which is what
//! keeps the solver viable at the paper's ~16k feature widths. The
//! intercept is fit via an implicit all-ones column.

use rayon::prelude::*;

use ctlm_tensor::{ops, Csr};

use crate::{Classifier, FitReport};

/// Ridge regression one-vs-rest classifier.
#[derive(Clone, Debug)]
pub struct RidgeClassifier {
    /// L2 penalty (sklearn default 1.0).
    pub alpha: f32,
    /// Number of classes.
    pub n_classes: usize,
    /// CG iteration cap.
    pub max_cg_iter: usize,
    /// CG residual tolerance.
    pub tol: f32,
    /// Learned weights, one row per class, `d + 1` columns (last =
    /// intercept).
    weights: Option<Vec<Vec<f32>>>,
}

impl RidgeClassifier {
    /// Defaults matching scikit-learn.
    pub fn new(n_classes: usize) -> Self {
        Self {
            alpha: 1.0,
            n_classes,
            max_cg_iter: 200,
            tol: 1e-5,
            weights: None,
        }
    }

    /// Decision score of class `c` for a sample given as sparse entries.
    fn score_row(w: &[f32], entries: impl Iterator<Item = (usize, f32)>) -> f32 {
        let d = w.len() - 1;
        let mut s = w[d]; // intercept
        for (j, v) in entries {
            s += w[j] * v;
        }
        s
    }

    /// Applies `v ↦ Xᵀ(Xv) + αv` with the implicit intercept column
    /// (index `d`, all ones, not penalised — sklearn does not penalise the
    /// intercept).
    fn normal_op(x: &Csr, alpha: f32, v: &[f32]) -> Vec<f32> {
        let d = x.cols();
        // Xv with augmented column: Xv + v[d] * 1
        let mut xv = ops::csr_matvec(x, &v[..d]);
        for e in xv.iter_mut() {
            *e += v[d];
        }
        // Xᵀ(Xv) augmented: [Xᵀ xv ; Σ xv]
        let mut out = ops::csr_tmatvec(x, &xv);
        let ones_dot: f32 = xv.iter().sum();
        out.push(ones_dot);
        for (i, o) in out.iter_mut().enumerate() {
            if i < d {
                *o += alpha * v[i];
            }
        }
        out
    }

    /// CG solve of the (symmetric positive definite) normal equations.
    fn cg_solve(x: &Csr, alpha: f32, b: &[f32], max_iter: usize, tol: f32) -> (Vec<f32>, bool) {
        let n = b.len();
        let mut w = vec![0.0f32; n];
        let mut r = b.to_vec();
        let mut p = r.clone();
        let mut rs: f32 = r.iter().map(|v| v * v).sum();
        let b_norm = rs.sqrt().max(1e-12);
        for _ in 0..max_iter {
            if rs.sqrt() / b_norm < tol {
                return (w, true);
            }
            let ap = Self::normal_op(x, alpha, &p);
            let pap: f32 = p.iter().zip(ap.iter()).map(|(a, b)| a * b).sum();
            if pap.abs() < 1e-20 {
                break;
            }
            let step = rs / pap;
            for i in 0..n {
                w[i] += step * p[i];
                r[i] -= step * ap[i];
            }
            let rs_new: f32 = r.iter().map(|v| v * v).sum();
            let beta = rs_new / rs;
            rs = rs_new;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
        }
        let converged = rs.sqrt() / b_norm < tol;
        (w, converged)
    }
}

impl Classifier for RidgeClassifier {
    fn fit(&mut self, x: &Csr, y: &[u8]) -> FitReport {
        assert_eq!(x.rows(), y.len(), "sample count mismatch");
        let d = x.cols();
        let classes: Vec<usize> = (0..self.n_classes).collect();
        // One CG solve per class — independent, so run them in parallel
        // (the paper notes baseline training dominated by exactly this).
        let results: Vec<(Vec<f32>, bool)> = classes
            .par_iter()
            .map(|&c| {
                // targets ±1
                let t: Vec<f32> = y
                    .iter()
                    .map(|&label| if label as usize == c { 1.0 } else { -1.0 })
                    .collect();
                // b = Xᵀt augmented with Σt.
                let mut b = ops::csr_tmatvec(x, &t);
                b.push(t.iter().sum());
                debug_assert_eq!(b.len(), d + 1);
                Self::cg_solve(x, self.alpha, &b, self.max_cg_iter, self.tol)
            })
            .collect();
        let converged = results.iter().all(|(_, ok)| *ok);
        self.weights = Some(results.into_iter().map(|(w, _)| w).collect());
        FitReport {
            epochs: 0,
            converged,
        }
    }

    fn predict(&self, x: &Csr) -> Vec<u8> {
        let weights = self.weights.as_ref().expect("fit before predict");
        (0..x.rows())
            .map(|r| {
                let mut best = 0usize;
                let mut best_score = f32::NEG_INFINITY;
                for (c, w) in weights.iter().enumerate() {
                    let s = Self::score_row(w, x.row_entries(r));
                    if s > best_score {
                        best_score = s;
                        best = c;
                    }
                }
                best as u8
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "Ridge Classifier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::train_accuracy;

    #[test]
    fn learns_separable_problem() {
        let mut clf = RidgeClassifier::new(4);
        let acc = train_accuracy(&mut clf, 200, 4);
        assert!(acc > 0.9, "Ridge training accuracy {acc}");
    }

    #[test]
    fn cg_converges_on_small_problem() {
        let (x, y) = crate::test_support::toy_problem(80, 3, 3);
        let mut clf = RidgeClassifier::new(3);
        let report = clf.fit(&x, &y);
        assert!(report.converged, "CG should converge within the cap");
    }

    #[test]
    fn stronger_regularisation_shrinks_weights() {
        let (x, y) = crate::test_support::toy_problem(100, 3, 4);
        let mut weak = RidgeClassifier::new(3);
        weak.alpha = 0.01;
        weak.fit(&x, &y);
        let mut strong = RidgeClassifier::new(3);
        strong.alpha = 100.0;
        strong.fit(&x, &y);
        let norm = |c: &RidgeClassifier| -> f32 {
            c.weights
                .as_ref()
                .unwrap()
                .iter()
                .flat_map(|w| w[..w.len() - 1].iter())
                .map(|v| v * v)
                .sum()
        };
        assert!(
            norm(&strong) < norm(&weak) * 0.5,
            "L2 penalty must shrink coefficients"
        );
    }

    #[test]
    fn deterministic() {
        let (x, y) = crate::test_support::toy_problem(60, 3, 5);
        let mut a = RidgeClassifier::new(3);
        let mut b = RidgeClassifier::new(3);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
