//! `sklearn.ensemble.VotingClassifier` stand-in (hard voting).
//!
//! “Combines predictions from the baseline models using hard voting, as
//! some models lacked the `predict_proba` method needed for soft voting.”
//! Ties resolve to the lowest class index, matching scikit-learn's
//! `argmax` over vote counts.

use ctlm_tensor::Csr;

use crate::{Classifier, FitReport};

/// Hard-voting ensemble over boxed classifiers.
pub struct VotingClassifier {
    members: Vec<Box<dyn Classifier + Send>>,
    n_classes: usize,
}

impl VotingClassifier {
    /// An ensemble over the given members.
    ///
    /// # Panics
    /// Panics when `members` is empty.
    pub fn new(members: Vec<Box<dyn Classifier + Send>>, n_classes: usize) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Self { members, n_classes }
    }

    /// The paper's ensemble: MLP + Ridge + SGD.
    pub fn paper_default(n_classes: usize, seed: u64) -> Self {
        Self::new(
            vec![
                Box::new(crate::MlpClassifier::paper_default(n_classes, seed)),
                Box::new(crate::RidgeClassifier::new(n_classes)),
                Box::new(crate::SgdClassifier::new(n_classes, seed)),
            ],
            n_classes,
        )
    }

    /// Number of ensemble members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Classifier for VotingClassifier {
    fn fit(&mut self, x: &Csr, y: &[u8]) -> FitReport {
        // The paper notes the ensemble "is well-parallelized"; members are
        // trained independently. (Members hold heterogeneous state so we
        // train sequentially here; the wall-clock claim is reproduced by
        // the bench harness at the ensemble level.)
        let mut epochs = 0;
        let mut converged = true;
        for m in self.members.iter_mut() {
            let r = m.fit(x, y);
            epochs += r.epochs;
            converged &= r.converged;
        }
        FitReport { epochs, converged }
    }

    fn predict(&self, x: &Csr) -> Vec<u8> {
        let votes: Vec<Vec<u8>> = self.members.iter().map(|m| m.predict(x)).collect();
        (0..x.rows())
            .map(|r| {
                let mut counts = vec![0u32; self.n_classes];
                for v in &votes {
                    counts[v[r] as usize] += 1;
                }
                let mut best = 0usize;
                let mut best_c = 0u32;
                for (c, &n) in counts.iter().enumerate() {
                    if n > best_c {
                        best_c = n;
                        best = c;
                    }
                }
                best as u8
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "Ensemble Voter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::toy_problem;

    /// A stub classifier with a fixed answer, for vote-counting tests.
    struct Constant(u8);
    impl Classifier for Constant {
        fn fit(&mut self, _x: &Csr, _y: &[u8]) -> FitReport {
            FitReport::default()
        }
        fn predict(&self, x: &Csr) -> Vec<u8> {
            vec![self.0; x.rows()]
        }
        fn name(&self) -> &'static str {
            "Constant"
        }
    }

    #[test]
    fn majority_wins() {
        let mut v = VotingClassifier::new(
            vec![
                Box::new(Constant(2)),
                Box::new(Constant(2)),
                Box::new(Constant(0)),
            ],
            3,
        );
        let (x, y) = toy_problem(10, 3, 0);
        v.fit(&x, &y);
        assert!(v.predict(&x).iter().all(|&p| p == 2));
    }

    #[test]
    fn tie_resolves_to_lowest_class() {
        let mut v = VotingClassifier::new(vec![Box::new(Constant(3)), Box::new(Constant(1))], 4);
        let (x, y) = toy_problem(6, 4, 1);
        v.fit(&x, &y);
        assert!(v.predict(&x).iter().all(|&p| p == 1));
    }

    #[test]
    fn full_ensemble_learns() {
        let mut v = VotingClassifier::paper_default(3, 12);
        let (x, y) = toy_problem(150, 3, 13);
        v.fit(&x, &y);
        let pred = v.predict(&x);
        let acc = pred.iter().zip(y.iter()).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.9, "ensemble accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        let _ = VotingClassifier::new(vec![], 2);
    }
}
