//! # ctlm-baselines — the SciKit-learn baseline stand-ins
//!
//! §V compares the paper's models against four scikit-learn classifiers
//! chosen for their handling of large sparse datasets. Each is
//! reimplemented from its defining algorithm:
//!
//! * [`MlpClassifier`] — `sklearn.neural_network.MLPClassifier` with the
//!   paper's configuration: 30 hidden units, ReLU, Adam.
//! * [`RidgeClassifier`] — `sklearn.linear_model.RidgeClassifier`:
//!   one-vs-rest ridge regression on ±1 targets, solved by conjugate
//!   gradient on the normal equations (never materialising `XᵀX`).
//! * [`SgdClassifier`] — `sklearn.linear_model.SGDClassifier`: a linear
//!   SVM (hinge loss, L2 penalty) trained with per-sample SGD.
//! * [`VotingClassifier`] — `sklearn.ensemble.VotingClassifier` with hard
//!   voting (“as some models lacked the `predict_proba` method needed for
//!   soft voting”).
//!
//! All baselines implement [`Classifier`], the interface the evaluation
//! pipeline consumes.

pub mod mlp;
pub mod ridge;
pub mod sgd_svm;
pub mod voting;

pub use mlp::MlpClassifier;
pub use ridge::RidgeClassifier;
pub use sgd_svm::SgdClassifier;
pub use voting::VotingClassifier;

use ctlm_tensor::Csr;

/// Training outcome metadata.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FitReport {
    /// Training epochs (passes over the data) actually run. Zero for
    /// closed-form / non-iterative models where the notion is vacuous.
    pub epochs: usize,
    /// Whether the model's own convergence criterion fired (as opposed to
    /// hitting the iteration cap).
    pub converged: bool,
}

/// The common classifier interface (scikit-learn's `fit`/`predict`).
pub trait Classifier {
    /// Trains on a sparse feature matrix and labels.
    fn fit(&mut self, x: &Csr, y: &[u8]) -> FitReport;
    /// Predicts a label per row.
    fn predict(&self, x: &Csr) -> Vec<u8>;
    /// Display name (matches the paper's terminology).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_support {
    use ctlm_tensor::{Csr, CsrBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A noisy linearly separable multi-class problem: class c marks
    /// feature 2c always and feature 2c+1 half the time, plus a random
    /// noise feature.
    pub fn toy_problem(n: usize, classes: usize, seed: u64) -> (Csr, Vec<u8>) {
        let d = classes * 2 + 4;
        let mut b = CsrBuilder::new(d);
        let mut y = Vec::with_capacity(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let c = i % classes;
            let mut row = vec![(c * 2, 1.0f32)];
            if rng.gen_bool(0.5) {
                row.push((c * 2 + 1, 1.0));
            }
            row.push((classes * 2 + rng.gen_range(0usize..4), 1.0));
            b.push_row(row);
            y.push(c as u8);
        }
        (b.finish(), y)
    }

    /// Accuracy helper for baseline smoke tests.
    pub fn train_accuracy(clf: &mut dyn super::Classifier, n: usize, classes: usize) -> f64 {
        let (x, y) = toy_problem(n, classes, 42);
        clf.fit(&x, &y);
        let pred = clf.predict(&x);
        let correct = pred.iter().zip(y.iter()).filter(|(a, b)| a == b).count();
        correct as f64 / n as f64
    }
}
