//! `sklearn.neural_network.MLPClassifier` stand-in.
//!
//! The paper: “Similar to the Growing model, the ANN was configured with
//! 30 hidden units and the default Adam optimizer.” scikit-learn defaults
//! reproduced here: ReLU activation, Adam at lr 1e-3, mini-batches of
//! `min(200, n)`, `max_iter` epochs with a no-improvement early stop
//! (`tol` 1e-4 over `n_iter_no_change` 10 epochs).

use ctlm_nn::{Adam, BatchIter, CrossEntropyLoss, Net, Optimizer};
use ctlm_tensor::init::seeded_rng;
use ctlm_tensor::Csr;

use crate::{Classifier, FitReport};

/// Configurable MLP baseline.
#[derive(Clone, Debug)]
pub struct MlpClassifier {
    /// Hidden layer width (paper: 30).
    pub hidden: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Adam learning rate (sklearn default 1e-3).
    pub lr: f32,
    /// Epoch cap (sklearn default 200).
    pub max_iter: usize,
    /// Loss-improvement tolerance for early stopping.
    pub tol: f32,
    /// Early-stop patience in epochs.
    pub n_iter_no_change: usize,
    /// Mini-batch size; `None` uses sklearn's `min(200, n)` default.
    pub batch_size: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    net: Option<Net>,
}

impl MlpClassifier {
    /// The paper's configuration: 30 hidden units, default Adam.
    pub fn paper_default(n_classes: usize, seed: u64) -> Self {
        Self {
            hidden: 30,
            n_classes,
            lr: 1e-3,
            max_iter: 200,
            tol: 1e-4,
            n_iter_no_change: 10,
            batch_size: None,
            seed,
            net: None,
        }
    }

    /// Access to the trained network (tests, ensemble reuse).
    pub fn net(&self) -> Option<&Net> {
        self.net.as_ref()
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &Csr, y: &[u8]) -> FitReport {
        assert_eq!(x.rows(), y.len(), "sample count mismatch");
        let mut rng = seeded_rng(self.seed);
        let mut net = Net::mlp(x.cols(), self.hidden, self.n_classes, &mut rng);
        let loss_fn = CrossEntropyLoss::uniform(self.n_classes);
        let mut opt = Adam::new(self.lr);
        let batch_size = self.batch_size.unwrap_or_else(|| 200.min(x.rows())).max(1);
        let mut batches = BatchIter::new(x.rows(), batch_size, self.seed);

        let mut best_loss = f32::INFINITY;
        let mut since_best = 0usize;
        let mut epochs = 0usize;
        let mut converged = false;
        for _ in 0..self.max_iter {
            epochs += 1;
            let mut epoch_loss = 0.0f32;
            let mut nb = 0usize;
            for batch in batches.epoch() {
                let xb = x.select_rows(&batch);
                let yb: Vec<u8> = batch.iter().map(|&i| y[i]).collect();
                net.zero_grad();
                let cache = net.forward_train(&xb);
                let (loss, grad) = loss_fn.forward(&cache.logits, &yb);
                net.backward(&xb, &cache, &grad);
                opt.step(&mut net);
                epoch_loss += loss;
                nb += 1;
            }
            epoch_loss /= nb.max(1) as f32;
            if epoch_loss < best_loss - self.tol {
                best_loss = epoch_loss;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= self.n_iter_no_change {
                    converged = true;
                    break;
                }
            }
        }
        self.net = Some(net);
        FitReport { epochs, converged }
    }

    fn predict(&self, x: &Csr) -> Vec<u8> {
        self.net.as_ref().expect("fit before predict").predict(x)
    }

    fn name(&self) -> &'static str {
        "MLP Classifier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::train_accuracy;

    #[test]
    fn learns_separable_problem() {
        let mut clf = MlpClassifier::paper_default(4, 7);
        clf.max_iter = 80;
        clf.batch_size = Some(32);
        let acc = train_accuracy(&mut clf, 200, 4);
        assert!(acc > 0.95, "MLP training accuracy {acc}");
    }

    #[test]
    fn early_stop_reports_convergence() {
        let mut clf = MlpClassifier::paper_default(3, 1);
        clf.max_iter = 400;
        clf.batch_size = Some(16);
        let (x, y) = crate::test_support::toy_problem(120, 3, 5);
        let report = clf.fit(&x, &y);
        assert!(report.converged, "expected no-improvement early stop");
        assert!(report.epochs < 400);
    }

    #[test]
    #[should_panic(expected = "fit before predict")]
    fn predict_before_fit_panics() {
        let clf = MlpClassifier::paper_default(3, 0);
        let (x, _) = crate::test_support::toy_problem(5, 3, 0);
        let _ = clf.predict(&x);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = crate::test_support::toy_problem(100, 3, 9);
        let mut a = MlpClassifier::paper_default(3, 11);
        a.max_iter = 20;
        let mut b = MlpClassifier::paper_default(3, 11);
        b.max_iter = 20;
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
