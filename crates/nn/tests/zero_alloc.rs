//! Pins the Workspace contract: a steady-state training step — batch
//! gather, forward, weighted loss, backward, Adam — performs zero heap
//! allocations once buffers have warmed up.
//!
//! A counting global allocator wraps the system one; the test warms every
//! buffer with a few steps, then asserts the allocation counter does not
//! move for subsequent steps. Shapes stay below
//! `ctlm_tensor::ops::PAR_THRESHOLD` because the guarantee is for the
//! sequential path (the Rayon shim allocates while dispatching workers —
//! see `ctlm_nn::workspace`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ctlm_nn::{Adam, CrossEntropyLoss, Net, Optimizer, Workspace};
use ctlm_tensor::init::seeded_rng;
use ctlm_tensor::{Csr, CsrBuilder};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn batch(n: usize, d: usize, seed: u64) -> (Csr, Vec<u8>) {
    use rand::Rng;
    let mut rng = seeded_rng(seed);
    let mut b = CsrBuilder::new(d);
    let mut y = Vec::new();
    for _ in 0..n {
        let c0 = rng.gen_range(0..d);
        let c1 = rng.gen_range(0..d);
        b.push_row([(c0, 1.0), (c1, 1.0)]);
        y.push(rng.gen_range(0..26));
    }
    (b.finish(), y)
}

#[test]
fn steady_state_training_step_does_not_allocate() {
    // Paper-shaped model below the parallel threshold: batch 48, 40
    // features, hidden 30, 26 classes.
    let (n, d) = (48usize, 40usize);
    let mut rng = seeded_rng(7);
    let mut net = Net::two_layer(d, 30, 26, &mut rng);
    let loss_fn = CrossEntropyLoss::group0_boosted(26, 200.0);
    let mut opt = Adam::paper_default();
    let mut ws = Workspace::new();

    let (full, labels) = batch(n * 4, d, 1);
    let order: Vec<usize> = (0..full.rows()).collect();
    let mut xb = Csr::empty(0, d);
    let mut yb: Vec<u8> = Vec::new();

    let step = |xb: &mut Csr,
                yb: &mut Vec<u8>,
                net: &mut Net,
                ws: &mut Workspace,
                opt: &mut Adam,
                chunk: &[usize]| {
        full.select_rows_into(chunk, xb);
        yb.clear();
        yb.extend(chunk.iter().map(|&i| labels[i]));
        let loss = net.train_batch(xb, yb, &loss_fn, ws);
        opt.step(net);
        loss
    };

    // Warm-up: touch every chunk shape once so capacities settle (the
    // last chunk is smaller, exercising buffer reuse across shapes).
    for chunk in order.chunks(n) {
        step(&mut xb, &mut yb, &mut net, &mut ws, &mut opt, chunk);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut total_loss = 0.0f32;
    for _ in 0..5 {
        for chunk in order.chunks(n) {
            total_loss += step(&mut xb, &mut yb, &mut net, &mut ws, &mut opt, chunk);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(total_loss.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state training steps allocated {} times",
        after - before
    );
}

#[test]
fn workspace_reuse_still_learns() {
    // The allocation-free path must be numerically identical to the
    // allocating reference path.
    let (x, y) = batch(60, 24, 3);
    let loss_fn = CrossEntropyLoss::uniform(26);

    let mut rng_a = seeded_rng(11);
    let mut net_a = Net::two_layer(24, 12, 26, &mut rng_a);
    let mut net_b = net_a.clone();

    // Reference: allocating forward/backward.
    net_a.zero_grad();
    let cache = net_a.forward_train(&x);
    let (loss_ref, grad) = loss_fn.forward(&cache.logits, &y);
    net_a.backward(&x, &cache, &grad);

    // Workspace path.
    let mut ws = Workspace::new();
    let loss_ws = net_b.train_batch(&x, &y, &loss_fn, &mut ws);

    assert!((loss_ref - loss_ws).abs() < 1e-6, "{loss_ref} vs {loss_ws}");
    assert!(
        net_a
            .input_layer()
            .grad_weight
            .max_abs_diff(&net_b.input_layer().grad_weight)
            < 1e-6,
        "workspace path diverged from reference gradients"
    );
}
