//! Property tests over the NN substrate: gradient correctness and the
//! Listing-2 padding invariant on random networks.

use proptest::prelude::*;

use ctlm_nn::state_dict::pad_input_weight;
use ctlm_nn::{CrossEntropyLoss, Net};
use ctlm_tensor::init::seeded_rng;
use ctlm_tensor::CsrBuilder;

fn random_batch(n: usize, d: usize, seed: u64) -> (ctlm_tensor::Csr, Vec<u8>) {
    use rand::Rng;
    let mut rng = seeded_rng(seed);
    let mut b = CsrBuilder::new(d);
    let mut y = Vec::new();
    for _ in 0..n {
        let k = rng.gen_range(1..=d.min(4));
        let mut cols: Vec<usize> = (0..d).collect();
        for i in 0..k {
            let j = rng.gen_range(i..d);
            cols.swap(i, j);
        }
        b.push_row(cols[..k].iter().map(|&c| (c, 1.0)));
        y.push(rng.gen_range(0..3));
    }
    (b.finish(), y)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Analytic gradients match finite differences for random shapes,
    /// seeds and class weights — the whole backward path, sparse input
    /// included.
    #[test]
    fn gradients_match_finite_differences(
        d in 3usize..10,
        hidden in 2usize..8,
        n in 2usize..8,
        seed in 0u64..500,
        w0 in 1u32..100,
    ) {
        let mut rng = seeded_rng(seed);
        let mut net = Net::two_layer(d, hidden, 3, &mut rng);
        let (x, y) = random_batch(n, d, seed ^ 0xABCD);
        let loss_fn = CrossEntropyLoss::with_weights(vec![w0 as f32, 1.0, 1.0]);

        net.zero_grad();
        let cache = net.forward_train(&x);
        let (_, grad) = loss_fn.forward(&cache.logits, &y);
        net.backward(&x, &cache, &grad);

        let eps = 1e-2f32;
        let (r, c) = (0usize, d - 1);
        let analytic = net.input_layer().grad_weight.get(r, c);
        let orig = net.input_layer().weight.get(r, c);
        net.input_layer_mut().weight.set(r, c, orig + eps);
        let (lp, _) = loss_fn.forward(&net.forward(&x), &y);
        net.input_layer_mut().weight.set(r, c, orig - eps);
        let (lm, _) = loss_fn.forward(&net.forward(&x), &y);
        let numeric = (lp - lm) / (2.0 * eps);
        let tol = 2e-2f32.max(0.1 * numeric.abs());
        prop_assert!(
            (analytic - numeric).abs() < tol,
            "analytic {analytic} vs numeric {numeric} (d={d} hidden={hidden} n={n})"
        );
    }

    /// Listing 2 invariant: padding fc1.weight with zero columns never
    /// changes the network's output on inputs confined to the original
    /// feature prefix — for any architecture and any amount of padding.
    #[test]
    fn zero_padding_preserves_old_prefix_behaviour(
        d in 2usize..12,
        hidden in 2usize..10,
        classes in 2usize..6,
        extra in 1usize..20,
        seed in 0u64..500,
    ) {
        let mut rng = seeded_rng(seed);
        let net = Net::two_layer(d, hidden, classes, &mut rng);
        let (x, _) = random_batch(5, d, seed ^ 0x77);
        let before = net.forward(&x);

        let mut sd = net.state_dict();
        pad_input_weight(&mut sd, "fc1.weight", d + extra).unwrap();
        let mut wide = Net::two_layer(d + extra, hidden, classes, &mut seeded_rng(seed + 1));
        wide.load_state_dict(&sd).unwrap();

        // Same rows, widened matrix.
        let mut b = CsrBuilder::new(d + extra);
        for r in 0..x.rows() {
            b.push_row(x.row_entries(r));
        }
        let after = wide.forward(&b.finish());
        prop_assert!(before.max_abs_diff(&after) < 1e-5);
    }

    /// Loss is permutation-equivariant over the batch: shuffling samples
    /// never changes the (weighted-mean) loss value.
    #[test]
    fn loss_is_batch_order_invariant(
        n in 2usize..10,
        seed in 0u64..500,
    ) {
        let mut rng = seeded_rng(seed);
        let net = Net::two_layer(6, 4, 3, &mut rng);
        let (x, y) = random_batch(n, 6, seed ^ 0x55);
        let loss_fn = CrossEntropyLoss::with_weights(vec![5.0, 1.0, 2.0]);
        let (l1, _) = loss_fn.forward(&net.forward(&x), &y);

        let perm: Vec<usize> = (0..n).rev().collect();
        let xp = x.select_rows(&perm);
        let yp: Vec<u8> = perm.iter().map(|&i| y[i]).collect();
        let (l2, _) = loss_fn.forward(&net.forward(&xp), &yp);
        prop_assert!((l1 - l2).abs() < 1e-4, "loss {l1} vs permuted {l2}");
    }
}
