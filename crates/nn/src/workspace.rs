//! Reusable training-step buffers.
//!
//! The seed implementation allocated on every mini-batch: a clone of each
//! hidden activation in `forward_train`, a clone of `grad_logits` in
//! `backward`, a fresh softmax matrix in the loss, and fresh gradient
//! temporaries in each layer. A [`Workspace`] owns all of those buffers
//! instead; [`crate::Net::train_batch`] threads it through
//! forward → loss → backward so a steady-state step performs **zero heap
//! allocations** — buffers resize in place only when the batch shape or
//! the architecture actually changes (`nn/tests/zero_alloc.rs` pins this
//! with a counting allocator).
//!
//! One caveat, documented rather than hidden: above
//! `ctlm_tensor::ops::PAR_THRESHOLD` output rows the kernels take their
//! Rayon path, and the thread-pool shim allocates while dispatching. The
//! zero-allocation guarantee is for the sequential path; the parallel
//! path trades those dispatch allocations for multi-core throughput.

use ctlm_tensor::Matrix;

/// Scratch buffers for one training loop: per-layer activations and
/// per-layer gradient carriers, reused across batches and epochs.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// `acts[i]` is the dense output of layer `i` (the last entry holds
    /// the logits).
    pub(crate) acts: Vec<Matrix>,
    /// `grads[i]` carries `dL/d(acts[i])` during the backward pass.
    pub(crate) grads: Vec<Matrix>,
}

impl Workspace {
    /// An empty workspace; buffers materialise on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the per-layer buffer vectors to exactly `n_layers` entries —
    /// existing buffers keep their capacity, so reuse with the same
    /// architecture never reallocates, and `logits()` always refers to
    /// the current network's last layer.
    pub(crate) fn ensure_layers(&mut self, n_layers: usize) {
        self.acts.truncate(n_layers);
        self.grads.truncate(n_layers);
        while self.acts.len() < n_layers {
            self.acts.push(Matrix::zeros(0, 0));
        }
        while self.grads.len() < n_layers {
            self.grads.push(Matrix::zeros(0, 0));
        }
    }

    /// The logits of the most recent forward pass.
    ///
    /// # Panics
    /// Panics before any forward pass has run.
    pub fn logits(&self) -> &Matrix {
        self.acts
            .last()
            .expect("no forward pass has populated this workspace")
    }
}
