//! Optimizers.
//!
//! [`Adam`] reproduces `torch.optim.Adam` (β₁ 0.9, β₂ 0.999, ε 1e-8, the
//! paper's learning rate is 0.05); [`Sgd`] is the plain variant the SGD
//! baseline and ablations use. Both respect `requires_grad` — frozen
//! tensors are skipped entirely, matching PyTorch where frozen parameters
//! are excluded from the optimizer's work.

use std::collections::HashMap;

use crate::net::Net;

/// Common optimizer interface over a [`Net`].
pub trait Optimizer {
    /// Applies one update step from the accumulated gradients.
    fn step(&mut self, net: &mut Net);
}

/// Adam with PyTorch-default hyper-parameters.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    /// First/second-moment state per parameter name. Reset when a
    /// parameter's length changes (fresh optimizer after model surgery,
    /// as the paper's per-step training loop does).
    state: HashMap<String, (Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Adam with the given learning rate and default betas.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// The paper's optimizer: `torch.optim.Adam(model.parameters(), lr=0.05)`.
    pub fn paper_default() -> Self {
        Self::new(0.05)
    }

    /// Learning rate accessor (used by ablation benches).
    pub fn lr(&self) -> f32 {
        self.lr
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Net) {
        self.t += 1;
        let t = self.t;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        let state = &mut self.state;
        net.visit_params_mut(|name, data, grad, requires_grad| {
            if !requires_grad {
                return;
            }
            // Double lookup instead of `entry(name.to_string())`: the
            // steady-state hit path must not allocate a key String.
            if state.get(name).is_none_or(|e| e.0.len() != data.len()) {
                // First sight, or parameter resized (grown input layer):
                // fresh moments.
                state.insert(
                    name.to_string(),
                    (vec![0.0; data.len()], vec![0.0; data.len()]),
                );
            }
            let (m, v) = state.get_mut(name).expect("just inserted");
            for i in 0..data.len() {
                let g = grad[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                data[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }
}

/// Plain SGD with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<String, Vec<f32>>,
}

impl Sgd {
    /// SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Net) {
        let (lr, mu) = (self.lr, self.momentum);
        let velocity = &mut self.velocity;
        net.visit_params_mut(|name, data, grad, requires_grad| {
            if !requires_grad {
                return;
            }
            if mu == 0.0 {
                for i in 0..data.len() {
                    data[i] -= lr * grad[i];
                }
                return;
            }
            if velocity.get(name).is_none_or(|v| v.len() != data.len()) {
                velocity.insert(name.to_string(), vec![0.0; data.len()]);
            }
            let v = velocity.get_mut(name).expect("just inserted");
            for i in 0..data.len() {
                v[i] = mu * v[i] + grad[i];
                data[i] -= lr * v[i];
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropyLoss;
    use ctlm_tensor::init::seeded_rng;
    use ctlm_tensor::CsrBuilder;

    fn toy_problem() -> (ctlm_tensor::Csr, Vec<u8>) {
        // Linearly separable 3-class problem on 6 features.
        let mut b = CsrBuilder::new(6);
        let mut y = Vec::new();
        for i in 0..30 {
            let class = i % 3;
            b.push_row([(class * 2, 1.0), ((class * 2 + 1) % 6, 1.0)]);
            y.push(class as u8);
        }
        (b.finish(), y)
    }

    fn train_loss(optimizer: &mut dyn Optimizer, epochs: usize) -> (f32, f32) {
        let mut rng = seeded_rng(10);
        let mut net = Net::two_layer(6, 8, 3, &mut rng);
        let (x, y) = toy_problem();
        let loss_fn = CrossEntropyLoss::uniform(3);
        let (first, _) = loss_fn.forward(&net.forward(&x), &y);
        for _ in 0..epochs {
            net.zero_grad();
            let cache = net.forward_train(&x);
            let (_, grad) = loss_fn.forward(&cache.logits, &y);
            net.backward(&x, &cache, &grad);
            optimizer.step(&mut net);
        }
        let (last, _) = loss_fn.forward(&net.forward(&x), &y);
        (first, last)
    }

    #[test]
    fn adam_reduces_loss() {
        let mut opt = Adam::new(0.05);
        let (first, last) = train_loss(&mut opt, 30);
        assert!(last < first * 0.2, "Adam failed to learn: {first} → {last}");
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut opt = Sgd::with_momentum(0.5, 0.9);
        let (first, last) = train_loss(&mut opt, 60);
        assert!(last < first * 0.5, "SGD failed to learn: {first} → {last}");
    }

    #[test]
    fn frozen_parameters_do_not_move() {
        let mut rng = seeded_rng(11);
        let mut net = Net::two_layer(6, 4, 3, &mut rng);
        // Freeze fc2 (Listing 3 freezes everything but fc1).
        if let crate::layer::Layer::Linear(l) = &mut net.layers_mut()[1] {
            l.freeze();
        }
        let before = net.state_dict();
        let (x, y) = toy_problem();
        let loss_fn = CrossEntropyLoss::uniform(3);
        let mut opt = Adam::new(0.1);
        for _ in 0..5 {
            net.zero_grad();
            let cache = net.forward_train(&x);
            let (_, grad) = loss_fn.forward(&cache.logits, &y);
            net.backward(&x, &cache, &grad);
            opt.step(&mut net);
        }
        let after = net.state_dict();
        assert_eq!(
            before["fc2.weight"], after["fc2.weight"],
            "frozen fc2 moved"
        );
        assert_ne!(
            before["fc1.weight"], after["fc1.weight"],
            "fc1 should train"
        );
    }

    #[test]
    fn adam_state_resets_on_resize() {
        let mut rng = seeded_rng(12);
        let mut net = Net::two_layer(4, 3, 2, &mut rng);
        let mut opt = Adam::new(0.05);
        let mut b = CsrBuilder::new(4);
        b.push_row([(0, 1.0)]);
        b.push_row([(1, 1.0)]);
        let x = b.finish();
        let loss_fn = CrossEntropyLoss::uniform(2);
        for _ in 0..3 {
            net.zero_grad();
            let cache = net.forward_train(&x);
            let (_, g) = loss_fn.forward(&cache.logits, &[0, 1]);
            net.backward(&x, &cache, &g);
            opt.step(&mut net);
        }
        // Grow the input layer and keep stepping with the same optimizer —
        // must not panic, moments reset for the resized tensor.
        let grown = net.input_layer().weight.pad_cols(2);
        net.input_layer_mut().weight = grown;
        net.input_layer_mut().grad_weight = ctlm_tensor::Matrix::zeros(3, 6);
        let mut b2 = CsrBuilder::new(6);
        b2.push_row([(4, 1.0)]);
        b2.push_row([(5, 1.0)]);
        let x2 = b2.finish();
        net.zero_grad();
        let cache = net.forward_train(&x2);
        let (_, g) = loss_fn.forward(&cache.logits, &[0, 1]);
        net.backward(&x2, &cache, &g);
        opt.step(&mut net);
    }
}
