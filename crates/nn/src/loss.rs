//! Weighted cross-entropy loss.
//!
//! `torch.nn.CrossEntropyLoss(weight=class_weights)` with mean reduction:
//! softmax over logits, negative log-likelihood weighted per class, and
//! the weighted-mean convention PyTorch uses (divide by the *sum of the
//! selected samples' weights*, not the batch size). The paper sets the
//! Group 0 weight to 200 and all others to 1.

use ctlm_tensor::{ops, Matrix};

/// Cross-entropy with per-class weights.
#[derive(Clone, Debug)]
pub struct CrossEntropyLoss {
    weights: Vec<f32>,
}

impl CrossEntropyLoss {
    /// Uniform weights over `n_classes`.
    pub fn uniform(n_classes: usize) -> Self {
        Self {
            weights: vec![1.0; n_classes],
        }
    }

    /// Explicit per-class weights.
    ///
    /// # Panics
    /// Panics if any weight is non-positive.
    pub fn with_weights(weights: Vec<f32>) -> Self {
        assert!(
            weights.iter().all(|&w| w > 0.0),
            "class weights must be positive"
        );
        Self { weights }
    }

    /// The paper's weighting: `[GROUP_0_CLASS_WEIGHT] + [1] * 25`.
    pub fn group0_boosted(n_classes: usize, group0_weight: f32) -> Self {
        let mut w = vec![1.0; n_classes];
        w[0] = group0_weight;
        Self { weights: w }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Computes `(loss, grad_logits)` for a batch.
    ///
    /// # Panics
    /// Panics on shape mismatch or out-of-range targets.
    pub fn forward(&self, logits: &Matrix, targets: &[u8]) -> (f32, Matrix) {
        let mut grad = Matrix::zeros(0, 0);
        let loss = self.forward_into(logits, targets, &mut grad);
        (loss, grad)
    }

    /// [`CrossEntropyLoss::forward`] with the logit gradient written into
    /// a caller-provided buffer: the softmax runs in place on `grad`, so
    /// a warmed buffer makes the whole loss+gradient step allocation-free.
    ///
    /// # Panics
    /// Panics on shape mismatch or out-of-range targets.
    pub fn forward_into(&self, logits: &Matrix, targets: &[u8], grad: &mut Matrix) -> f32 {
        assert_eq!(logits.rows(), targets.len(), "batch size mismatch");
        assert_eq!(logits.cols(), self.weights.len(), "class count mismatch");
        grad.copy_from(logits);
        ops::softmax_rows_inplace(grad);
        let mut loss = 0.0f64;
        let mut weight_sum = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let t = t as usize;
            assert!(t < self.weights.len(), "target {t} out of range");
            let w = self.weights[t] as f64;
            let p = grad.get(i, t).max(1e-12) as f64;
            loss -= w * p.ln();
            weight_sum += w;
        }

        // grad wrt logits: w[y_i] * (softmax - onehot) / Σ w[y_i]
        let inv = 1.0 / weight_sum as f32;
        for (i, &t) in targets.iter().enumerate() {
            let w = self.weights[t as usize];
            let row = grad.row_mut(i);
            for v in row.iter_mut() {
                *v *= w * inv;
            }
            row[t as usize] -= w * inv;
        }
        (loss / weight_sum) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_loss_matches_manual_nll() {
        let loss_fn = CrossEntropyLoss::uniform(2);
        // Logits [0, 0] → p = 0.5 → loss = ln 2.
        let logits = Matrix::zeros(1, 2);
        let (l, _) = loss_fn.forward(&logits, &[0]);
        assert!((l - std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let loss_fn = CrossEntropyLoss::uniform(3);
        let logits = Matrix::from_vec(1, 3, vec![10.0, -10.0, -10.0]);
        let (l, _) = loss_fn.forward(&logits, &[0]);
        assert!(l < 1e-3);
        let (l_wrong, _) = loss_fn.forward(&logits, &[1]);
        assert!(
            l_wrong > 5.0,
            "incorrect confident prediction heavily penalised"
        );
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // Σ_c grad[i][c] = w (Σ softmax - 1) / Σw = 0 per row.
        let loss_fn = CrossEntropyLoss::group0_boosted(4, 200.0);
        let logits = Matrix::from_vec(2, 4, vec![1.0, 2.0, 0.5, -1.0, 0.0, 0.0, 3.0, 1.0]);
        let (_, g) = loss_fn.forward(&logits, &[0, 2]);
        for r in 0..2 {
            let s: f32 = g.row(r).iter().sum();
            assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn group0_weight_amplifies_group0_gradient() {
        let uniform = CrossEntropyLoss::uniform(2);
        let boosted = CrossEntropyLoss::group0_boosted(2, 200.0);
        let logits = Matrix::from_vec(2, 2, vec![0.0, 0.0, 0.0, 0.0]);
        // Batch with one sample of each class.
        let (_, gu) = uniform.forward(&logits, &[0, 1]);
        let (_, gb) = boosted.forward(&logits, &[0, 1]);
        // Relative contribution of the class-0 sample grows under boosting.
        let ratio_u = gu.get(0, 0).abs() / gu.get(1, 1).abs();
        let ratio_b = gb.get(0, 0).abs() / gb.get(1, 1).abs();
        assert!((ratio_u - 1.0).abs() < 1e-4);
        assert!((ratio_b - 200.0).abs() < 0.5, "boost ratio {ratio_b}");
    }

    #[test]
    fn weighted_mean_uses_weight_sum_denominator() {
        // PyTorch semantics: loss = Σ w_i * nll_i / Σ w_i. With all
        // samples in one class, the weight cancels exactly.
        let boosted = CrossEntropyLoss::group0_boosted(2, 200.0);
        let uniform = CrossEntropyLoss::uniform(2);
        let logits = Matrix::from_vec(2, 2, vec![0.3, -0.2, 1.0, 0.1]);
        let (lb, _) = boosted.forward(&logits, &[0, 0]);
        let (lu, _) = uniform.forward(&logits, &[0, 0]);
        assert!((lb - lu).abs() < 1e-6);
    }

    #[test]
    fn numeric_gradient_of_loss() {
        let loss_fn = CrossEntropyLoss::with_weights(vec![2.0, 1.0, 5.0]);
        let logits = Matrix::from_vec(2, 3, vec![0.5, -0.1, 0.2, 1.0, 0.0, -1.0]);
        let targets = [2u8, 0];
        let (_, g) = loss_fn.forward(&logits, &targets);
        let eps = 1e-3;
        for (r, c) in [(0usize, 0usize), (0, 2), (1, 1)] {
            let mut lp = logits.clone();
            lp.set(r, c, lp.get(r, c) + eps);
            let mut lm = logits.clone();
            lm.set(r, c, lm.get(r, c) - eps);
            let (fp, _) = loss_fn.forward(&lp, &targets);
            let (fm, _) = loss_fn.forward(&lm, &targets);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (g.get(r, c) - numeric).abs() < 1e-3,
                "grad[{r}][{c}] analytic {} vs numeric {numeric}",
                g.get(r, c)
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_weights() {
        let _ = CrossEntropyLoss::with_weights(vec![1.0, 0.0]);
    }
}
