//! Mini-batch iteration (the `train_loader` of Listing 3).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Yields shuffled index batches, reshuffling each epoch — equivalent to
/// `DataLoader(shuffle=True)`. The index order lives inside the iterator
/// and is shuffled in place, so [`BatchIter::batches`] hands out slice
/// batches without allocating per epoch.
#[derive(Clone, Debug)]
pub struct BatchIter {
    batch_size: usize,
    rng: StdRng,
    order: Vec<usize>,
}

impl BatchIter {
    /// Iterator over `n` samples in batches of `batch_size`.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            batch_size,
            rng: StdRng::seed_from_u64(seed ^ 0xBA7C_17E8),
            order: (0..n).collect(),
        }
    }

    /// One epoch's batches as borrowed slices (freshly shuffled,
    /// allocation-free) — the hot-loop form `train_step` consumes.
    pub fn batches(&mut self) -> std::slice::Chunks<'_, usize> {
        // Reset to identity before shuffling so each epoch's permutation
        // matches the original fresh-`(0..n)`-then-shuffle semantics
        // (keeping training trajectories identical to the allocating
        // implementation) without allocating.
        for (i, slot) in self.order.iter_mut().enumerate() {
            *slot = i;
        }
        self.order.shuffle(&mut self.rng);
        self.order.chunks(self.batch_size)
    }

    /// One epoch's batches as owned vectors (freshly shuffled).
    pub fn epoch(&mut self) -> Vec<Vec<usize>> {
        self.batches().map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_covers_every_index_once() {
        let mut it = BatchIter::new(25, 8, 1);
        let batches = it.epoch();
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn batch_sizes_are_respected() {
        let mut it = BatchIter::new(25, 8, 2);
        let batches = it.epoch();
        assert_eq!(batches.len(), 4);
        assert!(batches[..3].iter().all(|b| b.len() == 8));
        assert_eq!(batches[3].len(), 1);
    }

    #[test]
    fn epochs_reshuffle() {
        let mut it = BatchIter::new(100, 100, 3);
        let a = it.epoch();
        let b = it.epoch();
        assert_ne!(a, b, "consecutive epochs should differ");
    }

    #[test]
    fn empty_dataset_yields_no_batches() {
        let mut it = BatchIter::new(0, 8, 4);
        assert!(it.epoch().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_rejected() {
        let _ = BatchIter::new(10, 0, 0);
    }
}
