//! # ctlm-nn — the neural-network substrate (PyTorch stand-in)
//!
//! The paper's models need a narrow slice of PyTorch, which this crate
//! implements natively:
//!
//! * [`Linear`] layers with `(out_features × in_features)` weights and the
//!   `requires_grad` freezing semantics of Listing 1;
//! * [`Net`] — an `nn.Sequential` equivalent with named layers
//!   (`fc1`, `fc2`, …) and explicit forward/backward over sparse inputs;
//! * [`CrossEntropyLoss`] with per-class weights (the paper boosts
//!   Group 0 by 200×);
//! * [`Adam`] (lr 0.05 in the paper) and plain [`Sgd`];
//! * [`StateDict`] save/load plus the Listing-2 input-weight zero-padding;
//! * [`grad_scale`] — the Listing-3 in-place gradient-multiplier trick
//!   that trains pre-trained input columns at 10 % rate while new columns
//!   train at full rate;
//! * [`Workspace`] — reusable forward/backward buffers making the
//!   steady-state [`Net::train_batch`] step allocation-free.

pub mod batch;
pub mod grad_scale;
pub mod layer;
pub mod loss;
pub mod net;
pub mod optim;
pub mod state_dict;
pub mod workspace;

pub use batch::BatchIter;
pub use layer::{Layer, Linear};
pub use loss::CrossEntropyLoss;
pub use net::Net;
pub use optim::{Adam, Optimizer, Sgd};
pub use state_dict::{pad_input_weight, StateDict, StateDictError, TensorData};
pub use workspace::Workspace;
