//! Model state dicts and the Listing-2 padding surgery.
//!
//! The paper's growing model works by editing the state dict *before*
//! restoring it: `fc1.weight` is padded on the right with zero columns so
//! the restored model accepts the widened feature array while behaving
//! identically on the old feature prefix. This module is that code path.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// A named tensor payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TensorData {
    /// Tensor shape (row-major).
    pub shape: Vec<usize>,
    /// Flat data.
    pub data: Vec<f32>,
}

impl TensorData {
    /// Total element count implied by the shape.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }
}

/// `name → tensor` map, PyTorch `state_dict()` style.
pub type StateDict = BTreeMap<String, TensorData>;

/// Errors from loading or editing a state dict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateDictError {
    /// A required key was absent.
    MissingKey(String),
    /// A tensor's shape did not match the model.
    ShapeMismatch {
        /// Offending key.
        key: String,
        /// Shape the model expects.
        expected: Vec<usize>,
        /// Shape found in the dict.
        found: Vec<usize>,
    },
    /// Serialization failure.
    Io(String),
}

impl fmt::Display for StateDictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateDictError::MissingKey(k) => write!(f, "state dict missing key {k:?}"),
            StateDictError::ShapeMismatch {
                key,
                expected,
                found,
            } => {
                write!(
                    f,
                    "shape mismatch for {key:?}: expected {expected:?}, found {found:?}"
                )
            }
            StateDictError::Io(e) => write!(f, "state dict I/O error: {e}"),
        }
    }
}

impl std::error::Error for StateDictError {}

/// The paper's Listing 2: pads a 2-D input weight (`fc1.weight`) on the
/// right with zero columns up to `new_in_features`.
///
/// “Since the CO-VV dataset appends new values to the end of the features
/// array, initializing the new weights to zero ensures compatibility with
/// the previous dataset, where new attribute values do not exist yet.”
///
/// No-op when the width already matches (the listing's
/// `if pretrained_features_count != dataset_data.features_count` guard).
pub fn pad_input_weight(
    sd: &mut StateDict,
    key: &str,
    new_in_features: usize,
) -> Result<usize, StateDictError> {
    let tensor = sd
        .get_mut(key)
        .ok_or_else(|| StateDictError::MissingKey(key.to_string()))?;
    if tensor.shape.len() != 2 {
        return Err(StateDictError::ShapeMismatch {
            key: key.to_string(),
            expected: vec![0, 0],
            found: tensor.shape.clone(),
        });
    }
    let (rows, old_in) = (tensor.shape[0], tensor.shape[1]);
    if old_in == new_in_features {
        return Ok(old_in);
    }
    if old_in > new_in_features {
        return Err(StateDictError::ShapeMismatch {
            key: key.to_string(),
            expected: vec![rows, new_in_features],
            found: tensor.shape.clone(),
        });
    }
    let mut data = vec![0.0f32; rows * new_in_features];
    for r in 0..rows {
        data[r * new_in_features..r * new_in_features + old_in]
            .copy_from_slice(&tensor.data[r * old_in..(r + 1) * old_in]);
    }
    tensor.shape = vec![rows, new_in_features];
    tensor.data = data;
    Ok(old_in)
}

/// The inverse of [`pad_input_weight`]: keeps only the listed input
/// columns of a 2-D weight, in the given order. This is the model-side
/// half of the attribute-expiry extension the paper lists as future work
/// (“introducing a process to retire obsolete features will keep the
/// model efficient and scalable”).
pub fn select_input_columns(
    sd: &mut StateDict,
    key: &str,
    keep: &[usize],
) -> Result<(), StateDictError> {
    let tensor = sd
        .get_mut(key)
        .ok_or_else(|| StateDictError::MissingKey(key.to_string()))?;
    if tensor.shape.len() != 2 {
        return Err(StateDictError::ShapeMismatch {
            key: key.to_string(),
            expected: vec![0, 0],
            found: tensor.shape.clone(),
        });
    }
    let (rows, cols) = (tensor.shape[0], tensor.shape[1]);
    if let Some(&bad) = keep.iter().find(|&&c| c >= cols) {
        return Err(StateDictError::ShapeMismatch {
            key: key.to_string(),
            expected: vec![rows, cols],
            found: vec![rows, bad + 1],
        });
    }
    let mut data = Vec::with_capacity(rows * keep.len());
    for r in 0..rows {
        let row = &tensor.data[r * cols..(r + 1) * cols];
        for &c in keep {
            data.push(row[c]);
        }
    }
    tensor.shape = vec![rows, keep.len()];
    tensor.data = data;
    Ok(())
}

/// Saves a state dict as JSON (the reproduction's `torch.save`).
pub fn save(sd: &StateDict, path: &Path) -> Result<(), StateDictError> {
    let json = serde_json::to_vec(sd).map_err(|e| StateDictError::Io(e.to_string()))?;
    std::fs::write(path, json).map_err(|e| StateDictError::Io(e.to_string()))
}

/// Loads a state dict from JSON (the reproduction's `torch.load`).
pub fn load(path: &Path) -> Result<StateDict, StateDictError> {
    let bytes = std::fs::read(path).map_err(|e| StateDictError::Io(e.to_string()))?;
    serde_json::from_slice(&bytes).map_err(|e| StateDictError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sd() -> StateDict {
        let mut sd = StateDict::new();
        sd.insert(
            "fc1.weight".into(),
            TensorData {
                shape: vec![2, 3],
                data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            },
        );
        sd.insert(
            "fc1.bias".into(),
            TensorData {
                shape: vec![2],
                data: vec![0.1, 0.2],
            },
        );
        sd
    }

    #[test]
    fn pad_extends_with_zero_columns() {
        let mut sd = sample_sd();
        let old = pad_input_weight(&mut sd, "fc1.weight", 5).unwrap();
        assert_eq!(old, 3);
        let t = &sd["fc1.weight"];
        assert_eq!(t.shape, vec![2, 5]);
        assert_eq!(
            t.data,
            vec![1.0, 2.0, 3.0, 0.0, 0.0, 4.0, 5.0, 6.0, 0.0, 0.0]
        );
    }

    #[test]
    fn pad_same_width_is_noop() {
        let mut sd = sample_sd();
        let before = sd.clone();
        pad_input_weight(&mut sd, "fc1.weight", 3).unwrap();
        assert_eq!(sd, before);
    }

    #[test]
    fn pad_rejects_shrink() {
        let mut sd = sample_sd();
        let err = pad_input_weight(&mut sd, "fc1.weight", 2).unwrap_err();
        assert!(matches!(err, StateDictError::ShapeMismatch { .. }));
    }

    #[test]
    fn pad_rejects_missing_key() {
        let mut sd = sample_sd();
        let err = pad_input_weight(&mut sd, "fc9.weight", 10).unwrap_err();
        assert!(matches!(err, StateDictError::MissingKey(_)));
    }

    #[test]
    fn pad_rejects_non_2d() {
        let mut sd = sample_sd();
        let err = pad_input_weight(&mut sd, "fc1.bias", 10).unwrap_err();
        assert!(matches!(err, StateDictError::ShapeMismatch { .. }));
    }

    #[test]
    fn select_columns_keeps_requested_order() {
        let mut sd = sample_sd();
        select_input_columns(&mut sd, "fc1.weight", &[2, 0]).unwrap();
        let t = &sd["fc1.weight"];
        assert_eq!(t.shape, vec![2, 2]);
        assert_eq!(t.data, vec![3.0, 1.0, 6.0, 4.0]);
    }

    #[test]
    fn select_then_pad_roundtrip_on_prefix() {
        let mut sd = sample_sd();
        select_input_columns(&mut sd, "fc1.weight", &[0, 1]).unwrap();
        pad_input_weight(&mut sd, "fc1.weight", 3).unwrap();
        let t = &sd["fc1.weight"];
        assert_eq!(t.data, vec![1.0, 2.0, 0.0, 4.0, 5.0, 0.0]);
    }

    #[test]
    fn select_rejects_out_of_range_column() {
        let mut sd = sample_sd();
        assert!(select_input_columns(&mut sd, "fc1.weight", &[0, 9]).is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("ctlm_state_dict_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let sd = sample_sd();
        save(&sd, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(sd, back);
        std::fs::remove_file(&path).ok();
    }
}
