//! Linear layers and activations.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use ctlm_tensor::{init, ops, Csr, Matrix};

/// A fully-connected layer storing its weight PyTorch-style as
/// `(out_features × in_features)`, with per-tensor `requires_grad` flags —
/// the freezing mechanism of the paper's Listing 1
/// (`param.requires_grad = False`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix `(out, in)`.
    pub weight: Matrix,
    /// Bias vector, length `out`.
    pub bias: Vec<f32>,
    /// Accumulated weight gradient, same shape as `weight`.
    pub grad_weight: Matrix,
    /// Accumulated bias gradient.
    pub grad_bias: Vec<f32>,
    /// When false the optimizer skips the weight (frozen).
    pub weight_requires_grad: bool,
    /// When false the optimizer skips the bias (frozen).
    pub bias_requires_grad: bool,
}

impl Linear {
    /// A layer with PyTorch-default initialisation.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self {
            weight: init::linear_weight(out_features, in_features, rng),
            bias: init::linear_bias(out_features, in_features, rng),
            grad_weight: Matrix::zeros(out_features, in_features),
            grad_bias: vec![0.0; out_features],
            weight_requires_grad: true,
            bias_requires_grad: true,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.weight.cols()
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }

    /// `y = x Wᵀ + b` over a sparse batch.
    pub fn forward_sparse(&self, x: &Csr) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_sparse_into(x, &mut y);
        y
    }

    /// [`Linear::forward_sparse`] into a caller-provided buffer
    /// (allocation-free once the buffer has warmed up).
    pub fn forward_sparse_into(&self, x: &Csr, out: &mut Matrix) {
        ops::csr_matmul_bt_into(x, &self.weight, out);
        ops::add_bias(out, &self.bias);
    }

    /// `y = x Wᵀ + b` over a dense batch.
    pub fn forward_dense(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_dense_into(x, &mut y);
        y
    }

    /// [`Linear::forward_dense`] into a caller-provided buffer.
    pub fn forward_dense_into(&self, x: &Matrix, out: &mut Matrix) {
        ops::matmul_bt_into(x, &self.weight, out);
        ops::add_bias(out, &self.bias);
    }

    /// Accumulates gradients for a sparse input batch. Input gradients are
    /// not produced (the sparse layer is always the first layer).
    /// Allocation-free: gradients accumulate straight onto
    /// `grad_weight`/`grad_bias`.
    pub fn backward_sparse(&mut self, x: &Csr, grad_out: &Matrix) {
        if self.weight_requires_grad {
            ops::csr_grad_weight_acc(grad_out, x, &mut self.grad_weight);
        }
        if self.bias_requires_grad {
            ops::col_sums_acc(grad_out, &mut self.grad_bias);
        }
    }

    /// Accumulates gradients for a dense input batch and returns the
    /// gradient w.r.t. the input (`grad_in = grad_out · W`).
    pub fn backward_dense(&mut self, x: &Matrix, grad_out: &Matrix) -> Matrix {
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_dense_into(x, grad_out, &mut grad_in);
        grad_in
    }

    /// [`Linear::backward_dense`] with the input gradient written into a
    /// caller-provided buffer; parameter gradients accumulate in place,
    /// so the whole call is allocation-free on warmed buffers.
    pub fn backward_dense_into(&mut self, x: &Matrix, grad_out: &Matrix, grad_in: &mut Matrix) {
        if self.weight_requires_grad {
            ops::matmul_at_acc(grad_out, x, &mut self.grad_weight);
        }
        if self.bias_requires_grad {
            ops::col_sums_acc(grad_out, &mut self.grad_bias);
        }
        ops::matmul_into(grad_out, &self.weight, grad_in);
    }

    /// Zeroes accumulated gradients (`optimizer.zero_grad()`).
    pub fn zero_grad(&mut self) {
        self.grad_weight.zero();
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Freezes both tensors (Listing 1's base-layer freeze).
    pub fn freeze(&mut self) {
        self.weight_requires_grad = false;
        self.bias_requires_grad = false;
    }

    /// Unfreezes both tensors.
    pub fn unfreeze(&mut self) {
        self.weight_requires_grad = true;
        self.bias_requires_grad = true;
    }
}

/// A network layer: linear or ReLU. The paper's own model is two bare
/// linear layers (Listing 1 has no activation); the MLP baseline inserts
/// a ReLU, matching scikit-learn's `MLPClassifier` default.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected layer.
    Linear(Linear),
    /// Rectified linear unit.
    Relu,
}

impl Layer {
    /// Applies the layer forward (dense path).
    pub fn forward_dense(&self, x: &Matrix) -> Matrix {
        match self {
            Layer::Linear(l) => l.forward_dense(x),
            Layer::Relu => relu(x),
        }
    }

    /// Applies the layer forward into a caller-provided buffer.
    pub fn forward_dense_into(&self, x: &Matrix, out: &mut Matrix) {
        match self {
            Layer::Linear(l) => l.forward_dense_into(x, out),
            Layer::Relu => relu_into(x, out),
        }
    }
}

/// Element-wise ReLU.
pub fn relu(x: &Matrix) -> Matrix {
    let mut y = Matrix::zeros(0, 0);
    relu_into(x, &mut y);
    y
}

/// [`relu`] into a caller-provided buffer.
pub fn relu_into(x: &Matrix, out: &mut Matrix) {
    out.copy_from(x);
    out.as_mut_slice().iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v = 0.0;
        }
    });
}

/// Backward of ReLU: passes gradient where the forward input was > 0.
pub fn relu_backward(x: &Matrix, grad_out: &Matrix) -> Matrix {
    let mut g = Matrix::zeros(0, 0);
    relu_backward_into(x, grad_out, &mut g);
    g
}

/// [`relu_backward`] into a caller-provided buffer.
pub fn relu_backward_into(x: &Matrix, grad_out: &Matrix, out: &mut Matrix) {
    assert_eq!(x.shape(), grad_out.shape());
    out.copy_from(grad_out);
    for (gv, &xv) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        if xv <= 0.0 {
            *gv = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_tensor::init::seeded_rng;
    use ctlm_tensor::CsrBuilder;

    #[test]
    fn forward_sparse_matches_dense() {
        let mut rng = seeded_rng(1);
        let l = Linear::new(6, 3, &mut rng);
        let mut b = CsrBuilder::new(6);
        b.push_row([(0, 1.0), (4, 1.0)]);
        b.push_row([(2, 1.0)]);
        let x = b.finish();
        let ys = l.forward_sparse(&x);
        let yd = l.forward_dense(&x.to_dense());
        assert!(ys.max_abs_diff(&yd) < 1e-5);
    }

    #[test]
    fn frozen_layer_accumulates_no_gradient() {
        let mut rng = seeded_rng(2);
        let mut l = Linear::new(4, 2, &mut rng);
        l.freeze();
        let x = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        let go = Matrix::full(3, 2, 1.0);
        let _ = l.backward_dense(&x, &go);
        assert_eq!(l.grad_weight, Matrix::zeros(2, 4));
        assert!(l.grad_bias.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn backward_dense_weight_grad_matches_manual() {
        let mut rng = seeded_rng(3);
        let mut l = Linear::new(2, 1, &mut rng);
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let go = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
        let _ = l.backward_dense(&x, &go);
        // grad_W[0][j] = sum_i go[i] * x[i][j] = [1+3, 2+4]
        assert_eq!(l.grad_weight.row(0), &[4.0, 6.0]);
        assert_eq!(l.grad_bias, vec![2.0]);
    }

    #[test]
    fn backward_sparse_matches_dense_backward() {
        let mut rng = seeded_rng(4);
        let mut ls = Linear::new(5, 3, &mut rng);
        let mut ld = ls.clone();
        let mut b = CsrBuilder::new(5);
        b.push_row([(1, 1.0)]);
        b.push_row([(0, 2.0), (4, 1.0)]);
        let x = b.finish();
        let go = Matrix::from_fn(2, 3, |r, c| (r as f32 + 1.0) * (c as f32 - 1.0));
        ls.backward_sparse(&x, &go);
        let _ = ld.backward_dense(&x.to_dense(), &go);
        assert!(ls.grad_weight.max_abs_diff(&ld.grad_weight) < 1e-5);
        for (a, b) in ls.grad_bias.iter().zip(ld.grad_bias.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = seeded_rng(5);
        let mut l = Linear::new(2, 1, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let go = Matrix::from_vec(1, 1, vec![1.0]);
        let _ = l.backward_dense(&x, &go);
        let _ = l.backward_dense(&x, &go);
        assert_eq!(l.grad_weight.row(0), &[2.0, 2.0]);
        l.zero_grad();
        assert_eq!(l.grad_weight.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn relu_and_its_backward() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let y = relu(&x);
        assert_eq!(y.row(0), &[0.0, 0.0, 2.0, 0.0]);
        let go = Matrix::full(1, 4, 1.0);
        let gx = relu_backward(&x, &go);
        assert_eq!(gx.row(0), &[0.0, 0.0, 1.0, 0.0]);
    }
}
