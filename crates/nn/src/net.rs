//! The `nn.Sequential` equivalent.
//!
//! A [`Net`] is an ordered stack of [`Layer`]s whose first layer consumes
//! a sparse batch. Linear layers are named `fc1`, `fc2`, … in order, so
//! state dicts carry the exact keys the paper's listings manipulate
//! (`fc1.weight`, `fc1.bias`, `fc2.weight`, `fc2.bias`).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use ctlm_tensor::{Csr, Matrix};

use crate::layer::{relu_backward, relu_backward_into, Layer, Linear};
use crate::loss::CrossEntropyLoss;
use crate::state_dict::{StateDict, StateDictError, TensorData};
use crate::workspace::Workspace;

/// A sequential network over sparse input batches.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Net {
    layers: Vec<Layer>,
}

/// Cached activations from a training forward pass, consumed by
/// [`Net::backward`]. `inputs[i]` is the dense input to layer `i+1`
/// (layer 0's input is the sparse batch itself).
pub struct ForwardCache {
    inputs: Vec<Matrix>,
    /// The network output (logits).
    pub logits: Matrix,
}

/// Fixed-capacity formatter for `fcN.weight`/`fcN.bias` parameter names —
/// keeps [`Net::visit_params_mut`] off the heap.
#[derive(Default)]
struct ParamName {
    buf: [u8; 32],
}

impl ParamName {
    fn format(&mut self, n: usize, suffix: &str) -> &str {
        use std::io::Write as _;
        let mut cursor = &mut self.buf[..];
        write!(cursor, "fc{n}.{suffix}").expect("parameter name fits the buffer");
        let remaining = cursor.len();
        let len = self.buf.len() - remaining;
        std::str::from_utf8(&self.buf[..len]).expect("ASCII parameter name")
    }
}

impl Net {
    /// Builds the paper's model (Listing 1): two bare linear layers,
    /// `fc1: in → hidden`, `fc2: hidden → classes`, no activation.
    pub fn two_layer(in_features: usize, hidden: usize, classes: usize, rng: &mut StdRng) -> Self {
        Self {
            layers: vec![
                Layer::Linear(Linear::new(in_features, hidden, rng)),
                Layer::Linear(Linear::new(hidden, classes, rng)),
            ],
        }
    }

    /// Builds an MLP with one ReLU hidden layer (the scikit-learn
    /// `MLPClassifier` architecture used as a baseline).
    pub fn mlp(in_features: usize, hidden: usize, classes: usize, rng: &mut StdRng) -> Self {
        Self {
            layers: vec![
                Layer::Linear(Linear::new(in_features, hidden, rng)),
                Layer::Relu,
                Layer::Linear(Linear::new(hidden, classes, rng)),
            ],
        }
    }

    /// Builds from an explicit layer stack.
    ///
    /// # Panics
    /// Panics unless the first layer is linear.
    pub fn from_layers(layers: Vec<Layer>) -> Self {
        assert!(
            matches!(layers.first(), Some(Layer::Linear(_))),
            "first layer must be linear (it consumes the sparse batch)"
        );
        Self { layers }
    }

    /// The layer stack (read-only).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (freezing, ablation surgery).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Input feature width of the network.
    pub fn in_features(&self) -> usize {
        match &self.layers[0] {
            Layer::Linear(l) => l.in_features(),
            Layer::Relu => unreachable!("first layer is linear by construction"),
        }
    }

    /// Output width (class count).
    pub fn out_features(&self) -> usize {
        self.layers
            .iter()
            .rev()
            .find_map(|l| match l {
                Layer::Linear(lin) => Some(lin.out_features()),
                Layer::Relu => None,
            })
            .expect("network has at least one linear layer")
    }

    /// The first linear layer — the paper's `fc1`, target of all the
    /// growing-model surgery.
    pub fn input_layer_mut(&mut self) -> &mut Linear {
        match &mut self.layers[0] {
            Layer::Linear(l) => l,
            Layer::Relu => unreachable!("first layer is linear by construction"),
        }
    }

    /// Immutable access to `fc1`.
    pub fn input_layer(&self) -> &Linear {
        match &self.layers[0] {
            Layer::Linear(l) => l,
            Layer::Relu => unreachable!("first layer is linear by construction"),
        }
    }

    /// Inference forward pass.
    pub fn forward(&self, x: &Csr) -> Matrix {
        let mut h = match &self.layers[0] {
            Layer::Linear(l) => l.forward_sparse(x),
            Layer::Relu => unreachable!(),
        };
        for layer in &self.layers[1..] {
            h = layer.forward_dense(&h);
        }
        h
    }

    /// Predicted class per row.
    pub fn predict(&self, x: &Csr) -> Vec<u8> {
        self.forward(x)
            .argmax_rows()
            .into_iter()
            .map(|c| c as u8)
            .collect()
    }

    /// Training forward pass, caching the activations backward needs.
    ///
    /// Allocating convenience wrapper around the [`Workspace`] path —
    /// training loops should prefer [`Net::train_batch`], which reuses
    /// buffers across batches.
    pub fn forward_train(&self, x: &Csr) -> ForwardCache {
        let mut inputs = Vec::with_capacity(self.layers.len().saturating_sub(1));
        let mut h = match &self.layers[0] {
            Layer::Linear(l) => l.forward_sparse(x),
            Layer::Relu => unreachable!(),
        };
        for layer in &self.layers[1..] {
            let next = layer.forward_dense(&h);
            inputs.push(std::mem::replace(&mut h, next));
        }
        ForwardCache { inputs, logits: h }
    }

    /// Backpropagates `grad_logits`, accumulating parameter gradients.
    pub fn backward(&mut self, x: &Csr, cache: &ForwardCache, grad_logits: &Matrix) {
        let mut grad = grad_logits.clone();
        // Walk layers in reverse; layer i>0 reads cache.inputs[i-1].
        for i in (1..self.layers.len()).rev() {
            let input = &cache.inputs[i - 1];
            grad = match &mut self.layers[i] {
                Layer::Linear(l) => l.backward_dense(input, &grad),
                Layer::Relu => relu_backward(input, &grad),
            };
        }
        match &mut self.layers[0] {
            Layer::Linear(l) => l.backward_sparse(x, &grad),
            Layer::Relu => unreachable!(),
        }
    }

    /// Training forward pass into workspace buffers: `ws.acts[i]` receives
    /// layer `i`'s output, `ws.logits()` the final logits. No allocation
    /// once the workspace has warmed up to the batch shape.
    pub fn forward_train_ws(&self, x: &Csr, ws: &mut Workspace) {
        ws.ensure_layers(self.layers.len());
        match &self.layers[0] {
            Layer::Linear(l) => l.forward_sparse_into(x, &mut ws.acts[0]),
            Layer::Relu => unreachable!("first layer is linear by construction"),
        }
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            let (prev, rest) = ws.acts.split_at_mut(i);
            layer.forward_dense_into(&prev[i - 1], &mut rest[0]);
        }
    }

    /// Backward pass over workspace buffers. Expects `ws.grads` for the
    /// last layer to hold `dL/dlogits` (as written by
    /// [`CrossEntropyLoss::forward_into`]); parameter gradients accumulate
    /// in place and intermediate gradients reuse `ws.grads`.
    pub fn backward_ws(&mut self, x: &Csr, ws: &mut Workspace) {
        for i in (1..self.layers.len()).rev() {
            let input = &ws.acts[i - 1];
            let (before, after) = ws.grads.split_at_mut(i);
            let grad_out = &after[0];
            let grad_in = &mut before[i - 1];
            match &mut self.layers[i] {
                Layer::Linear(l) => l.backward_dense_into(input, grad_out, grad_in),
                Layer::Relu => relu_backward_into(input, grad_out, grad_in),
            }
        }
        match &mut self.layers[0] {
            Layer::Linear(l) => l.backward_sparse(x, &ws.grads[0]),
            Layer::Relu => unreachable!("first layer is linear by construction"),
        }
    }

    /// One full training step on a mini-batch — `zero_grad`, forward,
    /// weighted cross-entropy, backward — returning the batch loss.
    /// Steady-state calls perform zero heap allocations (see
    /// [`Workspace`]); the caller applies gradient scaling and the
    /// optimizer step.
    pub fn train_batch(
        &mut self,
        x: &Csr,
        targets: &[u8],
        loss_fn: &CrossEntropyLoss,
        ws: &mut Workspace,
    ) -> f32 {
        self.zero_grad();
        self.forward_train_ws(x, ws);
        let last = self.layers.len() - 1;
        let loss = loss_fn.forward_into(&ws.acts[last], targets, &mut ws.grads[last]);
        self.backward_ws(x, ws);
        loss
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            if let Layer::Linear(l) = layer {
                l.zero_grad();
            }
        }
    }

    /// Visits every parameter tensor as `(name, data, grad, requires_grad)`.
    /// Names follow the PyTorch convention of the listings: `fcN.weight`,
    /// `fcN.bias` with N counting linear layers from 1. Names are
    /// formatted into a stack buffer, so visiting allocates nothing —
    /// optimizers run this on every step.
    pub fn visit_params_mut(&mut self, mut f: impl FnMut(&str, &mut [f32], &[f32], bool)) {
        let mut name = ParamName::default();
        let mut n = 0;
        for layer in &mut self.layers {
            if let Layer::Linear(l) = layer {
                n += 1;
                f(
                    name.format(n, "weight"),
                    l.weight.as_mut_slice(),
                    l.grad_weight.as_slice(),
                    l.weight_requires_grad,
                );
                f(
                    name.format(n, "bias"),
                    &mut l.bias,
                    &l.grad_bias,
                    l.bias_requires_grad,
                );
            }
        }
    }

    /// Extracts the model's state dict (PyTorch `model.state_dict()`).
    pub fn state_dict(&self) -> StateDict {
        let mut sd = StateDict::new();
        let mut n = 0;
        for layer in &self.layers {
            if let Layer::Linear(l) = layer {
                n += 1;
                sd.insert(
                    format!("fc{n}.weight"),
                    TensorData {
                        shape: vec![l.weight.rows(), l.weight.cols()],
                        data: l.weight.as_slice().to_vec(),
                    },
                );
                sd.insert(
                    format!("fc{n}.bias"),
                    TensorData {
                        shape: vec![l.bias.len()],
                        data: l.bias.clone(),
                    },
                );
            }
        }
        sd
    }

    /// Restores parameters from a state dict (PyTorch
    /// `model.load_state_dict()`): strict shape checking, all keys
    /// required.
    pub fn load_state_dict(&mut self, sd: &StateDict) -> Result<(), StateDictError> {
        let mut n = 0;
        for layer in &mut self.layers {
            if let Layer::Linear(l) = layer {
                n += 1;
                let wname = format!("fc{n}.weight");
                let bname = format!("fc{n}.bias");
                let w = sd
                    .get(&wname)
                    .ok_or_else(|| StateDictError::MissingKey(wname.clone()))?;
                let expect = vec![l.weight.rows(), l.weight.cols()];
                if w.shape != expect {
                    return Err(StateDictError::ShapeMismatch {
                        key: wname,
                        expected: expect,
                        found: w.shape.clone(),
                    });
                }
                // Shapes verified equal: copy straight into the existing
                // storage instead of cloning the tensor data into a fresh
                // vector and dropping the old one.
                l.weight.as_mut_slice().copy_from_slice(&w.data);
                let b = sd
                    .get(&bname)
                    .ok_or_else(|| StateDictError::MissingKey(bname.clone()))?;
                if b.shape != vec![l.bias.len()] {
                    return Err(StateDictError::ShapeMismatch {
                        key: bname,
                        expected: vec![l.bias.len()],
                        found: b.shape.clone(),
                    });
                }
                l.bias.copy_from_slice(&b.data);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropyLoss;
    use ctlm_tensor::init::seeded_rng;
    use ctlm_tensor::CsrBuilder;

    fn toy_batch(d: usize) -> (Csr, Vec<u8>) {
        let mut b = CsrBuilder::new(d);
        b.push_row([(0, 1.0), (2, 1.0)]);
        b.push_row([(1, 1.0)]);
        b.push_row([(3, 1.0), (4, 1.0)]);
        (b.finish(), vec![0, 1, 2])
    }

    #[test]
    fn two_layer_shapes() {
        let mut rng = seeded_rng(1);
        let net = Net::two_layer(10, 30, 26, &mut rng);
        assert_eq!(net.in_features(), 10);
        assert_eq!(net.out_features(), 26);
        let (x, _) = toy_batch(10);
        let y = net.forward(&x);
        assert_eq!(y.shape(), (3, 26));
    }

    #[test]
    fn state_dict_roundtrip() {
        let mut rng = seeded_rng(2);
        let net = Net::two_layer(8, 5, 3, &mut rng);
        let sd = net.state_dict();
        assert!(sd.contains_key("fc1.weight"));
        assert!(sd.contains_key("fc2.bias"));
        let mut net2 = Net::two_layer(8, 5, 3, &mut seeded_rng(99));
        net2.load_state_dict(&sd).unwrap();
        let (x, _) = toy_batch(8);
        assert!(net.forward(&x).max_abs_diff(&net2.forward(&x)) < 1e-6);
    }

    #[test]
    fn load_state_dict_rejects_shape_mismatch() {
        let mut rng = seeded_rng(3);
        let net = Net::two_layer(8, 5, 3, &mut rng);
        let sd = net.state_dict();
        let mut bigger = Net::two_layer(9, 5, 3, &mut rng);
        let err = bigger.load_state_dict(&sd).unwrap_err();
        assert!(matches!(err, StateDictError::ShapeMismatch { .. }));
    }

    /// Finite-difference gradient check on the full two-layer network,
    /// weighted loss included — validates the entire backward path.
    #[test]
    fn numeric_gradient_check() {
        let mut rng = seeded_rng(4);
        let mut net = Net::two_layer(5, 4, 3, &mut rng);
        let (x, y) = toy_batch(5);
        let loss_fn = CrossEntropyLoss::with_weights(vec![3.0, 1.0, 1.0]);

        // Analytic gradients.
        net.zero_grad();
        let cache = net.forward_train(&x);
        let (_, grad_logits) = loss_fn.forward(&cache.logits, &y);
        net.backward(&x, &cache, &grad_logits);

        let eps = 1e-3f32;
        // Check a sample of fc1.weight entries numerically.
        for (r, c) in [(0usize, 0usize), (1, 2), (3, 4)] {
            let analytic = net.input_layer().grad_weight.get(r, c);
            let orig = net.input_layer().weight.get(r, c);
            net.input_layer_mut().weight.set(r, c, orig + eps);
            let (lp, _) = loss_fn.forward(&net.forward(&x), &y);
            net.input_layer_mut().weight.set(r, c, orig - eps);
            let (lm, _) = loss_fn.forward(&net.forward(&x), &y);
            net.input_layer_mut().weight.set(r, c, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2_f32.max(0.05 * numeric.abs()),
                "fc1.weight[{r}][{c}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn mlp_gradient_check_through_relu() {
        let mut rng = seeded_rng(5);
        let mut net = Net::mlp(5, 6, 3, &mut rng);
        let (x, y) = toy_batch(5);
        let loss_fn = CrossEntropyLoss::uniform(3);
        net.zero_grad();
        let cache = net.forward_train(&x);
        let (_, grad_logits) = loss_fn.forward(&cache.logits, &y);
        net.backward(&x, &cache, &grad_logits);
        let eps = 1e-3f32;
        // Check one entry of the *second* linear layer (fc2).
        let (r, c) = (1usize, 3usize);
        let analytic = match &net.layers()[2] {
            Layer::Linear(l) => l.grad_weight.get(r, c),
            _ => unreachable!(),
        };
        let get_set = |net: &mut Net, v: Option<f32>| -> f32 {
            match &mut net.layers[2] {
                Layer::Linear(l) => {
                    let old = l.weight.get(r, c);
                    if let Some(v) = v {
                        l.weight.set(r, c, v);
                    }
                    old
                }
                _ => unreachable!(),
            }
        };
        let orig = get_set(&mut net, None);
        get_set(&mut net, Some(orig + eps));
        let (lp, _) = loss_fn.forward(&net.forward(&x), &y);
        get_set(&mut net, Some(orig - eps));
        let (lm, _) = loss_fn.forward(&net.forward(&x), &y);
        get_set(&mut net, Some(orig));
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 2e-2_f32.max(0.05 * numeric.abs()),
            "fc2.weight[{r}][{c}]: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn visit_params_yields_pytorch_names() {
        let mut rng = seeded_rng(6);
        let mut net = Net::two_layer(4, 3, 2, &mut rng);
        let mut names = Vec::new();
        net.visit_params_mut(|name, _, _, _| names.push(name.to_string()));
        assert_eq!(
            names,
            vec!["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]
        );
    }

    #[test]
    fn predict_returns_argmax() {
        let mut rng = seeded_rng(7);
        let net = Net::two_layer(5, 4, 3, &mut rng);
        let (x, _) = toy_batch(5);
        let logits = net.forward(&x);
        let pred = net.predict(&x);
        for (i, &p) in pred.iter().enumerate() {
            assert_eq!(p as usize, logits.argmax_rows()[i]);
        }
    }

    #[test]
    #[should_panic(expected = "first layer must be linear")]
    fn from_layers_rejects_relu_first() {
        let _ = Net::from_layers(vec![Layer::Relu]);
    }
}
