//! The Listing-3 gradient-multiplier mechanism.
//!
//! After backpropagation, the growing model multiplies the gradient of the
//! *pre-trained* `fc1.weight` columns by `PRETRAINED_GRADIENT_RATE` (0.1
//! in the paper) while the freshly padded columns keep their full
//! gradient:
//!
//! ```text
//! multiplier = [0.1, 0.1, …, 0.1,   1, 1, …, 1]
//!               └ pretrained cols ┘ └ new cols ┘
//! param.grad.mul_(multiplier)   # in-place, per row
//! ```
//!
//! “A scaling factor above 20–30 % negated training effects, while zeroing
//! gradients for pre-trained weights reduced model accuracy” — the
//! ablation bench sweeps this rate to reproduce that observation.

use crate::layer::Linear;

/// The per-column multiplier tensor of Listing 3, built once and applied
/// in place each step (mirroring the paper's device-resident
/// `multiplier_tensor` with `requires_grad=False`).
#[derive(Clone, Debug)]
pub struct ColumnGradScale {
    multiplier: Vec<f32>,
}

impl ColumnGradScale {
    /// `[rate; pretrained_cols] ++ [1.0; total_cols - pretrained_cols]`.
    ///
    /// # Panics
    /// Panics if `pretrained_cols > total_cols`.
    pub fn new(pretrained_cols: usize, total_cols: usize, rate: f32) -> Self {
        assert!(
            pretrained_cols <= total_cols,
            "pretrained boundary beyond width"
        );
        let mut multiplier = vec![rate; pretrained_cols];
        multiplier.resize(total_cols, 1.0);
        Self { multiplier }
    }

    /// The raw multiplier vector.
    pub fn multiplier(&self) -> &[f32] {
        &self.multiplier
    }

    /// Applies the multiplier to a layer's accumulated weight gradient,
    /// row by row — the in-place `param_grad.mul_(multiplier_tensor)` of
    /// Listing 3.
    ///
    /// # Panics
    /// Panics if the layer width does not match the multiplier length.
    pub fn apply(&self, layer: &mut Linear) {
        assert_eq!(
            layer.in_features(),
            self.multiplier.len(),
            "multiplier width must match fc1 input width"
        );
        let cols = self.multiplier.len();
        let g = layer.grad_weight.as_mut_slice();
        for row in g.chunks_mut(cols) {
            for (v, &m) in row.iter_mut().zip(self.multiplier.iter()) {
                *v *= m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_tensor::init::seeded_rng;
    use ctlm_tensor::Matrix;

    #[test]
    fn multiplier_layout_matches_listing3() {
        let s = ColumnGradScale::new(3, 5, 0.1);
        assert_eq!(s.multiplier(), &[0.1, 0.1, 0.1, 1.0, 1.0]);
    }

    #[test]
    fn apply_scales_only_pretrained_columns() {
        let mut rng = seeded_rng(1);
        let mut l = crate::layer::Linear::new(4, 2, &mut rng);
        l.grad_weight = Matrix::full(2, 4, 10.0);
        ColumnGradScale::new(2, 4, 0.1).apply(&mut l);
        assert_eq!(l.grad_weight.row(0), &[1.0, 1.0, 10.0, 10.0]);
        assert_eq!(l.grad_weight.row(1), &[1.0, 1.0, 10.0, 10.0]);
    }

    #[test]
    fn zero_pretrained_boundary_is_identity() {
        let mut rng = seeded_rng(2);
        let mut l = crate::layer::Linear::new(3, 1, &mut rng);
        l.grad_weight = Matrix::full(1, 3, 2.0);
        ColumnGradScale::new(0, 3, 0.1).apply(&mut l);
        assert_eq!(l.grad_weight.row(0), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn full_boundary_scales_everything() {
        let mut rng = seeded_rng(3);
        let mut l = crate::layer::Linear::new(3, 1, &mut rng);
        l.grad_weight = Matrix::full(1, 3, 2.0);
        ColumnGradScale::new(3, 3, 0.5).apply(&mut l);
        assert_eq!(l.grad_weight.row(0), &[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "beyond width")]
    fn rejects_bad_boundary() {
        let _ = ColumnGradScale::new(6, 5, 0.1);
    }

    #[test]
    #[should_panic(expected = "must match fc1 input width")]
    fn rejects_mismatched_layer() {
        let mut rng = seeded_rng(4);
        let mut l = crate::layer::Linear::new(4, 2, &mut rng);
        ColumnGradScale::new(2, 5, 0.1).apply(&mut l);
    }
}
