//! Property tests over the trace generator: structural invariants that
//! must hold for any cell, scale and seed.

use proptest::prelude::*;

use ctlm_trace::{CellSet, EventPayload, Scale, TraceGenerator};

fn arb_cell() -> impl Strategy<Value = CellSet> {
    prop_oneof![
        Just(CellSet::C2011),
        Just(CellSet::C2019a),
        Just(CellSet::C2019c),
        Just(CellSet::C2019d),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Events are time-sorted; every task submit precedes its
    /// termination; every collection finishes exactly once.
    #[test]
    fn stream_is_well_formed(
        cell in arb_cell(),
        machines in 40usize..120,
        collections in 30usize..150,
        seed in 0u64..1_000,
    ) {
        let t = TraceGenerator::generate_cell(cell, Scale { machines, collections, seed });
        prop_assert!(t.events.windows(2).all(|w| w[0].time <= w[1].time));

        let mut submit: std::collections::HashMap<u64, u64> = Default::default();
        let mut finished: std::collections::HashSet<u64> = Default::default();
        for ev in &t.events {
            match &ev.payload {
                EventPayload::TaskSubmit(task) => {
                    prop_assert!(submit.insert(task.id, ev.time).is_none(), "duplicate submit");
                    prop_assert!(task.cpu > 0.0 && task.cpu <= 1.0);
                    prop_assert!(task.memory > 0.0 && task.memory <= 1.0);
                }
                EventPayload::TaskTerminate { task, .. } => {
                    let sub = submit.get(task);
                    prop_assert!(sub.is_some(), "termination for unknown task {task}");
                    prop_assert!(ev.time >= *sub.unwrap(), "terminate before submit");
                }
                EventPayload::CollectionFinish(id) => {
                    prop_assert!(finished.insert(*id), "collection {id} finished twice");
                }
                _ => {}
            }
        }
        prop_assert_eq!(t.total_tasks, submit.len());
    }

    /// The trace horizon bounds every event, and counts are consistent.
    #[test]
    fn horizon_and_counts(
        cell in arb_cell(),
        seed in 0u64..1_000,
    ) {
        let t = TraceGenerator::generate_cell(
            cell,
            Scale { machines: 60, collections: 60, seed },
        );
        prop_assert!(t.events.iter().all(|e| e.time < t.horizon));
        prop_assert!(t.constrained_tasks <= t.total_tasks);
        prop_assert!(t.group_width >= 1);
        // 2011 traces never carry anomalies.
        if cell == CellSet::C2011 {
            prop_assert!(t.anomalies.injected.is_empty());
        }
    }

    /// Constraint operators respect the trace format: the 2019-only
    /// operators never appear in a 2011 trace.
    #[test]
    fn format_discipline(seed in 0u64..1_000) {
        let t = TraceGenerator::generate_cell(
            CellSet::C2011,
            Scale { machines: 60, collections: 80, seed },
        );
        for ev in &t.events {
            if let EventPayload::TaskSubmit(task) = &ev.payload {
                for c in &task.constraints {
                    prop_assert!(!c.op.is_2019_only(), "2019 op in 2011 trace: {:?}", c.op);
                }
            }
        }
    }
}
