//! Cluster machines (GCD "machine records").

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::attr::{AttrId, AttrValue};
use crate::constraint::TaskConstraint;

/// Machine identifier, unique within a cell trace.
pub type MachineId = u64;

/// A cluster machine: capacities plus an attribute map.
///
/// Capacities follow the 2019 traces' normalised convention (Borg reports
/// abstract compute units scaled to the largest machine), so `cpu` and
/// `memory` are fractions of the largest machine in the cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Unique machine id.
    pub id: MachineId,
    /// Normalised CPU capacity (0, 1].
    pub cpu: f64,
    /// Normalised memory capacity (0, 1].
    pub memory: f64,
    /// The node attribute map that constraint operators test against.
    pub attributes: BTreeMap<AttrId, AttrValue>,
}

impl Machine {
    /// A machine with given capacities and no attributes.
    pub fn new(id: MachineId, cpu: f64, memory: f64) -> Self {
        Self {
            id,
            cpu,
            memory,
            attributes: BTreeMap::new(),
        }
    }

    /// Value of one attribute, if set.
    pub fn attr(&self, id: AttrId) -> Option<&AttrValue> {
        self.attributes.get(&id)
    }

    /// Sets (or replaces) an attribute value. Returns the previous value.
    pub fn set_attr(&mut self, id: AttrId, value: AttrValue) -> Option<AttrValue> {
        self.attributes.insert(id, value)
    }

    /// Removes an attribute. Returns the removed value.
    pub fn remove_attr(&mut self, id: AttrId) -> Option<AttrValue> {
        self.attributes.remove(&id)
    }

    /// True when this machine satisfies *every* constraint in the slice —
    /// the node-suitability predicate at the heart of the paper.
    pub fn satisfies_all(&self, constraints: &[TaskConstraint]) -> bool {
        constraints.iter().all(|c| c.op.matches(self.attr(c.attr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintOp;

    fn machine_with(attrs: &[(AttrId, AttrValue)]) -> Machine {
        let mut m = Machine::new(1, 0.5, 0.5);
        for (id, v) in attrs {
            m.set_attr(*id, v.clone());
        }
        m
    }

    #[test]
    fn satisfies_all_requires_every_constraint() {
        let m = machine_with(&[(0, AttrValue::Int(3)), (1, AttrValue::from("ssd"))]);
        let ok = vec![
            TaskConstraint::new(0, ConstraintOp::GreaterThan(2)),
            TaskConstraint::new(1, ConstraintOp::Equal(Some(AttrValue::from("ssd")))),
        ];
        assert!(m.satisfies_all(&ok));
        let bad = vec![
            TaskConstraint::new(0, ConstraintOp::GreaterThan(2)),
            TaskConstraint::new(1, ConstraintOp::NotPresent),
        ];
        assert!(!m.satisfies_all(&bad));
    }

    #[test]
    fn empty_constraint_list_always_satisfied() {
        let m = Machine::new(7, 1.0, 1.0);
        assert!(m.satisfies_all(&[]));
    }

    #[test]
    fn attribute_updates_change_matching() {
        let mut m = machine_with(&[(0, AttrValue::Int(1))]);
        let c = vec![TaskConstraint::new(
            0,
            ConstraintOp::Equal(Some(AttrValue::Int(2))),
        )];
        assert!(!m.satisfies_all(&c));
        m.set_attr(0, AttrValue::Int(2));
        assert!(m.satisfies_all(&c));
        m.remove_attr(0);
        assert!(!m.satisfies_all(&c));
    }
}
