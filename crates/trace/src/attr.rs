//! Node attributes.
//!
//! GCD machines carry an opaque attribute map (obfuscated key/value pairs).
//! Constraint operators reference those attributes, and the CO-VV encoding
//! enumerates every *value* an attribute has ever taken — so attribute
//! identity and value identity are the core currencies of the whole system.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of an attribute name in the [`AttrCatalog`].
pub type AttrId = u32;

/// A single attribute value. GCD constraint operators support integer and
/// string values only (the paper notes “the GCD traces support only integer
/// numbers in constraint operators”), so those are the two variants.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttrValue {
    /// Numeric attribute value.
    Int(i64),
    /// Non-numeric (string) attribute value.
    Str(String),
}

impl AttrValue {
    /// Numeric view; `None` for strings.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            AttrValue::Str(_) => None,
        }
    }

    /// True for the numeric variant.
    pub fn is_numeric(&self) -> bool {
        matches!(self, AttrValue::Int(_))
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

/// Registry of attribute names, mapping between human-readable names and
/// dense [`AttrId`]s. Append-only: ids are stable for the lifetime of a
/// trace, which the dataset encodings rely on.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AttrCatalog {
    names: Vec<String>,
    by_name: BTreeMap<String, AttrId>,
}

impl AttrCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, registering it if new.
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as AttrId;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing attribute id.
    pub fn get(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// The name for an id.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn name(&self, id: AttrId) -> &str {
        &self.names[id as usize]
    }

    /// Number of registered attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no attribute has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as AttrId, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut c = AttrCatalog::new();
        let a = c.intern("platform");
        let b = c.intern("platform");
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut c = AttrCatalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        assert_eq!((a, b), (0, 1));
        assert_eq!(c.name(0), "a");
        assert_eq!(c.name(1), "b");
        assert_eq!(c.get("b"), Some(1));
        assert_eq!(c.get("zzz"), None);
    }

    #[test]
    fn attr_value_numeric_helpers() {
        assert_eq!(AttrValue::Int(5).as_int(), Some(5));
        assert_eq!(AttrValue::from("x").as_int(), None);
        assert!(AttrValue::Int(0).is_numeric());
        assert!(!AttrValue::from("x").is_numeric());
    }

    #[test]
    fn display_formats_like_the_paper_tables() {
        assert_eq!(AttrValue::Int(3).to_string(), "3");
        assert_eq!(AttrValue::from("c").to_string(), "'c'");
    }
}
