//! Trace anomalies.
//!
//! §III of the paper reports that the clusterdata-2019 traces contain
//! “(i) inaccurate event timings, where task updates occurred before
//! terminations (e.g., eviction, failure, completion), and (ii) tasks
//! missing eviction or failure events, complicating task removal”, and
//! that AGOCS had to be modified to auto-correct them. The generator
//! injects both classes at the profile's configured rates, and records
//! what it injected so tests can verify the corrector heals exactly the
//! injected set.

use serde::{Deserialize, Serialize};

use crate::task::TaskId;

/// The two anomaly classes of §III.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// A `TaskUpdate` carries a timestamp earlier than the task's
    /// submission — the "inaccurate event timings" class. The corrector
    /// must offset the update to just after creation.
    MistimedUpdate,
    /// The task's termination event is absent from the stream. The
    /// corrector must delete the task marker when its owning collection
    /// finishes.
    MissingTermination,
}

/// A record of one injected anomaly.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedAnomaly {
    /// The affected task.
    pub task: TaskId,
    /// Which anomaly class was injected.
    pub kind: AnomalyKind,
}

/// The generator's anomaly ledger, consumed by corrector tests.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyLog {
    /// Every injected anomaly, in injection order.
    pub injected: Vec<InjectedAnomaly>,
}

impl AnomalyLog {
    /// Records one anomaly.
    pub fn record(&mut self, task: TaskId, kind: AnomalyKind) {
        self.injected.push(InjectedAnomaly { task, kind });
    }

    /// Number of injected anomalies of a given kind.
    pub fn count(&self, kind: AnomalyKind) -> usize {
        self.injected.iter().filter(|a| a.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_counts_by_kind() {
        let mut log = AnomalyLog::default();
        log.record(1, AnomalyKind::MistimedUpdate);
        log.record(2, AnomalyKind::MissingTermination);
        log.record(3, AnomalyKind::MistimedUpdate);
        assert_eq!(log.count(AnomalyKind::MistimedUpdate), 2);
        assert_eq!(log.count(AnomalyKind::MissingTermination), 1);
    }
}
