//! Tasks (GCD "task records").

use serde::{Deserialize, Serialize};

use crate::collection::CollectionId;
use crate::constraint::TaskConstraint;

/// Task identifier, unique within a cell trace.
pub type TaskId = u64;

/// A schedulable task. Resource requests are normalised to the largest
/// machine, GCD-style.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique task id.
    pub id: TaskId,
    /// Owning collection (job).
    pub collection: CollectionId,
    /// Normalised CPU request.
    pub cpu: f64,
    /// Normalised memory request.
    pub memory: f64,
    /// Scheduling priority (higher wins), mirroring GCD priority bands.
    pub priority: u8,
    /// Node-affinity constraints; empty for unconstrained tasks.
    pub constraints: Vec<TaskConstraint>,
}

impl Task {
    /// True when the task carries at least one constraint operator —
    /// the population Table IX measures.
    pub fn has_constraints(&self) -> bool {
        !self.constraints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintOp;

    #[test]
    fn has_constraints_reflects_vector() {
        let mut t = Task {
            id: 1,
            collection: 2,
            cpu: 0.1,
            memory: 0.1,
            priority: 0,
            constraints: vec![],
        };
        assert!(!t.has_constraints());
        t.constraints
            .push(TaskConstraint::new(0, ConstraintOp::Present));
        assert!(t.has_constraints());
    }
}
