//! Heavy-tailed samplers.
//!
//! “Task resource consumption exhibited heavy-tailed Pareto distributions,
//! with the top 1 % of tasks consuming over 99 % of total resources” (§V,
//! citing Borg: the Next Generation). We implement a bounded Pareto for
//! resource requests and a Zipf sampler for attribute-value popularity,
//! rather than pulling in `rand_distr`, to keep the dependency set to the
//! approved list.

use rand::Rng;

/// Bounded Pareto distribution on `[lo, hi]` with shape `alpha`.
///
/// Inverse-CDF sampling of the truncated Pareto; small `alpha` (≤ 1) gives
/// the extreme heavy tail the Borg paper describes.
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "require 0 < lo < hi");
        assert!(alpha > 0.0, "require alpha > 0");
        Self { lo, hi, alpha }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inverse CDF of the bounded Pareto.
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.clamp(self.lo, self.hi)
    }
}

/// Exponential distribution with the given mean — the memoryless
/// inter-arrival process (Poisson arrivals). Used by the experiment
/// harness's synthetic workloads alongside [`BoundedPareto`].
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics unless `mean > 0`.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "require mean > 0");
        Self { mean }
    }

    /// Draws one sample via inverse-CDF; always strictly positive.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen_range(1e-12..1.0);
        -u.ln() * self.mean
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Used for attribute-value popularity: a few platform/kernel values
/// dominate the cell while a long tail of rare values exists — which is
/// what makes Group 0 (single-suitable-node) tasks possible.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there are no ranks (never; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_samples_stay_in_bounds() {
        let d = BoundedPareto::new(0.001, 1.0, 0.7);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((0.001..=1.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // With alpha 0.6 the top 1% of samples should hold a large share of
        // the total mass — the Borg-paper property the trace must exhibit.
        let d = BoundedPareto::new(0.0001, 1.0, 0.6);
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = xs.iter().sum();
        let top1: f64 = xs[..xs.len() / 100].iter().sum();
        assert!(
            top1 / total > 0.5,
            "top 1% held only {:.1}%",
            100.0 * top1 / total
        );
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(250.0);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 250.0).abs() < 10.0, "sample mean {mean}");
    }

    #[test]
    #[should_panic(expected = "mean > 0")]
    fn exponential_rejects_zero_mean() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
    }

    #[test]
    fn zipf_covers_all_ranks_eventually() {
        let z = Zipf::new(5, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn pareto_rejects_bad_bounds() {
        let _ = BoundedPareto::new(1.0, 0.5, 1.0);
    }
}
