//! Per-cell calibration profiles and the scale knob.
//!
//! The paper evaluates four computing cells: clusterdata-2011 and cells
//! A, C, D of clusterdata-2019. Each [`CellProfile`] encodes the published
//! facts about that cell — size, trace format, horizon, the Table IX
//! constrained-task ratios, Group-0 prevalence — so that the synthetic
//! generator reproduces the paper's workload statistics per cell.
//!
//! [`Scale`] shrinks a profile to laptop/CI size while preserving all the
//! *ratios* (group widths, CO shares, vocabulary-growth proportions).

use serde::{Deserialize, Serialize};

/// The four evaluated cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellSet {
    /// clusterdata-2011 (single cell, 12.5k machines, 4 constraint ops).
    C2011,
    /// clusterdata-2019 cell A (9.4k machines — the small cell; the paper
    /// groups its tasks every 360 nodes instead of 500).
    C2019a,
    /// clusterdata-2019 cell C (12.6k machines).
    C2019c,
    /// clusterdata-2019 cell D (12.1k machines).
    C2019d,
}

impl CellSet {
    /// All four cells in paper order.
    pub fn all() -> [CellSet; 4] {
        [
            CellSet::C2011,
            CellSet::C2019a,
            CellSet::C2019c,
            CellSet::C2019d,
        ]
    }

    /// The calibrated profile for this cell.
    pub fn profile(self) -> CellProfile {
        match self {
            CellSet::C2011 => CellProfile {
                cell: self,
                name: "clusterdata-2011",
                full_machines: 12_500,
                full_group_width: 500,
                format_2019: false,
                horizon_days: 29.0,
                // Table IX row 1: volume 8.1/41.3/20.5 %.
                co_volume_avg: 0.205,
                co_volume_amplitude: 0.14,
                co_cpu_bias: 1.35,
                co_mem_bias: 1.10,
                group0_share: 0.0060,
                pareto_alpha: 0.9,
                collections_per_day_full: 4_000.0,
                vocab_initial_fraction: 0.975,
                vocab_extension_steps: 11,
                max_new_features_per_step: 40,
                anomaly_mistimed_rate: 0.0,
                anomaly_missing_term_rate: 0.0,
                constraint_noise: 0.10,
            },
            CellSet::C2019a => CellProfile {
                cell: self,
                name: "clusterdata-2019a",
                full_machines: 9_400,
                full_group_width: 360,
                format_2019: true,
                horizon_days: 31.0,
                // Table IX row 2: volume 16.6/62.6/41.8 %.
                co_volume_avg: 0.418,
                co_volume_amplitude: 0.20,
                co_cpu_bias: 0.92,
                co_mem_bias: 1.18,
                group0_share: 0.0110,
                pareto_alpha: 0.65,
                collections_per_day_full: 14_800.0,
                vocab_initial_fraction: 0.955,
                vocab_extension_steps: 14,
                max_new_features_per_step: 45,
                anomaly_mistimed_rate: 0.015,
                anomaly_missing_term_rate: 0.010,
                constraint_noise: 0.18,
            },
            CellSet::C2019c => CellProfile {
                cell: self,
                name: "clusterdata-2019c",
                full_machines: 12_600,
                full_group_width: 500,
                format_2019: true,
                horizon_days: 31.0,
                // Table IX row 3: volume 11.3/49.3/22.0 %.
                co_volume_avg: 0.220,
                co_volume_amplitude: 0.17,
                co_cpu_bias: 1.00,
                co_mem_bias: 1.04,
                group0_share: 0.0100,
                pareto_alpha: 0.65,
                collections_per_day_full: 14_800.0,
                vocab_initial_fraction: 0.950,
                vocab_extension_steps: 15,
                max_new_features_per_step: 45,
                anomaly_mistimed_rate: 0.015,
                anomaly_missing_term_rate: 0.010,
                constraint_noise: 0.20,
            },
            CellSet::C2019d => CellProfile {
                cell: self,
                name: "clusterdata-2019d",
                full_machines: 12_100,
                full_group_width: 500,
                format_2019: true,
                horizon_days: 31.0,
                // Table IX row 4: volume 8.2/33.9/13.6 %.
                co_volume_avg: 0.136,
                co_volume_amplitude: 0.11,
                co_cpu_bias: 1.17,
                co_mem_bias: 1.10,
                group0_share: 0.0120,
                pareto_alpha: 0.65,
                collections_per_day_full: 14_800.0,
                vocab_initial_fraction: 0.960,
                vocab_extension_steps: 13,
                max_new_features_per_step: 45,
                anomaly_mistimed_rate: 0.015,
                anomaly_missing_term_rate: 0.010,
                constraint_noise: 0.15,
            },
        }
    }
}

/// Calibrated facts about one computing cell (see [`CellSet::profile`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellProfile {
    /// Which cell this profiles.
    pub cell: CellSet,
    /// Archive name as the paper spells it.
    pub name: &'static str,
    /// Machine count at full scale.
    pub full_machines: usize,
    /// Suitable-node group width at full scale (500, or 360 for 2019a).
    pub full_group_width: usize,
    /// True for the 2019 trace format (8 constraint ops, alloc sets,
    /// parent-child collections, anomalies).
    pub format_2019: bool,
    /// Trace horizon in days (29 for 2011, 31 for 2019).
    pub horizon_days: f64,
    /// Mean fraction of tasks carrying constraints (Table IX “Avg”).
    pub co_volume_avg: f64,
    /// Seasonal swing of that fraction (drives Table IX min/max).
    pub co_volume_amplitude: f64,
    /// CPU-request multiplier for constrained tasks relative to the fleet.
    pub co_cpu_bias: f64,
    /// Memory-request multiplier for constrained tasks.
    pub co_mem_bias: f64,
    /// Fraction of constrained tasks targeting Group 0 (single node);
    /// the paper reports 0.03 %–1.17 % of *total* tasks.
    pub group0_share: f64,
    /// Bounded-Pareto shape for resource requests (smaller = heavier tail;
    /// the 2019 traces are markedly heavier-tailed).
    pub pareto_alpha: f64,
    /// Collection submission rate at full scale (the paper notes a 3.7×
    /// rate increase from 2011 to 2019).
    pub collections_per_day_full: f64,
    /// Share of the final attribute-value vocabulary already present at
    /// step 0 (Table XI: “most attribute values defined in step zero”).
    pub vocab_initial_fraction: f64,
    /// Number of mid-trace vocabulary-extension steps (Table XI rows).
    pub vocab_extension_steps: usize,
    /// Cap on new feature columns per step (§VI: adding more than 40–50
    /// at once degrades the growing model).
    pub max_new_features_per_step: usize,
    /// Fraction of tasks whose update events carry corrupted timestamps
    /// (2019 anomaly (i)).
    pub anomaly_mistimed_rate: f64,
    /// Fraction of tasks missing their termination event (2019 anomaly
    /// (ii)).
    pub anomaly_missing_term_rate: f64,
    /// Probability that a constrained task carries extra decorative
    /// constraints beyond the ones that pin its suitable-node count.
    pub constraint_noise: f64,
}

/// Shrinks a cell to a runnable size while preserving ratios.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Scale {
    /// Number of machines to generate.
    pub machines: usize,
    /// Number of collections to submit over the horizon.
    pub collections: usize,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl Scale {
    /// The default CI/test scale: a few hundred machines, a few thousand
    /// tasks — small enough for `cargo test`, large enough that every
    /// group and every constraint style appears.
    pub fn small(seed: u64) -> Self {
        Self {
            machines: 260,
            collections: 900,
            seed,
        }
    }

    /// A medium scale for examples and benches.
    pub fn medium(seed: u64) -> Self {
        Self {
            machines: 1_000,
            collections: 4_000,
            seed,
        }
    }

    /// Paper scale. Slow; used by `--full` bench runs only.
    pub fn full(profile: &CellProfile, seed: u64) -> Self {
        Self {
            machines: profile.full_machines,
            collections: (profile.collections_per_day_full * profile.horizon_days) as usize,
            seed,
        }
    }

    /// The scaled suitable-node group width: proportional to the paper's
    /// width at full scale, minimum 1.
    pub fn group_width(&self, profile: &CellProfile) -> usize {
        let w = (profile.full_group_width as f64 * self.machines as f64
            / profile.full_machines as f64)
            .round() as usize;
        w.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_cell_sizes() {
        assert_eq!(CellSet::C2011.profile().full_machines, 12_500);
        assert_eq!(CellSet::C2019a.profile().full_machines, 9_400);
        assert_eq!(CellSet::C2019c.profile().full_machines, 12_600);
        assert_eq!(CellSet::C2019d.profile().full_machines, 12_100);
    }

    #[test]
    fn group_width_is_360_for_2019a_at_full_scale() {
        let p = CellSet::C2019a.profile();
        let s = Scale::full(&p, 0);
        assert_eq!(s.group_width(&p), 360);
        let p11 = CellSet::C2011.profile();
        assert_eq!(Scale::full(&p11, 0).group_width(&p11), 500);
    }

    #[test]
    fn group_width_scales_proportionally() {
        let p = CellSet::C2011.profile();
        let s = Scale::small(0);
        let w = s.group_width(&p);
        assert!((8..=12).contains(&w), "got width {w}");
    }

    #[test]
    fn only_2011_uses_the_4_op_format() {
        assert!(!CellSet::C2011.profile().format_2019);
        for c in [CellSet::C2019a, CellSet::C2019c, CellSet::C2019d] {
            assert!(c.profile().format_2019);
        }
    }

    #[test]
    fn co_volume_swing_stays_in_unit_interval() {
        for c in CellSet::all() {
            let p = c.profile();
            assert!(p.co_volume_avg + p.co_volume_amplitude < 1.0);
            assert!(p.co_volume_avg - p.co_volume_amplitude > 0.0);
        }
    }

    #[test]
    fn submission_rate_grew_about_3_7x_between_archives() {
        let r2011 = CellSet::C2011.profile().collections_per_day_full;
        let r2019 = CellSet::C2019c.profile().collections_per_day_full;
        let ratio = r2019 / r2011;
        assert!((3.4..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn feature_step_cap_respects_paper_limit() {
        for c in CellSet::all() {
            assert!(c.profile().max_new_features_per_step <= 50);
        }
    }
}
