//! The trace event stream.
//!
//! AGOCS replays GCD traces as a time-ordered stream of machine,
//! collection and task events; this module defines that stream's schema.

use serde::{Deserialize, Serialize};

use crate::attr::{AttrId, AttrValue};
use crate::collection::Collection;
use crate::machine::{Machine, MachineId};
use crate::task::{Task, TaskId};

/// Simulation timestamps in microseconds since trace start, matching the
/// GCD convention.
pub type Micros = u64;

/// Microseconds in one simulated day.
pub const MICROS_PER_DAY: Micros = 24 * 60 * 60 * 1_000_000;

/// Why a task left the cluster. The 2019 traces distinguish these, and the
/// paper's anomaly discussion (“tasks missing eviction or failure events”)
/// depends on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminationReason {
    /// Ran to completion.
    Complete,
    /// Evicted by the scheduler (e.g. preemption).
    Evict,
    /// Failed at runtime.
    Fail,
    /// Killed by the user or a parent collection.
    Kill,
}

/// Event payloads.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventPayload {
    /// A machine joins the cell.
    MachineAdd(Machine),
    /// A machine leaves the cell.
    MachineRemove(MachineId),
    /// A machine attribute changes (None removes the attribute). These are
    /// the events that grow the attribute-value vocabulary mid-trace.
    MachineAttrUpdate {
        /// The machine being updated.
        machine: MachineId,
        /// The attribute being set or cleared.
        attr: AttrId,
        /// New value, or `None` to clear.
        value: Option<AttrValue>,
    },
    /// A collection (job / alloc set) is submitted.
    CollectionSubmit(Collection),
    /// A collection finishes; per the paper's correction rule, any task
    /// markers it still owns must be deleted at this point.
    CollectionFinish(crate::collection::CollectionId),
    /// A task is submitted (with its constraints).
    TaskSubmit(Task),
    /// A task record is updated mid-flight (e.g. resource-request change).
    TaskUpdate {
        /// The task being updated.
        task: TaskId,
        /// New CPU request.
        cpu: f64,
        /// New memory request.
        memory: f64,
    },
    /// A task terminates.
    TaskTerminate {
        /// The task terminating.
        task: TaskId,
        /// Why it terminated.
        reason: TerminationReason,
    },
}

/// A timestamped trace event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event time in microseconds since trace start.
    pub time: Micros,
    /// What happened.
    pub payload: EventPayload,
}

impl TraceEvent {
    /// Convenience constructor.
    pub fn new(time: Micros, payload: EventPayload) -> Self {
        Self { time, payload }
    }

    /// Formats the timestamp as the paper's Table XI does: `d HH:MM`.
    pub fn day_hour_minute(&self) -> String {
        format_day_hour_minute(self.time)
    }
}

/// Rescales a time-ordered event stream onto `[0, span]`, preserving
/// order — simulations compress multi-week traces onto minutes-to-hours
/// experiment windows (the loaded regime where queueing effects exist).
/// The per-arrival analogue for already-extracted task lists is
/// `ctlm_sched::engine::compress_timeline`.
pub fn compress_times(events: &mut [TraceEvent], span: Micros) {
    let max = events.iter().map(|e| e.time).max().unwrap_or(0);
    if max == 0 {
        return;
    }
    for e in events.iter_mut() {
        e.time = ((e.time as u128 * span as u128) / max as u128) as Micros;
    }
}

/// Formats a timestamp as `day HH:MM` (Table XI step labels).
pub fn format_day_hour_minute(t: Micros) -> String {
    let day = t / MICROS_PER_DAY;
    let rem = t % MICROS_PER_DAY;
    let hour = rem / (60 * 60 * 1_000_000);
    let minute = (rem / (60 * 1_000_000)) % 60;
    format!("{day} {hour:02}:{minute:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_times_preserves_order_and_hits_span() {
        let mut events: Vec<TraceEvent> = [0u64, 5_000, 40_000, 100_000]
            .iter()
            .map(|&t| TraceEvent::new(t, EventPayload::CollectionFinish(1)))
            .collect();
        compress_times(&mut events, 1_000);
        let times: Vec<Micros> = events.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![0, 50, 400, 1_000]);
        // Empty / all-zero streams are untouched.
        let mut zero = vec![TraceEvent::new(0, EventPayload::CollectionFinish(1))];
        compress_times(&mut zero, 1_000);
        assert_eq!(zero[0].time, 0);
    }

    #[test]
    fn day_hour_minute_formatting() {
        assert_eq!(format_day_hour_minute(0), "0 00:00");
        let t = 3 * MICROS_PER_DAY + 5 * 3_600_000_000 + 42 * 60_000_000;
        assert_eq!(format_day_hour_minute(t), "3 05:42");
    }

    #[test]
    fn events_serialize_roundtrip() {
        let ev = TraceEvent::new(
            123,
            EventPayload::TaskTerminate {
                task: 9,
                reason: TerminationReason::Evict,
            },
        );
        let json = serde_json::to_string(&ev).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(ev, back);
    }
}
