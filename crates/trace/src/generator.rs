//! The synthetic trace generator.
//!
//! Produces a time-sorted [`TraceEvent`] stream for one computing cell at a
//! chosen [`Scale`], reproducing the workload properties the paper's
//! evaluation depends on (see the crate docs for the list). The generator
//! is purely functional given `(CellProfile, Scale)` — the same inputs
//! always yield the same trace.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::anomaly::{AnomalyKind, AnomalyLog};
use crate::attr::{AttrCatalog, AttrId, AttrValue};
use crate::collection::Collection;
use crate::constraint::{ConstraintOp, TaskConstraint};
use crate::event::{EventPayload, Micros, TerminationReason, TraceEvent, MICROS_PER_DAY};
use crate::machine::Machine;
use crate::pareto::{BoundedPareto, Zipf};
use crate::profile::{CellProfile, Scale};
use crate::task::Task;

/// Well-known attribute names the generator uses. Their *values* are what
/// the CO-VV feature columns enumerate.
pub mod attrs {
    /// Unique numeric index per machine; windowed constraints on it give
    /// tasks precise suitable-node counts.
    pub const NODE_INDEX: &str = "node_index";
    /// Hardware platform family (string, few values, Zipf-popular).
    pub const PLATFORM: &str = "platform";
    /// Kernel build (string; new versions roll out mid-trace, growing the
    /// vocabulary).
    pub const KERNEL: &str = "kernel";
    /// CPU clock in 100 MHz units (numeric).
    pub const CLOCK: &str = "clock";
    /// Local disk count (numeric).
    pub const DISKS: &str = "disks";
    /// Rack id (numeric, many values).
    pub const RACK: &str = "rack";
    /// GPU count; absent on most machines (presence constraints).
    pub const GPU: &str = "gpu";
    /// Service tier 0–9 (numeric).
    pub const TIER: &str = "tier";
    /// 2019-only: power domain id (the 2019 archive ships power data for
    /// 57 domains).
    pub const POWER_DOMAIN: &str = "power_domain";
    /// 2019-only: alloc-pool label (string).
    pub const POOL: &str = "pool";
}

/// A fully generated trace plus the bookkeeping consumers need.
#[derive(Clone, Debug)]
pub struct GeneratedTrace {
    /// The cell profile the trace was generated for.
    pub profile: CellProfile,
    /// The scale it was generated at.
    pub scale: Scale,
    /// Time-sorted event stream.
    pub events: Vec<TraceEvent>,
    /// Attribute-name catalog (names → ids used in events).
    pub catalog: AttrCatalog,
    /// Trace horizon in microseconds.
    pub horizon: Micros,
    /// Scaled suitable-node group width for this trace.
    pub group_width: usize,
    /// Ledger of injected anomalies (2019 cells only).
    pub anomalies: AnomalyLog,
    /// Total tasks submitted.
    pub total_tasks: usize,
    /// Tasks submitted with at least one constraint.
    pub constrained_tasks: usize,
}

/// Deterministic trace generator. See the module docs.
pub struct TraceGenerator {
    profile: CellProfile,
    scale: Scale,
}

/// Internal: the clock values machines can report (100 MHz units — GCD
/// constraint operators support integers only).
const CLOCK_VALUES: [i64; 6] = [20, 22, 25, 28, 30, 33];
/// Internal: platform family names.
const PLATFORMS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
/// Internal: alloc-pool labels (2019).
const POOLS: [&str; 3] = ["prod", "batch", "free"];

impl TraceGenerator {
    /// Creates a generator for one cell at one scale.
    pub fn new(profile: CellProfile, scale: Scale) -> Self {
        Self { profile, scale }
    }

    /// Convenience: generate a cell directly.
    pub fn generate_cell(cell: crate::profile::CellSet, scale: Scale) -> GeneratedTrace {
        Self::new(cell.profile(), scale).generate()
    }

    /// Runs the generator.
    pub fn generate(&self) -> GeneratedTrace {
        let mut rng = StdRng::seed_from_u64(self.scale.seed ^ 0xC71A_57A9_2E55_11D5);
        let mut catalog = AttrCatalog::new();
        let horizon = (self.profile.horizon_days * MICROS_PER_DAY as f64) as Micros;
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut anomalies = AnomalyLog::default();

        let a_node = catalog.intern(attrs::NODE_INDEX);
        let a_platform = catalog.intern(attrs::PLATFORM);
        let a_kernel = catalog.intern(attrs::KERNEL);
        let a_clock = catalog.intern(attrs::CLOCK);
        let a_disks = catalog.intern(attrs::DISKS);
        let a_rack = catalog.intern(attrs::RACK);
        let a_gpu = catalog.intern(attrs::GPU);
        let a_tier = catalog.intern(attrs::TIER);
        let (a_power, a_pool) = if self.profile.format_2019 {
            (
                Some(catalog.intern(attrs::POWER_DOMAIN)),
                Some(catalog.intern(attrs::POOL)),
            )
        } else {
            (None, None)
        };

        // ---- Fleet plan -------------------------------------------------
        // `vocab_initial_fraction` of machines exist at t=0; the rest join
        // at the scheduled vocabulary-extension steps (each new machine's
        // node_index is a new feature column downstream).
        let m_total = self.scale.machines;
        let m_initial = ((m_total as f64) * self.profile.vocab_initial_fraction) as usize;
        let m_initial = m_initial.max(26).min(m_total);
        let racks = (m_total / 16).max(2);
        let platform_zipf = Zipf::new(PLATFORMS.len(), 1.1);
        let kernel_versions_initial = 4usize;
        let kernel_zipf = Zipf::new(kernel_versions_initial, 1.0);
        let disks_zipf = Zipf::new(8, 0.8);

        let make_machine = |id: u64, node_index: i64, kernel_ver: usize, rng: &mut StdRng| {
            let mut m = Machine::new(
                id,
                0.25 + 0.75 * rng.gen_range(0.0..1.0f64).powf(2.0),
                0.25 + 0.75 * rng.gen_range(0.0..1.0f64).powf(2.0),
            );
            m.set_attr(a_node, AttrValue::Int(node_index));
            m.set_attr(
                a_platform,
                AttrValue::from(PLATFORMS[platform_zipf.sample(rng)]),
            );
            m.set_attr(a_kernel, AttrValue::Str(format!("k{kernel_ver}")));
            m.set_attr(
                a_clock,
                AttrValue::Int(CLOCK_VALUES[rng.gen_range(0..CLOCK_VALUES.len())]),
            );
            m.set_attr(a_disks, AttrValue::Int(disks_zipf.sample(rng) as i64 + 1));
            m.set_attr(a_rack, AttrValue::Int((node_index as usize % racks) as i64));
            if rng.gen_bool(0.15) {
                m.set_attr(a_gpu, AttrValue::Int(rng.gen_range(1..=4)));
            }
            m.set_attr(a_tier, AttrValue::Int(rng.gen_range(0..10)));
            if let Some(ap) = a_power {
                let domains = 57.min((m_total / 8).max(2));
                m.set_attr(ap, AttrValue::Int((node_index as usize % domains) as i64));
            }
            if let Some(ap) = a_pool {
                m.set_attr(ap, AttrValue::from(POOLS[rng.gen_range(0..POOLS.len())]));
            }
            m
        };

        let mut next_node_index: i64 = 0;
        for id in 0..m_initial as u64 {
            let kv = kernel_zipf.sample(&mut rng);
            let m = make_machine(id, next_node_index, kv, &mut rng);
            next_node_index += 1;
            events.push(TraceEvent::new(0, EventPayload::MachineAdd(m)));
        }

        // ---- Vocabulary-extension schedule -------------------------------
        // Steps spread over the horizon with jitter; each step adds a batch
        // of new machines and/or rolls out a new kernel version, keeping
        // new feature columns per step under the profile cap.
        let steps = self.profile.vocab_extension_steps;
        let mut remaining_new_machines = m_total - m_initial;
        let mut next_machine_id = m_initial as u64;
        let mut kernel_version_counter = kernel_versions_initial;
        let mut extension_times: Vec<Micros> = (0..steps)
            .map(|i| {
                let base = horizon as f64 * (i as f64 + 0.7) / (steps as f64 + 0.7);
                let jitter = rng.gen_range(-0.25f64..0.25) * horizon as f64 / steps as f64;
                ((base + jitter).max(1.0) as Micros).min(horizon - 1)
            })
            .collect();
        extension_times.sort_unstable();
        extension_times.dedup();

        for (i, &t) in extension_times.iter().enumerate() {
            let steps_left = steps - i;
            // Budget for new columns this step: mostly new machines, plus a
            // kernel rollout every other step.
            let cap = self.profile.max_new_features_per_step;
            let machine_budget = cap.saturating_sub(3).max(1);
            let batch = remaining_new_machines
                .div_ceil(steps_left.max(1))
                .min(machine_budget)
                .min(remaining_new_machines);
            // Every other step rolls out a kernel build; steps with no
            // machine batch always roll one out so each extension step
            // actually extends the vocabulary.
            let rollout = i % 2 == 1 || batch == 0;
            for _ in 0..batch {
                let kv = kernel_zipf.sample(&mut rng);
                let m = make_machine(next_machine_id, next_node_index, kv, &mut rng);
                next_machine_id += 1;
                next_node_index += 1;
                events.push(TraceEvent::new(t, EventPayload::MachineAdd(m)));
            }
            remaining_new_machines -= batch;
            if rollout {
                // Roll a fresh kernel build onto a handful of machines —
                // one brand-new attribute value.
                let new_ver = kernel_version_counter;
                kernel_version_counter += 1;
                let n_upgraded = rng.gen_range(3..=12.min(m_initial));
                for _ in 0..n_upgraded {
                    let target = rng.gen_range(0..next_machine_id);
                    events.push(TraceEvent::new(
                        t + 1,
                        EventPayload::MachineAttrUpdate {
                            machine: target,
                            attr: a_kernel,
                            value: Some(AttrValue::Str(format!("k{new_ver}"))),
                        },
                    ));
                }
            }
        }
        // A small number of machine removals mid-trace (churn).
        let removals = (m_total / 100).min(8);
        for _ in 0..removals {
            let t = rng.gen_range(horizon / 4..horizon * 3 / 4);
            let victim = rng.gen_range(0..m_initial as u64);
            events.push(TraceEvent::new(t, EventPayload::MachineRemove(victim)));
        }

        // ---- Alive-index bookkeeping for constraint construction --------
        // The generator tracks (approximately) which node indices exist at
        // a given time so windowed constraints land near their target
        // suitable-node counts. Ground-truth labels are computed later by
        // the AGOCS matcher, so approximation here is harmless.
        let mut index_birth: Vec<(Micros, i64)> = Vec::new();
        for ev in &events {
            if let EventPayload::MachineAdd(m) = &ev.payload {
                if let Some(AttrValue::Int(ni)) = m.attr(a_node).cloned() {
                    index_birth.push((ev.time, ni));
                }
            }
        }
        index_birth.sort_unstable();
        let max_index_at = |t: Micros| -> i64 {
            // Largest node index born at or before t, plus one.
            let mut hi = 0i64;
            for &(bt, ni) in &index_birth {
                if bt > t {
                    break;
                }
                hi = hi.max(ni + 1);
            }
            hi
        };

        // ---- Collections and tasks --------------------------------------
        let pareto = BoundedPareto::new(0.002, 1.0, self.profile.pareto_alpha);
        // Constrained tasks' resource-request bias is expressed through
        // the tail shape (a multiplier would be clamped away on the heavy
        // draws that dominate totals): bias > 1 ⇒ heavier tail.
        let pareto_co_cpu = BoundedPareto::new(
            0.002,
            1.0,
            self.profile.pareto_alpha / self.profile.co_cpu_bias,
        );
        let pareto_co_mem = BoundedPareto::new(
            0.002,
            1.0,
            self.profile.pareto_alpha / self.profile.co_mem_bias,
        );
        let mut collection_times: Vec<Micros> = (0..self.scale.collections)
            .map(|_| rng.gen_range(0..horizon * 95 / 100))
            .collect();
        collection_times.sort_unstable();

        let mut next_task_id: u64 = 1;
        let mut total_tasks = 0usize;
        let mut constrained_tasks = 0usize;
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        // Constraint templates: production workloads resubmit the same
        // constraint sets over and over (services pin the same node
        // classes), which is what makes the classification problem
        // well-posed at >99 % accuracy in the paper. New templates are
        // minted at TEMPLATE_FRESH_RATE; otherwise a prior one is reused.
        const TEMPLATE_FRESH_RATE: f64 = 0.35;
        let mut templates: Vec<Vec<TaskConstraint>> = Vec::new();

        for (cid_minus, &t_sub) in collection_times.iter().enumerate() {
            let cid = cid_minus as u64 + 1;
            // Gang size: geometric-ish, mean ≈ 4.5.
            let mut gang = 1u32;
            while gang < 40 && rng.gen_bool(0.72) {
                gang += 1;
            }

            // Seasonal constrained-task probability (drives Table IX
            // min/max/avg around the profile average).
            let season =
                (std::f64::consts::TAU * 3.0 * t_sub as f64 / horizon as f64 + phase).sin();
            let p_co = (self.profile.co_volume_avg
                + self.profile.co_volume_amplitude * season
                + rng.gen_range(-0.02f64..0.02))
            .clamp(0.005, 0.98);
            let constrained = rng.gen_bool(p_co);

            let constraints = if constrained {
                if !templates.is_empty() && !rng.gen_bool(TEMPLATE_FRESH_RATE) {
                    templates[rng.gen_range(0..templates.len())].clone()
                } else {
                    let fresh = self.build_constraints(
                        &mut rng,
                        max_index_at(t_sub),
                        a_node,
                        a_platform,
                        a_kernel,
                        a_gpu,
                        a_tier,
                        a_rack,
                        a_disks,
                        kernel_version_counter,
                    );
                    templates.push(fresh.clone());
                    fresh
                }
            } else {
                Vec::new()
            };

            let parent = if self.profile.format_2019 && cid > 4 && rng.gen_bool(0.18) {
                Some(rng.gen_range(1..cid))
            } else {
                None
            };
            let mut col = Collection {
                id: cid,
                parent,
                is_alloc_set: false,
                task_count: gang,
            };
            if self.profile.format_2019 && rng.gen_bool(0.05) {
                col.is_alloc_set = true;
            }
            events.push(TraceEvent::new(t_sub, EventPayload::CollectionSubmit(col)));

            let mut collection_end = t_sub;
            for g in 0..gang {
                let tid = next_task_id;
                next_task_id += 1;
                total_tasks += 1;
                if constrained {
                    constrained_tasks += 1;
                }
                let (cpu, memory) = if constrained {
                    (
                        pareto_co_cpu.sample(&mut rng),
                        pareto_co_mem.sample(&mut rng),
                    )
                } else {
                    (pareto.sample(&mut rng), pareto.sample(&mut rng))
                };
                let t_task = t_sub + g as Micros; // tasks of a gang arrive together
                let task = Task {
                    id: tid,
                    collection: cid,
                    cpu,
                    memory,
                    priority: rng.gen_range(0..12),
                    constraints: constraints.clone(),
                };
                events.push(TraceEvent::new(t_task, EventPayload::TaskSubmit(task)));

                // Lifetime: exponential-ish with a 2-hour mean, capped.
                let u: f64 = rng.gen_range(1e-6..1.0);
                let dur = ((-u.ln()) * 2.0 * 3_600.0 * 1e6) as Micros;
                let t_end = (t_task + dur.max(1_000_000)).min(horizon - 1);
                collection_end = collection_end.max(t_end);

                // Optional mid-flight update.
                if rng.gen_bool(0.15) {
                    let frac = rng.gen_range(0.1f64..0.9);
                    let mut t_up = t_task + ((t_end - t_task) as f64 * frac) as Micros;
                    // Anomaly (i): corrupt the update timestamp to before
                    // submission.
                    if self.profile.format_2019 && rng.gen_bool(self.profile.anomaly_mistimed_rate)
                    {
                        t_up = t_task.saturating_sub(rng.gen_range(1_000..60_000_000));
                        anomalies.record(tid, AnomalyKind::MistimedUpdate);
                    }
                    events.push(TraceEvent::new(
                        t_up,
                        EventPayload::TaskUpdate {
                            task: tid,
                            cpu: (cpu * rng.gen_range(0.8f64..1.3)).min(1.0),
                            memory: (memory * rng.gen_range(0.8f64..1.3)).min(1.0),
                        },
                    ));
                }

                // Termination — unless anomaly (ii) suppresses it.
                let missing = self.profile.format_2019
                    && rng.gen_bool(self.profile.anomaly_missing_term_rate);
                if missing {
                    anomalies.record(tid, AnomalyKind::MissingTermination);
                } else {
                    let reason = match rng.gen_range(0..100) {
                        0..=69 => TerminationReason::Complete,
                        70..=79 => TerminationReason::Evict,
                        80..=93 => TerminationReason::Fail,
                        _ => TerminationReason::Kill,
                    };
                    events.push(TraceEvent::new(
                        t_end,
                        EventPayload::TaskTerminate { task: tid, reason },
                    ));
                }
            }
            events.push(TraceEvent::new(
                (collection_end + 1_000_000).min(horizon - 1),
                EventPayload::CollectionFinish(cid),
            ));
        }

        // Stable sort by time: same-timestamp events keep build order,
        // which preserves Submit-before-Terminate for zero-length tasks.
        events.sort_by_key(|e| e.time);

        GeneratedTrace {
            profile: self.profile.clone(),
            scale: self.scale,
            events,
            catalog,
            horizon,
            group_width: self.scale.group_width(&self.profile),
            anomalies,
            total_tasks,
            constrained_tasks,
        }
    }

    /// Builds the constraint list for one constrained collection.
    ///
    /// A *primary* constraint pins the approximate suitable-node count
    /// (sampling the target-group distribution), and with probability
    /// `constraint_noise` decorative secondary constraints are added —
    /// the mixture that makes the CO-VV datasets realistic.
    #[allow(clippy::too_many_arguments)]
    fn build_constraints(
        &self,
        rng: &mut StdRng,
        max_index: i64,
        a_node: AttrId,
        a_platform: AttrId,
        a_kernel: AttrId,
        a_gpu: AttrId,
        a_tier: AttrId,
        a_rack: AttrId,
        a_disks: AttrId,
        kernel_versions: usize,
    ) -> Vec<TaskConstraint> {
        let m = max_index.max(2);
        let mut out = Vec::new();

        if rng.gen_bool(self.profile.group0_share.clamp(0.0, 1.0)) {
            // Group 0: exactly one suitable node.
            let idx = rng.gen_range(0..m);
            out.push(TaskConstraint::new(
                a_node,
                ConstraintOp::Equal(Some(AttrValue::Int(idx))),
            ));
            return out;
        }

        // Target suitable-node count: mostly generous, sometimes narrow.
        let n: i64 = if rng.gen_bool(0.25) {
            rng.gen_range(2..(m / 4).max(3))
        } else {
            rng.gen_range((m / 4).max(2)..m)
        };

        let style = rng.gen_range(0..100);
        match style {
            // Index window — exact-count constraints (the dominant style;
            // gives the learner a crisp signal, as the paper's >99 %
            // accuracy implies the real data does).
            0..=49 => {
                let a = rng.gen_range(0..(m - n).max(1));
                if self.profile.format_2019 {
                    out.push(TaskConstraint::new(
                        a_node,
                        ConstraintOp::GreaterThanEqual(a),
                    ));
                    out.push(TaskConstraint::new(a_node, ConstraintOp::LessThan(a + n)));
                } else {
                    // 2011 lacks >= and <=: use the strict pair the paper's
                    // Table V compaction handles (`3 > ${AM} > 0`).
                    out.push(TaskConstraint::new(
                        a_node,
                        ConstraintOp::GreaterThan(a - 1),
                    ));
                    out.push(TaskConstraint::new(a_node, ConstraintOp::LessThan(a + n)));
                }
            }
            // Platform equality.
            50..=64 => {
                let v = PLATFORMS[rng.gen_range(0..PLATFORMS.len())];
                out.push(TaskConstraint::new(
                    a_platform,
                    ConstraintOp::Equal(Some(AttrValue::from(v))),
                ));
            }
            // GPU presence / absence (2019 ops) or numeric proxy for 2011.
            65..=74 => {
                if self.profile.format_2019 {
                    if rng.gen_bool(0.5) {
                        out.push(TaskConstraint::new(a_gpu, ConstraintOp::Present));
                    } else {
                        out.push(TaskConstraint::new(a_gpu, ConstraintOp::NotPresent));
                    }
                } else {
                    out.push(TaskConstraint::new(a_gpu, ConstraintOp::GreaterThan(0)));
                }
            }
            // Rack exclusions — Not-Equal array material (Table V).
            75..=89 => {
                let racks = (self.scale.machines / 16).max(2) as i64;
                let k = rng.gen_range(1..=3.min(racks as usize)).max(1);
                let mut excluded = std::collections::BTreeSet::new();
                while excluded.len() < k {
                    excluded.insert(rng.gen_range(0..racks));
                }
                for r in excluded {
                    out.push(TaskConstraint::new(
                        a_rack,
                        ConstraintOp::NotEqual(AttrValue::Int(r)),
                    ));
                }
            }
            // Tier ceiling.
            _ => {
                let k = rng.gen_range(0..9);
                if self.profile.format_2019 {
                    out.push(TaskConstraint::new(a_tier, ConstraintOp::LessThanEqual(k)));
                } else {
                    out.push(TaskConstraint::new(a_tier, ConstraintOp::LessThan(k + 1)));
                }
            }
        }

        // Decorative secondary constraints. Kept *weak* (each excludes
        // only a small machine slice): real traces' auxiliary constraints
        // rarely carve deep intersections, and deep multi-attribute
        // intersections would put the suitable count outside what any
        // linear model can recover — the paper's ≥99 % accuracy implies
        // the real data does not do that either.
        if rng.gen_bool(self.profile.constraint_noise) {
            match rng.gen_range(0..3) {
                0 => {
                    // Exclude one rare kernel build (~a few machines).
                    let v = format!("k{}", rng.gen_range(0..kernel_versions));
                    out.push(TaskConstraint::new(
                        a_kernel,
                        ConstraintOp::NotEqual(AttrValue::Str(v)),
                    ));
                }
                1 => {
                    // Exclude maxed-out disk configs (~5-10 % of the fleet).
                    out.push(TaskConstraint::new(
                        a_disks,
                        ConstraintOp::NotEqual(AttrValue::Int(8)),
                    ));
                }
                _ => {
                    // Exclude tier 0 (~10 % of the fleet).
                    out.push(TaskConstraint::new(a_tier, ConstraintOp::GreaterThan(0)));
                }
            }
        }
        out
    }
}

/// Machine-count bookkeeping helper shared by tests: replays only machine
/// events and returns the live machine population per unique timestamp.
pub fn machine_population(events: &[TraceEvent]) -> BTreeMap<Micros, usize> {
    let mut alive = 0usize;
    let mut out = BTreeMap::new();
    for ev in events {
        match &ev.payload {
            EventPayload::MachineAdd(_) => alive += 1,
            EventPayload::MachineRemove(_) => alive = alive.saturating_sub(1),
            _ => continue,
        }
        out.insert(ev.time, alive);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CellSet;

    fn small_trace(cell: CellSet) -> GeneratedTrace {
        TraceGenerator::generate_cell(
            cell,
            Scale {
                machines: 120,
                collections: 250,
                seed: 11,
            },
        )
    }

    #[test]
    fn events_are_time_sorted() {
        let t = small_trace(CellSet::C2019c);
        assert!(t.events.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let a = small_trace(CellSet::C2019a);
        let b = small_trace(CellSet::C2019a);
        assert_eq!(a.events, b.events);
        assert_eq!(a.anomalies, b.anomalies);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_trace(CellSet::C2011);
        let b = TraceGenerator::generate_cell(
            CellSet::C2011,
            Scale {
                machines: 120,
                collections: 250,
                seed: 12,
            },
        );
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn machine_population_reaches_scale() {
        let t = small_trace(CellSet::C2019c);
        let pop = machine_population(&t.events);
        let max_pop = pop.values().copied().max().unwrap();
        // All planned machines eventually join (minus a few removals).
        assert!(max_pop >= 110, "population only reached {max_pop}");
    }

    #[test]
    fn initial_fleet_is_the_profile_fraction() {
        let t = small_trace(CellSet::C2019c);
        let at_zero = t
            .events
            .iter()
            .filter(|e| e.time == 0 && matches!(e.payload, EventPayload::MachineAdd(_)))
            .count();
        let expect = (120.0 * t.profile.vocab_initial_fraction) as usize;
        assert!(
            (at_zero as i64 - expect as i64).abs() <= 1,
            "initial fleet {at_zero}"
        );
    }

    #[test]
    fn constrained_share_is_near_profile_average() {
        let t = small_trace(CellSet::C2019a);
        let share = t.constrained_tasks as f64 / t.total_tasks as f64;
        let avg = t.profile.co_volume_avg;
        assert!(
            (share - avg).abs() < 0.12,
            "constrained share {share:.3} too far from profile avg {avg:.3}"
        );
    }

    #[test]
    fn only_2011_ops_in_2011_traces() {
        let t = small_trace(CellSet::C2011);
        for ev in &t.events {
            if let EventPayload::TaskSubmit(task) = &ev.payload {
                for c in &task.constraints {
                    assert!(!c.op.is_2019_only(), "2019 op {:?} in 2011 trace", c.op);
                }
            }
        }
    }

    #[test]
    fn trace_2019_uses_new_operators_somewhere() {
        let t = small_trace(CellSet::C2019a);
        let has_2019_op = t.events.iter().any(|ev| {
            matches!(&ev.payload, EventPayload::TaskSubmit(task)
                if task.constraints.iter().any(|c| c.op.is_2019_only()))
        });
        assert!(has_2019_op, "expected 2019-only operators in a 2019 trace");
    }

    #[test]
    fn anomalies_only_in_2019_traces() {
        assert_eq!(small_trace(CellSet::C2011).anomalies.injected.len(), 0);
        let t = small_trace(CellSet::C2019c);
        assert!(
            !t.anomalies.injected.is_empty(),
            "expected injected anomalies in a 2019 trace at this scale"
        );
    }

    #[test]
    fn mistimed_updates_are_really_mistimed() {
        let t = small_trace(CellSet::C2019c);
        // Build submit-time index.
        let mut submit: std::collections::HashMap<u64, Micros> = Default::default();
        for ev in &t.events {
            if let EventPayload::TaskSubmit(task) = &ev.payload {
                submit.insert(task.id, ev.time);
            }
        }
        for a in &t.anomalies.injected {
            if a.kind == AnomalyKind::MistimedUpdate {
                let t_up = t
                    .events
                    .iter()
                    .find_map(|ev| match &ev.payload {
                        EventPayload::TaskUpdate { task, .. } if *task == a.task => Some(ev.time),
                        _ => None,
                    })
                    .expect("mistimed task must still have an update event");
                assert!(
                    t_up < submit[&a.task],
                    "update not mistimed for task {}",
                    a.task
                );
            }
        }
    }

    #[test]
    fn missing_termination_tasks_have_no_terminate_event() {
        let t = small_trace(CellSet::C2019c);
        for a in &t.anomalies.injected {
            if a.kind == AnomalyKind::MissingTermination {
                let has_term = t.events.iter().any(|ev| {
                    matches!(ev.payload, EventPayload::TaskTerminate { task, .. } if task == a.task)
                });
                assert!(!has_term, "task {} should lack a termination event", a.task);
            }
        }
    }

    #[test]
    fn every_collection_eventually_finishes() {
        let t = small_trace(CellSet::C2019d);
        let mut submitted = std::collections::HashSet::new();
        let mut finished = std::collections::HashSet::new();
        for ev in &t.events {
            match &ev.payload {
                EventPayload::CollectionSubmit(c) => {
                    submitted.insert(c.id);
                }
                EventPayload::CollectionFinish(id) => {
                    finished.insert(*id);
                }
                _ => {}
            }
        }
        assert_eq!(submitted, finished);
    }

    #[test]
    fn heavy_tail_top_1pct_dominates() {
        let t = small_trace(CellSet::C2019c);
        let mut cpus: Vec<f64> = t
            .events
            .iter()
            .filter_map(|ev| match &ev.payload {
                EventPayload::TaskSubmit(task) => Some(task.cpu),
                _ => None,
            })
            .collect();
        cpus.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = cpus.iter().sum();
        let top1: f64 = cpus[..(cpus.len() / 100).max(1)].iter().sum();
        assert!(
            top1 / total > 0.15,
            "top-1% CPU share {:.3} too even",
            top1 / total
        );
    }
}
