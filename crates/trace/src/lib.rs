//! # ctlm-trace — synthetic Google-Cluster-Data-like workload traces
//!
//! The paper evaluates on the Google Cluster Data (GCD) archives
//! (clusterdata-2011 and three cells of clusterdata-2019). Those traces are
//! proprietary-scale (~2.4 TB in BigQuery) and not redistributable, so this
//! crate provides the closest synthetic equivalent: a deterministic
//! generator that emits an event stream with the same *structure* and the
//! same *published statistics* the paper depends on:
//!
//! * machines with attribute maps, machine add/remove/update events;
//! * collections (jobs) with parent–child links (2019) and task gangs;
//! * tasks with constraint operators — the four 2011 operators plus the
//!   four added in the 2019 traces (§III.A of the paper);
//! * tasks-with-CO volume / CPU / memory ratios matching Table IX per cell;
//! * heavy-tailed (bounded-Pareto) task resource requests — the paper cites
//!   “top 1 % of tasks consume over 99 % of resources”;
//! * an attribute vocabulary that keeps growing during the trace horizon,
//!   driving the feature-array extensions of Table XI;
//! * the two anomaly classes §III describes (mis-timed task updates, and
//!   missing termination events), which `ctlm-agocs` must auto-correct.
//!
//! All randomness flows from a single `u64` seed.

pub mod anomaly;
pub mod attr;
pub mod collection;
pub mod constraint;
pub mod event;
pub mod generator;
pub mod machine;
pub mod pareto;
pub mod profile;
pub mod task;

pub use attr::{AttrCatalog, AttrId, AttrValue};
pub use collection::{Collection, CollectionId};
pub use constraint::{ConstraintOp, TaskConstraint};
pub use event::{EventPayload, Micros, TerminationReason, TraceEvent};
pub use generator::{GeneratedTrace, TraceGenerator};
pub use machine::{Machine, MachineId};
pub use profile::{CellProfile, CellSet, Scale};
pub use task::{Task, TaskId};
