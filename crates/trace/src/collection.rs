//! Collections (GCD 2019 terminology for jobs / alloc sets).

use serde::{Deserialize, Serialize};

/// Collection identifier, unique within a cell trace.
pub type CollectionId = u64;

/// A collection groups tasks submitted together (a job). The 2019 traces
/// add two structural features the paper calls out: parent–child
/// dependencies between collections, and *alloc sets* — collections that
/// reserve resources into which other collections' tasks are placed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Collection {
    /// Unique collection id.
    pub id: CollectionId,
    /// Parent collection (2019 traces only).
    pub parent: Option<CollectionId>,
    /// True when this collection is an alloc set (2019 traces only).
    pub is_alloc_set: bool,
    /// Number of tasks the collection was submitted with.
    pub task_count: u32,
}

impl Collection {
    /// A plain 2011-style job.
    pub fn job(id: CollectionId, task_count: u32) -> Self {
        Self {
            id,
            parent: None,
            is_alloc_set: false,
            task_count,
        }
    }

    /// A 2019-style child collection.
    pub fn child(id: CollectionId, parent: CollectionId, task_count: u32) -> Self {
        Self {
            id,
            parent: Some(parent),
            is_alloc_set: false,
            task_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_lineage() {
        let j = Collection::job(1, 10);
        assert_eq!(j.parent, None);
        let c = Collection::child(2, 1, 4);
        assert_eq!(c.parent, Some(1));
        assert!(!c.is_alloc_set);
    }
}
