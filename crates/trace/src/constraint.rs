//! Constraint operators (COs).
//!
//! §III.A of the paper enumerates the four logical operators of the 2011
//! traces (Equal, Not-Equal, Less-Than, Greater-Than) and the four added by
//! the 2019 traces (Less-Than-Equal, Greater-Than-Equal, Present,
//! Not-Present), together with their matching semantics against a node's
//! attribute map. This module implements exactly those semantics.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::attr::{AttrId, AttrValue};

/// The eight GCD constraint operators, with the numeric codes the traces
/// use.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// The node's attribute must match the value, or — when no value is
    /// specified (`Equal(None)`) — the attribute must remain empty.
    /// Applies to numeric and non-numeric values.  (2011, code 0)
    Equal(Option<AttrValue>),
    /// The attribute must be absent or differ from the value.
    /// Applies to numeric and non-numeric values.  (2011, code 1)
    NotEqual(AttrValue),
    /// Numeric only: the attribute must be present and `< value`.
    /// (2011, code 2)
    LessThan(i64),
    /// Numeric only: the attribute must be present and `> value`.
    /// (2011, code 3)
    GreaterThan(i64),
    /// Numeric only: the attribute must be present and `<= value`.
    /// (2019, code 4)
    LessThanEqual(i64),
    /// Numeric only: the attribute must be present and `>= value`.
    /// (2019, code 5)
    GreaterThanEqual(i64),
    /// The attribute must be defined and non-blank.  (2019, code 6)
    Present,
    /// The attribute must be undefined.  (2019, code 7)
    NotPresent,
}

impl ConstraintOp {
    /// Numeric code matching the GCD trace encoding.
    pub fn code(&self) -> u8 {
        match self {
            ConstraintOp::Equal(_) => 0,
            ConstraintOp::NotEqual(_) => 1,
            ConstraintOp::LessThan(_) => 2,
            ConstraintOp::GreaterThan(_) => 3,
            ConstraintOp::LessThanEqual(_) => 4,
            ConstraintOp::GreaterThanEqual(_) => 5,
            ConstraintOp::Present => 6,
            ConstraintOp::NotPresent => 7,
        }
    }

    /// True for operators introduced by the clusterdata-2019 format.
    pub fn is_2019_only(&self) -> bool {
        self.code() >= 4
    }

    /// Evaluates the operator against an attribute that is either absent
    /// (`None`) or has the given value. This is the single source of truth
    /// for matching semantics across the workspace.
    pub fn matches(&self, attr: Option<&AttrValue>) -> bool {
        match self {
            ConstraintOp::Equal(Some(v)) => attr == Some(v),
            // "or remain empty if no value is specified"
            ConstraintOp::Equal(None) => attr.is_none(),
            ConstraintOp::NotEqual(v) => attr != Some(v),
            ConstraintOp::LessThan(v) => {
                matches!(attr.and_then(AttrValue::as_int), Some(a) if a < *v)
            }
            ConstraintOp::GreaterThan(v) => {
                matches!(attr.and_then(AttrValue::as_int), Some(a) if a > *v)
            }
            ConstraintOp::LessThanEqual(v) => {
                matches!(attr.and_then(AttrValue::as_int), Some(a) if a <= *v)
            }
            ConstraintOp::GreaterThanEqual(v) => {
                matches!(attr.and_then(AttrValue::as_int), Some(a) if a >= *v)
            }
            ConstraintOp::Present => attr.is_some(),
            ConstraintOp::NotPresent => attr.is_none(),
        }
    }
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintOp::Equal(Some(v)) => write!(f, "= {v}"),
            ConstraintOp::Equal(None) => write!(f, "= (none)"),
            ConstraintOp::NotEqual(v) => write!(f, "<> {v}"),
            ConstraintOp::LessThan(v) => write!(f, "< {v}"),
            ConstraintOp::GreaterThan(v) => write!(f, "> {v}"),
            ConstraintOp::LessThanEqual(v) => write!(f, "<= {v}"),
            ConstraintOp::GreaterThanEqual(v) => write!(f, ">= {v}"),
            ConstraintOp::Present => write!(f, "present"),
            ConstraintOp::NotPresent => write!(f, "not-present"),
        }
    }
}

/// One task constraint: an operator applied to a named node attribute.
/// A task may carry several constraints, all of which must hold on a node
/// for the node to be *suitable*.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskConstraint {
    /// The attribute the constraint applies to.
    pub attr: AttrId,
    /// The operator and its comparison value.
    pub op: ConstraintOp,
}

impl TaskConstraint {
    /// Convenience constructor.
    pub fn new(attr: AttrId, op: ConstraintOp) -> Self {
        Self { attr, op }
    }
}

impl fmt::Display for TaskConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${{{}}} {}", self.attr, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }

    #[test]
    fn equal_matches_value_or_requires_absence() {
        assert!(ConstraintOp::Equal(Some(iv(3))).matches(Some(&iv(3))));
        assert!(!ConstraintOp::Equal(Some(iv(3))).matches(Some(&iv(4))));
        assert!(!ConstraintOp::Equal(Some(iv(3))).matches(None));
        // "or remain empty if no value is specified"
        assert!(ConstraintOp::Equal(None).matches(None));
        assert!(!ConstraintOp::Equal(None).matches(Some(&iv(0))));
    }

    #[test]
    fn equal_works_on_strings() {
        let c = AttrValue::from("c");
        assert!(ConstraintOp::Equal(Some(c.clone())).matches(Some(&c)));
        assert!(!ConstraintOp::Equal(Some(c)).matches(Some(&AttrValue::from("a"))));
    }

    #[test]
    fn not_equal_accepts_absent_attribute() {
        // "The attribute must be absent or differ from the specified constraint"
        assert!(ConstraintOp::NotEqual(iv(1)).matches(None));
        assert!(ConstraintOp::NotEqual(iv(1)).matches(Some(&iv(2))));
        assert!(!ConstraintOp::NotEqual(iv(1)).matches(Some(&iv(1))));
    }

    #[test]
    fn ordering_ops_require_present_numeric() {
        for op in [
            ConstraintOp::LessThan(5),
            ConstraintOp::GreaterThan(5),
            ConstraintOp::LessThanEqual(5),
            ConstraintOp::GreaterThanEqual(5),
        ] {
            assert!(!op.matches(None), "{op} must not match absent attribute");
            assert!(
                !op.matches(Some(&AttrValue::from("5"))),
                "{op} must not match strings"
            );
        }
        assert!(ConstraintOp::LessThan(5).matches(Some(&iv(4))));
        assert!(!ConstraintOp::LessThan(5).matches(Some(&iv(5))));
        assert!(ConstraintOp::LessThanEqual(5).matches(Some(&iv(5))));
        assert!(!ConstraintOp::LessThanEqual(5).matches(Some(&iv(6))));
        assert!(ConstraintOp::GreaterThan(5).matches(Some(&iv(6))));
        assert!(!ConstraintOp::GreaterThan(5).matches(Some(&iv(5))));
        assert!(ConstraintOp::GreaterThanEqual(5).matches(Some(&iv(5))));
        assert!(!ConstraintOp::GreaterThanEqual(5).matches(Some(&iv(4))));
    }

    #[test]
    fn presence_ops() {
        assert!(ConstraintOp::Present.matches(Some(&iv(0))));
        assert!(!ConstraintOp::Present.matches(None));
        assert!(ConstraintOp::NotPresent.matches(None));
        assert!(!ConstraintOp::NotPresent.matches(Some(&AttrValue::from("x"))));
    }

    #[test]
    fn codes_match_trace_encoding_and_2019_split() {
        assert_eq!(ConstraintOp::Equal(None).code(), 0);
        assert_eq!(ConstraintOp::NotPresent.code(), 7);
        assert!(!ConstraintOp::GreaterThan(1).is_2019_only());
        assert!(ConstraintOp::Present.is_2019_only());
        assert!(ConstraintOp::LessThanEqual(1).is_2019_only());
    }

    #[test]
    fn le_equals_lt_of_successor_on_integers() {
        // The compaction logic relies on <=v ≡ <v+1 for integer attributes.
        for a in -3..8 {
            let le = ConstraintOp::LessThanEqual(4).matches(Some(&iv(a)));
            let lt = ConstraintOp::LessThan(5).matches(Some(&iv(a)));
            assert_eq!(le, lt, "mismatch at {a}");
        }
    }
}
