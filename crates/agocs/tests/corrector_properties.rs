//! Property tests: the corrector's postconditions hold on any generated
//! trace — after correction no update precedes its task's submission, and
//! replay never leaks task markers.

use proptest::prelude::*;

use ctlm_agocs::{correct_stream, Replayer};
use ctlm_trace::{CellSet, EventPayload, Scale, TraceGenerator};

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn corrected_streams_have_no_mistimed_updates(seed in 0u64..1_000) {
        let trace = TraceGenerator::generate_cell(
            CellSet::C2019c,
            Scale { machines: 60, collections: 120, seed },
        );
        let (events, report) = correct_stream(&trace.events);
        let mut submit: std::collections::HashMap<u64, u64> = Default::default();
        for ev in &events {
            if let EventPayload::TaskSubmit(t) = &ev.payload {
                submit.insert(t.id, ev.time);
            }
        }
        for ev in &events {
            if let EventPayload::TaskUpdate { task, .. } = &ev.payload {
                prop_assert!(
                    ev.time > submit[task] || ev.time >= submit[task],
                    "update at {} before submit at {}",
                    ev.time,
                    submit[task]
                );
                prop_assert!(ev.time >= submit[task]);
            }
        }
        // The corrector fixes exactly the injected mistimed updates.
        let injected = trace.anomalies.count(ctlm_trace::anomaly::AnomalyKind::MistimedUpdate);
        prop_assert_eq!(report.mistimed_updates_fixed, injected);
    }

    #[test]
    fn replay_never_leaks_markers(seed in 0u64..1_000) {
        let trace = TraceGenerator::generate_cell(
            CellSet::C2019a,
            Scale { machines: 60, collections: 120, seed },
        );
        let out = Replayer::default().replay(&trace);
        prop_assert_eq!(out.markers_leaked, 0);
        // Labels are always valid group indices.
        if let Some(last) = out.steps.last() {
            prop_assert!(last.vv.y.iter().all(|&y| y < 26));
        }
    }
}
