//! Property tests: the inverted attribute index answers every constraint
//! query exactly like the retained linear scan — over randomized
//! clusters, constraint sets, and machine churn (add / remove / attribute
//! update) interleaved with the queries.

use proptest::prelude::*;

use ctlm_agocs::matcher::{count_suitable_linear, suitable_machines_linear};
use ctlm_agocs::{count_suitable, suitable_machines, ClusterState};
use ctlm_data::compaction::collapse;
use ctlm_trace::{AttrValue, ConstraintOp as Op, Machine, TaskConstraint};

fn arb_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (-3i64..12).prop_map(AttrValue::Int),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(AttrValue::from),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_value().prop_map(|v| Op::Equal(Some(v))),
        Just(Op::Equal(None)),
        arb_value().prop_map(Op::NotEqual),
        (-3i64..12).prop_map(Op::LessThan),
        (-3i64..12).prop_map(Op::GreaterThan),
        (-3i64..12).prop_map(Op::LessThanEqual),
        (-3i64..12).prop_map(Op::GreaterThanEqual),
        Just(Op::Present),
        Just(Op::NotPresent),
    ]
}

/// Builds a cluster from a compact description: each machine gets a
/// subset of attributes 0..3 with values drawn from the same pool the
/// constraints use.
fn build_cluster(spec: &[(u64, Vec<(u32, AttrValue)>)]) -> ClusterState {
    let mut s = ClusterState::new();
    for (id, attrs) in spec {
        let mut m = Machine::new(*id, 0.5, 0.5);
        for (a, v) in attrs {
            m.set_attr(*a, v.clone());
        }
        s.add_machine(m);
    }
    s
}

fn arb_machine_attrs() -> impl Strategy<Value = Vec<(u32, AttrValue)>> {
    prop::collection::vec((0u32..3, arb_value()), 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Indexed counting and listing agree with the linear scan for any
    /// cluster and any collapsible constraint set.
    #[test]
    fn index_matches_linear_scan(
        machines in prop::collection::vec(arb_machine_attrs(), 0..40),
        ops_a in prop::collection::vec(arb_op(), 0..4),
        ops_b in prop::collection::vec(arb_op(), 0..3),
    ) {
        let spec: Vec<(u64, Vec<(u32, AttrValue)>)> =
            machines.into_iter().enumerate().map(|(i, a)| (i as u64, a)).collect();
        let state = build_cluster(&spec);
        // Two attributes' worth of constraints, collapsed together.
        let cs: Vec<TaskConstraint> = ops_a
            .into_iter()
            .map(|op| TaskConstraint::new(0, op))
            .chain(ops_b.into_iter().map(|op| TaskConstraint::new(1, op)))
            .collect();
        if let Ok(reqs) = collapse(&cs) {
            prop_assert_eq!(
                count_suitable(&state, &reqs),
                count_suitable_linear(&state, &reqs),
                "count diverged for {:?}", &reqs
            );
            prop_assert_eq!(
                suitable_machines(&state, &reqs),
                suitable_machines_linear(&state, &reqs),
                "listing diverged for {:?}", &reqs
            );
        }
    }

    /// The incrementally maintained index stays exact through machine
    /// churn: removals, attribute overwrites, attribute clears, and
    /// machine replacement.
    #[test]
    fn index_survives_churn(
        machines in prop::collection::vec(arb_machine_attrs(), 1..30),
        churn in prop::collection::vec((0u64..30, 0u32..4, arb_value()), 0..25),
        ops in prop::collection::vec(arb_op(), 1..4),
    ) {
        let spec: Vec<(u64, Vec<(u32, AttrValue)>)> =
            machines.into_iter().enumerate().map(|(i, a)| (i as u64, a)).collect();
        let mut state = build_cluster(&spec);
        for (id, action, value) in churn {
            match action {
                0 => {
                    state.remove_machine(id);
                }
                1 => {
                    // Replace (or insert) the whole machine.
                    let mut m = Machine::new(id, 0.5, 0.5);
                    m.set_attr(0, value);
                    state.add_machine(m);
                }
                2 => {
                    state.update_attr(id, 1, Some(value));
                }
                _ => {
                    state.update_attr(id, 1, None);
                }
            }
        }
        let cs: Vec<TaskConstraint> =
            ops.into_iter().map(|op| TaskConstraint::new(1, op)).collect();
        if let Ok(reqs) = collapse(&cs) {
            prop_assert_eq!(
                suitable_machines(&state, &reqs),
                suitable_machines_linear(&state, &reqs),
                "index drifted from cluster after churn"
            );
        }
        prop_assert_eq!(count_suitable(&state, &[]), state.machine_count());
    }
}
