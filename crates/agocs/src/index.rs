//! Inverted attribute index for constraint matching.
//!
//! `count_suitable` is the AGOCS hot loop: every constrained task asks
//! "how many machines satisfy these requirements" against the whole
//! cluster, and the seed implementation re-scanned every machine per
//! task. This index inverts the cluster: for every attribute it keeps
//!
//! * `present` — which machines define the attribute,
//! * `by_value` — exact-value postings (`value → machines`),
//! * `by_int` — an ordered map over numeric values for range queries,
//! * `value_of` — each machine's current value (O(1) requirement
//!   re-checks without touching the `Machine` itself),
//!
//! plus the set of all live machines. A query materialises candidates
//! from its most selective requirement — equality and range postings are
//! usually tiny — and verifies the remaining requirements via `value_of`
//! lookups, so matching cost scales with the answer size rather than the
//! cluster size. All-negative queries (not-present / not-equal only)
//! still walk the full machine set once, exactly like the linear scan
//! they replace.
//!
//! The index is maintained incrementally by
//! [`ClusterState`](crate::state::ClusterState) and
//! `ctlm_sched::SchedCluster` on machine add/remove and attribute
//! updates; `tests/index_properties.rs` pins it to the retained linear
//! scan over randomized clusters and constraint sets.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ctlm_data::compaction::{AttrRequirement, Presence};
use ctlm_trace::{AttrId, AttrValue, Machine, MachineId};

/// Per-attribute postings.
#[derive(Clone, Debug, Default)]
struct AttrPostings {
    /// Machines that define this attribute.
    present: BTreeSet<MachineId>,
    /// Exact-value postings.
    by_value: HashMap<AttrValue, BTreeSet<MachineId>>,
    /// Numeric-value postings ordered for range queries.
    by_int: BTreeMap<i64, BTreeSet<MachineId>>,
    /// Current value per machine (requirement re-checks).
    value_of: HashMap<MachineId, AttrValue>,
}

impl AttrPostings {
    fn insert(&mut self, id: MachineId, value: &AttrValue) {
        self.present.insert(id);
        self.by_value.entry(value.clone()).or_default().insert(id);
        if let Some(n) = value.as_int() {
            self.by_int.entry(n).or_default().insert(id);
        }
        self.value_of.insert(id, value.clone());
    }

    fn remove(&mut self, id: MachineId) {
        let Some(value) = self.value_of.remove(&id) else {
            return;
        };
        self.present.remove(&id);
        if let Some(set) = self.by_value.get_mut(&value) {
            set.remove(&id);
            if set.is_empty() {
                self.by_value.remove(&value);
            }
        }
        if let Some(n) = value.as_int() {
            if let Some(set) = self.by_int.get_mut(&n) {
                set.remove(&id);
                if set.is_empty() {
                    self.by_int.remove(&n);
                }
            }
        }
    }
}

/// The inverted index over a live cluster. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct AttrIndex {
    all: BTreeSet<MachineId>,
    attrs: HashMap<AttrId, AttrPostings>,
}

impl AttrIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed machines.
    pub fn machine_count(&self) -> usize {
        self.all.len()
    }

    /// Indexes a machine's attributes. The machine must not already be
    /// indexed (callers re-indexing an id remove it first).
    pub fn add_machine(&mut self, m: &Machine) {
        debug_assert!(!self.all.contains(&m.id), "machine {} double-indexed", m.id);
        self.all.insert(m.id);
        for (attr, value) in &m.attributes {
            self.attrs.entry(*attr).or_default().insert(m.id, value);
        }
    }

    /// Removes a machine from every posting.
    pub fn remove_machine(&mut self, id: MachineId) {
        if !self.all.remove(&id) {
            return;
        }
        for postings in self.attrs.values_mut() {
            postings.remove(id);
        }
    }

    /// Applies one attribute update (`None` clears the attribute).
    pub fn update_attr(&mut self, id: MachineId, attr: AttrId, value: Option<&AttrValue>) {
        let postings = self.attrs.entry(attr).or_default();
        postings.remove(id);
        if let Some(v) = value {
            postings.insert(id, v);
        }
    }

    /// The attribute state the index holds for `(machine, attr)`.
    fn state_of(&self, id: MachineId, attr: AttrId) -> Option<&AttrValue> {
        self.attrs.get(&attr).and_then(|p| p.value_of.get(&id))
    }

    /// Estimated candidate count for one requirement (cheap, used to pick
    /// the seed requirement for a query).
    fn selectivity(&self, req: &AttrRequirement) -> usize {
        let Some(postings) = self.attrs.get(&req.attr) else {
            // Unindexed attribute: no machine defines it.
            return match req.presence {
                Presence::Forbidden => self.all.len(),
                _ if req.equal.is_none() && req.lo.is_none() && req.hi.is_none() => {
                    // Pure exclusions on an undefined attribute match all.
                    self.all.len()
                }
                _ => 0,
            };
        };
        if let Some(eq) = &req.equal {
            return postings.by_value.get(eq).map_or(0, BTreeSet::len);
        }
        if req.lo.is_some() || req.hi.is_some() {
            let lo = req.lo.unwrap_or(i64::MIN);
            let hi = req.hi.unwrap_or(i64::MAX);
            return postings.by_int.range(lo..=hi).map(|(_, s)| s.len()).sum();
        }
        match req.presence {
            Presence::Required => postings.present.len(),
            Presence::Forbidden => self.all.len() - postings.present.len(),
            Presence::Any => self.all.len(),
        }
    }

    /// Materialises the sorted candidate list for one requirement.
    fn candidates(&self, req: &AttrRequirement, out: &mut Vec<MachineId>) {
        out.clear();
        let postings = self.attrs.get(&req.attr);
        if let Some(eq) = &req.equal {
            if let Some(set) = postings.and_then(|p| p.by_value.get(eq)) {
                out.extend(set.iter().copied());
            }
            return;
        }
        if req.lo.is_some() || req.hi.is_some() {
            let Some(p) = postings else { return };
            let lo = req.lo.unwrap_or(i64::MIN);
            let hi = req.hi.unwrap_or(i64::MAX);
            for (n, set) in p.by_int.range(lo..=hi) {
                if !req.excluded.contains(&AttrValue::Int(*n)) {
                    out.extend(set.iter().copied());
                }
            }
            out.sort_unstable();
            return;
        }
        match req.presence {
            Presence::Required => {
                if let Some(p) = postings {
                    out.extend(
                        p.present.iter().copied().filter(|id| {
                            p.value_of.get(id).is_none_or(|v| !req.excluded.contains(v))
                        }),
                    );
                }
            }
            Presence::Forbidden => match postings {
                Some(p) => out.extend(self.all.difference(&p.present).copied()),
                None => out.extend(self.all.iter().copied()),
            },
            Presence::Any => {
                // Exclusion-only requirement: everything except the
                // machines holding an excluded value.
                out.extend(self.all.iter().copied().filter(|id| {
                    self.state_of(*id, req.attr)
                        .is_none_or(|v| !req.excluded.contains(v))
                }));
            }
        }
    }

    /// Estimated result size for a requirement set: the candidate count
    /// of its most selective requirement (an upper bound on the true
    /// match count). Callers use it to pick between candidate-driven and
    /// state-driven query plans.
    pub fn selectivity_hint(&self, reqs: &[AttrRequirement]) -> usize {
        reqs.iter()
            .map(|r| self.selectivity(r))
            .min()
            .unwrap_or(self.all.len())
    }

    /// True when the machine's indexed attribute state satisfies every
    /// requirement — the O(|reqs|) point query the scheduler's
    /// capacity-ordered placement scan issues per candidate.
    pub fn matches(&self, id: MachineId, reqs: &[AttrRequirement]) -> bool {
        reqs.iter().all(|r| r.accepts(self.state_of(id, r.attr)))
    }

    /// Streams the candidates of one requirement to `f` (unsorted);
    /// returns false if `f` stopped the walk.
    fn candidates_visit(
        &self,
        req: &AttrRequirement,
        f: &mut impl FnMut(MachineId) -> bool,
    ) -> bool {
        let postings = self.attrs.get(&req.attr);
        if let Some(eq) = &req.equal {
            if let Some(set) = postings.and_then(|p| p.by_value.get(eq)) {
                for &id in set {
                    if !f(id) {
                        return false;
                    }
                }
            }
            return true;
        }
        if req.lo.is_some() || req.hi.is_some() {
            let Some(p) = postings else { return true };
            let lo = req.lo.unwrap_or(i64::MIN);
            let hi = req.hi.unwrap_or(i64::MAX);
            for (n, set) in p.by_int.range(lo..=hi) {
                if !req.excluded.contains(&AttrValue::Int(*n)) {
                    for &id in set {
                        if !f(id) {
                            return false;
                        }
                    }
                }
            }
            return true;
        }
        match req.presence {
            Presence::Required => {
                if let Some(p) = postings {
                    for &id in &p.present {
                        if p.value_of
                            .get(&id)
                            .is_none_or(|v| !req.excluded.contains(v))
                            && !f(id)
                        {
                            return false;
                        }
                    }
                }
            }
            Presence::Forbidden => match postings {
                Some(p) => {
                    for id in self.all.difference(&p.present) {
                        if !f(*id) {
                            return false;
                        }
                    }
                }
                None => {
                    for &id in &self.all {
                        if !f(id) {
                            return false;
                        }
                    }
                }
            },
            Presence::Any => {
                for &id in &self.all {
                    if self
                        .state_of(id, req.attr)
                        .is_none_or(|v| !req.excluded.contains(v))
                        && !f(id)
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Streams every machine satisfying the requirements to `f`, without
    /// materialising a candidate list — the placement hot loop's
    /// allocation-free form of [`AttrIndex::matching`].
    ///
    /// Visit **order is unspecified** (unlike `matching`, candidates are
    /// not sorted); each matching machine is visited exactly once.
    /// `f` returns `false` to stop early; `matching_visit` returns
    /// `false` when it was stopped.
    pub fn matching_visit(
        &self,
        reqs: &[AttrRequirement],
        mut f: impl FnMut(MachineId) -> bool,
    ) -> bool {
        if reqs.is_empty() {
            for &id in &self.all {
                if !f(id) {
                    return false;
                }
            }
            return true;
        }
        let seed = reqs
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| self.selectivity(r))
            .map(|(i, _)| i)
            .expect("non-empty requirements");
        self.candidates_visit(&reqs[seed], &mut |id| {
            let ok = reqs
                .iter()
                .enumerate()
                .all(|(i, r)| i == seed || r.accepts(self.state_of(id, r.attr)));
            if ok {
                f(id)
            } else {
                true
            }
        })
    }

    /// True when at least one machine satisfies every requirement
    /// (early-exits on the first hit).
    pub fn matches_any(&self, reqs: &[AttrRequirement]) -> bool {
        !self.matching_visit(reqs, |_| false)
    }

    /// Sorted ids of machines satisfying every requirement.
    pub fn matching(&self, reqs: &[AttrRequirement]) -> Vec<MachineId> {
        let mut out = Vec::new();
        self.matching_into(reqs, &mut out);
        out
    }

    /// [`AttrIndex::matching`] into a caller-provided buffer (the
    /// scheduler's placement loop runs this per task).
    pub fn matching_into(&self, reqs: &[AttrRequirement], out: &mut Vec<MachineId>) {
        out.clear();
        if reqs.is_empty() {
            out.extend(self.all.iter().copied());
            return;
        }
        // Seed with the most selective requirement, verify the rest.
        let seed = reqs
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| self.selectivity(r))
            .map(|(i, _)| i)
            .expect("non-empty requirements");
        self.candidates(&reqs[seed], out);
        out.retain(|&id| {
            reqs.iter()
                .enumerate()
                .all(|(i, r)| i == seed || r.accepts(self.state_of(id, r.attr)))
        });
    }

    /// Number of machines satisfying every requirement — streamed, so
    /// counting (the AGOCS ground-truth hot loop) never allocates.
    pub fn count_matching(&self, reqs: &[AttrRequirement]) -> usize {
        if reqs.is_empty() {
            return self.all.len();
        }
        let mut n = 0usize;
        self.matching_visit(reqs, |_| {
            n += 1;
            true
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_data::compaction::collapse;
    use ctlm_trace::{ConstraintOp as Op, TaskConstraint};

    fn indexed_cluster() -> (AttrIndex, Vec<Machine>) {
        let mut index = AttrIndex::new();
        let mut machines = Vec::new();
        for i in 0..12u64 {
            let mut m = Machine::new(i, 0.5, 0.5);
            m.set_attr(0, AttrValue::Int(i as i64));
            if i % 2 == 0 {
                m.set_attr(1, AttrValue::Int(1));
            }
            m.set_attr(2, AttrValue::from(["a", "b", "c"][(i % 3) as usize]));
            index.add_machine(&m);
            machines.push(m);
        }
        (index, machines)
    }

    fn reqs(cs: &[TaskConstraint]) -> Vec<AttrRequirement> {
        collapse(cs).unwrap()
    }

    #[test]
    fn equality_and_range_queries_match_scan() {
        let (index, machines) = indexed_cluster();
        for cs in [
            vec![TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(4))))],
            vec![
                TaskConstraint::new(0, Op::GreaterThanEqual(3)),
                TaskConstraint::new(0, Op::LessThan(9)),
            ],
            vec![TaskConstraint::new(1, Op::Present)],
            vec![TaskConstraint::new(1, Op::NotPresent)],
            vec![TaskConstraint::new(2, Op::NotEqual(AttrValue::from("b")))],
            vec![
                TaskConstraint::new(0, Op::LessThan(8)),
                TaskConstraint::new(1, Op::Present),
                TaskConstraint::new(2, Op::Equal(Some(AttrValue::from("a")))),
            ],
        ] {
            let r = reqs(&cs);
            let scan: Vec<MachineId> = machines
                .iter()
                .filter(|m| r.iter().all(|req| req.accepts(m.attr(req.attr))))
                .map(|m| m.id)
                .collect();
            assert_eq!(index.matching(&r), scan, "constraints {cs:?}");
            assert_eq!(index.count_matching(&r), scan.len());
        }
    }

    #[test]
    fn empty_requirements_match_every_machine() {
        let (index, machines) = indexed_cluster();
        assert_eq!(index.count_matching(&[]), machines.len());
    }

    #[test]
    fn removal_and_update_stay_consistent() {
        let (mut index, _) = indexed_cluster();
        let window = reqs(&[TaskConstraint::new(0, Op::LessThan(6))]);
        assert_eq!(index.count_matching(&window), 6);
        index.remove_machine(3);
        assert_eq!(index.count_matching(&window), 5);
        // Move machine 5's node index out of the window.
        index.update_attr(5, 0, Some(&AttrValue::Int(50)));
        assert_eq!(index.count_matching(&window), 4);
        // Clear it entirely: ranges imply presence, so it cannot match.
        index.update_attr(5, 0, None);
        assert_eq!(index.count_matching(&window), 4);
        assert_eq!(index.machine_count(), 11);
    }

    #[test]
    fn unindexed_attribute_behaves_as_absent_everywhere() {
        let (index, machines) = indexed_cluster();
        let absent = reqs(&[TaskConstraint::new(9, Op::NotPresent)]);
        assert_eq!(index.count_matching(&absent), machines.len());
        let present = reqs(&[TaskConstraint::new(9, Op::Present)]);
        assert_eq!(index.count_matching(&present), 0);
        let excl = reqs(&[TaskConstraint::new(9, Op::NotEqual(AttrValue::Int(1)))]);
        assert_eq!(index.count_matching(&excl), machines.len());
    }

    #[test]
    fn streaming_visit_matches_materialised_set() {
        let (index, _) = indexed_cluster();
        for cs in [
            vec![],
            vec![TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(4))))],
            vec![
                TaskConstraint::new(0, Op::GreaterThanEqual(3)),
                TaskConstraint::new(0, Op::LessThan(9)),
            ],
            vec![TaskConstraint::new(1, Op::NotPresent)],
            vec![TaskConstraint::new(2, Op::NotEqual(AttrValue::from("b")))],
            vec![
                TaskConstraint::new(0, Op::LessThan(8)),
                TaskConstraint::new(1, Op::Present),
            ],
        ] {
            let r = reqs(&cs);
            let mut streamed = Vec::new();
            let done = index.matching_visit(&r, |id| {
                streamed.push(id);
                true
            });
            assert!(done);
            streamed.sort_unstable();
            assert_eq!(streamed, index.matching(&r), "constraints {cs:?}");
            assert_eq!(index.count_matching(&r), streamed.len());
            for id in 0..12 {
                assert_eq!(
                    index.matches(id, &r),
                    streamed.contains(&id),
                    "point query for {id} under {cs:?}"
                );
            }
        }
    }

    #[test]
    fn streaming_visit_early_exit_stops_the_walk() {
        let (index, _) = indexed_cluster();
        let mut seen = 0;
        let done = index.matching_visit(&[], |_| {
            seen += 1;
            seen < 3
        });
        assert!(!done, "stopped walks report false");
        assert_eq!(seen, 3);
        assert!(index.matches_any(&[]));
        let impossible = reqs(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(99))))]);
        assert!(!index.matches_any(&impossible));
    }

    #[test]
    fn range_with_interior_exclusion_skips_the_posting() {
        let (index, _) = indexed_cluster();
        // 2 ≤ node < 7 excluding 4 → {2, 3, 5, 6}.
        let r = reqs(&[
            TaskConstraint::new(0, Op::GreaterThanEqual(2)),
            TaskConstraint::new(0, Op::LessThan(7)),
            TaskConstraint::new(0, Op::NotEqual(AttrValue::Int(4))),
        ]);
        assert_eq!(index.matching(&r), vec![2, 3, 5, 6]);
    }
}
