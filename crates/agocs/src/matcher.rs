//! Constraint matching — the task-to-machine suitability engine.
//!
//! “The key elements of AGOCS include … matching tasks to available
//! machines based on task constraints. The logic behind this matching is
//! the focus of this investigation.” Counting the suitable machines for a
//! task produces the ground-truth group label every model trains against.

use rayon::prelude::*;

use ctlm_data::compaction::AttrRequirement;
use ctlm_trace::Machine;

use crate::state::ClusterState;

/// Machines below this population are scanned sequentially by the
/// *linear* reference path; above it that scan parallelises with Rayon
/// (the per-machine predicate is pure). Deliberately higher than
/// `ctlm_tensor::ops::PAR_THRESHOLD` (64): a constraint check is a few
/// nanoseconds per machine, so thread dispatch amortises much later than
/// for a GEMM row. The production path ([`count_suitable`]) uses the
/// inverted [`crate::index::AttrIndex`] instead and has no threshold —
/// its cost scales with the answer, not the cluster.
pub const PAR_THRESHOLD: usize = 1024;

/// Evaluates collapsed requirements against one machine.
pub fn machine_suitable(machine: &Machine, reqs: &[AttrRequirement]) -> bool {
    reqs.iter().all(|r| r.accepts(machine.attr(r.attr)))
}

/// Counts the machines in the cluster satisfying every requirement,
/// answering from the cluster's inverted attribute index.
pub fn count_suitable(state: &ClusterState, reqs: &[AttrRequirement]) -> usize {
    state.index().count_matching(reqs)
}

/// Lists the ids of suitable machines in ascending order (used by the
/// scheduler crate, which needs the actual candidate set, not just its
/// size).
pub fn suitable_machines(state: &ClusterState, reqs: &[AttrRequirement]) -> Vec<u64> {
    state.index().matching(reqs)
}

/// Pre-index reference: counts suitable machines by scanning the fleet.
/// Retained as the equivalence oracle for the index property tests and
/// the `matching` bench (measured against [`count_suitable`] in the same
/// run).
pub fn count_suitable_linear(state: &ClusterState, reqs: &[AttrRequirement]) -> usize {
    if reqs.is_empty() {
        return state.machine_count();
    }
    let machines = state.machines_vec();
    if machines.len() >= PAR_THRESHOLD {
        machines
            .par_iter()
            .filter(|m| machine_suitable(m, reqs))
            .count()
    } else {
        machines
            .iter()
            .filter(|m| machine_suitable(m, reqs))
            .count()
    }
}

/// Pre-index reference for [`suitable_machines`] (ascending ids).
pub fn suitable_machines_linear(state: &ClusterState, reqs: &[AttrRequirement]) -> Vec<u64> {
    state
        .machines()
        .filter(|m| machine_suitable(m, reqs))
        .map(|m| m.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_data::compaction::collapse;
    use ctlm_trace::{AttrValue, ConstraintOp as Op, Machine, TaskConstraint};

    /// A 10-machine cluster with node_index 0..9 (attr 0) and a "gpu"
    /// attribute (attr 1) on even machines.
    fn cluster() -> ClusterState {
        let mut s = ClusterState::new();
        for i in 0..10u64 {
            let mut m = Machine::new(i, 0.5, 0.5);
            m.set_attr(0, AttrValue::Int(i as i64));
            if i % 2 == 0 {
                m.set_attr(1, AttrValue::Int(1));
            }
            s.add_machine(m);
        }
        s
    }

    fn reqs(cs: &[TaskConstraint]) -> Vec<AttrRequirement> {
        collapse(cs).unwrap()
    }

    #[test]
    fn empty_requirements_match_all() {
        let s = cluster();
        assert_eq!(count_suitable(&s, &[]), 10);
    }

    #[test]
    fn window_constraint_counts_exactly() {
        let s = cluster();
        let r = reqs(&[
            TaskConstraint::new(0, Op::GreaterThanEqual(2)),
            TaskConstraint::new(0, Op::LessThan(7)),
        ]);
        assert_eq!(count_suitable(&s, &r), 5); // indices 2..=6
    }

    #[test]
    fn equal_constraint_selects_single_machine() {
        let s = cluster();
        let r = reqs(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(4))))]);
        assert_eq!(count_suitable(&s, &r), 1);
        assert_eq!(suitable_machines(&s, &r), vec![4]);
    }

    #[test]
    fn presence_constraints() {
        let s = cluster();
        let present = reqs(&[TaskConstraint::new(1, Op::Present)]);
        assert_eq!(count_suitable(&s, &present), 5);
        let absent = reqs(&[TaskConstraint::new(1, Op::NotPresent)]);
        assert_eq!(count_suitable(&s, &absent), 5);
    }

    #[test]
    fn conjunction_intersects() {
        let s = cluster();
        let r = reqs(&[
            TaskConstraint::new(0, Op::LessThan(6)),
            TaskConstraint::new(1, Op::Present),
        ]);
        // indices 0..5 with gpu: 0, 2, 4.
        assert_eq!(count_suitable(&s, &r), 3);
    }

    #[test]
    fn machine_churn_changes_counts() {
        let mut s = cluster();
        let r = reqs(&[TaskConstraint::new(0, Op::LessThan(5))]);
        assert_eq!(count_suitable(&s, &r), 5);
        s.remove_machine(3);
        assert_eq!(count_suitable(&s, &r), 4);
    }

    #[test]
    fn parallel_path_agrees_with_sequential() {
        // Build a cluster straddling the parallel threshold and compare
        // both paths via the public API (the threshold is internal, so we
        // compare against a manual sequential count).
        let mut s = ClusterState::new();
        for i in 0..2000u64 {
            let mut m = Machine::new(i, 0.5, 0.5);
            m.set_attr(0, AttrValue::Int(i as i64));
            s.add_machine(m);
        }
        let r = reqs(&[TaskConstraint::new(0, Op::LessThan(1234))]);
        let manual = s.machines().filter(|m| machine_suitable(m, &r)).count();
        assert_eq!(count_suitable(&s, &r), manual);
        assert_eq!(manual, 1234);
    }
}
