//! Workload statistics — the Table IX reproduction.
//!
//! Table IX reports, per GCD archive, the distribution of tasks with
//! constraint operators by volume, requested CPU and requested memory:
//! min / max / average across the trace. We compute those ratios over
//! daily windows (the min/max spread comes from the workload's seasonal
//! swing) and aggregate.

use serde::{Deserialize, Serialize};

use ctlm_trace::event::MICROS_PER_DAY;
use ctlm_trace::Micros;

/// Aggregated min/max/avg triple for one metric.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MinMaxAvg {
    /// Smallest windowed ratio.
    pub min: f64,
    /// Largest windowed ratio.
    pub max: f64,
    /// Mean across windows (weighted by window totals).
    pub avg: f64,
}

/// The Table IX row for one cell.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoDistribution {
    /// Tasks with CO by volume (count share).
    pub by_volume: MinMaxAvg,
    /// Tasks with CO by requested CPU share.
    pub by_cpu: MinMaxAvg,
    /// Tasks with CO by requested memory share.
    pub by_memory: MinMaxAvg,
}

#[derive(Clone, Copy, Debug, Default)]
struct Window {
    tasks: u64,
    co_tasks: u64,
    cpu: f64,
    co_cpu: f64,
    mem: f64,
    co_mem: f64,
}

/// Streaming collector: feed every task submission, then aggregate.
#[derive(Clone, Debug)]
pub struct CoStatsCollector {
    window_len: Micros,
    windows: Vec<Window>,
}

impl CoStatsCollector {
    /// Collector with daily windows (Table IX's granularity).
    pub fn daily() -> Self {
        Self::with_window(MICROS_PER_DAY)
    }

    /// Collector with a custom window length.
    ///
    /// # Panics
    /// Panics if `window_len == 0`.
    pub fn with_window(window_len: Micros) -> Self {
        assert!(window_len > 0, "window length must be positive");
        Self {
            window_len,
            windows: Vec::new(),
        }
    }

    /// Records one task submission.
    pub fn record(&mut self, time: Micros, cpu: f64, memory: f64, has_co: bool) {
        let w = (time / self.window_len) as usize;
        if w >= self.windows.len() {
            self.windows.resize(w + 1, Window::default());
        }
        let win = &mut self.windows[w];
        win.tasks += 1;
        win.cpu += cpu;
        win.mem += memory;
        if has_co {
            win.co_tasks += 1;
            win.co_cpu += cpu;
            win.co_mem += memory;
        }
    }

    /// Number of non-empty windows recorded.
    pub fn window_count(&self) -> usize {
        self.windows.iter().filter(|w| w.tasks > 0).count()
    }

    /// Aggregates into the Table IX row.
    ///
    /// # Panics
    /// Panics if no task was recorded.
    pub fn distribution(&self) -> CoDistribution {
        let live: Vec<&Window> = self.windows.iter().filter(|w| w.tasks > 0).collect();
        assert!(!live.is_empty(), "no tasks recorded");
        let agg = |num: fn(&Window) -> f64, den: fn(&Window) -> f64| -> MinMaxAvg {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut num_total = 0.0;
            let mut den_total = 0.0;
            for w in &live {
                let d = den(w);
                if d <= 0.0 {
                    continue;
                }
                let r = num(w) / d;
                min = min.min(r);
                max = max.max(r);
                num_total += num(w);
                den_total += d;
            }
            MinMaxAvg {
                min,
                max,
                avg: num_total / den_total,
            }
        };
        CoDistribution {
            by_volume: agg(|w| w.co_tasks as f64, |w| w.tasks as f64),
            by_cpu: agg(|w| w.co_cpu, |w| w.cpu),
            by_memory: agg(|w| w.co_mem, |w| w.mem),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_window_ratios() {
        let mut c = CoStatsCollector::with_window(100);
        c.record(0, 1.0, 2.0, true);
        c.record(10, 1.0, 2.0, false);
        let d = c.distribution();
        assert_eq!(d.by_volume.avg, 0.5);
        assert_eq!(d.by_cpu.avg, 0.5);
        assert_eq!(d.by_memory.avg, 0.5);
        assert_eq!(d.by_volume.min, d.by_volume.max);
    }

    #[test]
    fn min_max_span_windows() {
        let mut c = CoStatsCollector::with_window(100);
        // Window 0: all constrained. Window 1: none.
        c.record(0, 1.0, 1.0, true);
        c.record(150, 1.0, 1.0, false);
        let d = c.distribution();
        assert_eq!(d.by_volume.min, 0.0);
        assert_eq!(d.by_volume.max, 1.0);
        assert_eq!(d.by_volume.avg, 0.5);
    }

    #[test]
    fn cpu_weighting_differs_from_volume() {
        let mut c = CoStatsCollector::with_window(100);
        // One heavy constrained task, nine light unconstrained ones.
        c.record(0, 0.9, 0.9, true);
        for _ in 0..9 {
            c.record(1, 0.01, 0.01, false);
        }
        let d = c.distribution();
        assert!((d.by_volume.avg - 0.1).abs() < 1e-9);
        assert!(d.by_cpu.avg > 0.9, "heavy task dominates CPU share");
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut c = CoStatsCollector::with_window(10);
        c.record(0, 1.0, 1.0, true);
        c.record(1000, 1.0, 1.0, true); // 99 empty windows between
        assert_eq!(c.window_count(), 2);
        let d = c.distribution();
        assert_eq!(d.by_volume.avg, 1.0);
    }

    #[test]
    #[should_panic(expected = "no tasks recorded")]
    fn empty_collector_panics() {
        let _ = CoStatsCollector::daily().distribution();
    }
}
