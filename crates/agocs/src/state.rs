//! Cluster state during replay.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ctlm_trace::{AttrId, AttrValue, CollectionId, Machine, MachineId, TaskId};

use crate::index::AttrIndex;

/// The live cluster: machines with their attribute maps, plus the task
/// markers AGOCS tracks (which tasks are known to the cell, grouped by
/// collection so collection termination can clean them up). An
/// [`AttrIndex`] is maintained incrementally alongside the machine map,
/// so constraint matching never has to scan the fleet.
#[derive(Clone, Debug, Default)]
pub struct ClusterState {
    machines: BTreeMap<MachineId, Machine>,
    index: AttrIndex,
    /// Task markers per collection — the structures the paper's corrector
    /// deletes when a terminated collection finishes.
    tasks_by_collection: HashMap<CollectionId, BTreeSet<TaskId>>,
    task_owner: HashMap<TaskId, CollectionId>,
}

impl ClusterState {
    /// Empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Iterates live machines.
    pub fn machines(&self) -> impl Iterator<Item = &Machine> {
        self.machines.values()
    }

    /// Live machines as a slice-friendly Vec of references (for Rayon).
    pub fn machines_vec(&self) -> Vec<&Machine> {
        self.machines.values().collect()
    }

    /// A machine by id.
    pub fn machine(&self, id: MachineId) -> Option<&Machine> {
        self.machines.get(&id)
    }

    /// The incrementally maintained inverted attribute index.
    pub fn index(&self) -> &AttrIndex {
        &self.index
    }

    /// Adds (or replaces) a machine.
    pub fn add_machine(&mut self, m: Machine) {
        if self.machines.contains_key(&m.id) {
            self.index.remove_machine(m.id);
        }
        self.index.add_machine(&m);
        self.machines.insert(m.id, m);
    }

    /// Removes a machine; returns it if present.
    pub fn remove_machine(&mut self, id: MachineId) -> Option<Machine> {
        let removed = self.machines.remove(&id);
        if removed.is_some() {
            self.index.remove_machine(id);
        }
        removed
    }

    /// Applies an attribute update; returns false when the machine is
    /// unknown (removed earlier — the update is stale and ignored).
    pub fn update_attr(&mut self, id: MachineId, attr: AttrId, value: Option<AttrValue>) -> bool {
        match self.machines.get_mut(&id) {
            Some(m) => {
                match value {
                    Some(v) => {
                        self.index.update_attr(id, attr, Some(&v));
                        m.set_attr(attr, v);
                    }
                    None => {
                        self.index.update_attr(id, attr, None);
                        m.remove_attr(attr);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Registers a task marker.
    pub fn add_task_marker(&mut self, task: TaskId, collection: CollectionId) {
        self.tasks_by_collection
            .entry(collection)
            .or_default()
            .insert(task);
        self.task_owner.insert(task, collection);
    }

    /// Removes one task marker (normal termination path). Returns true if
    /// the marker existed.
    pub fn remove_task_marker(&mut self, task: TaskId) -> bool {
        if let Some(col) = self.task_owner.remove(&task) {
            if let Some(set) = self.tasks_by_collection.get_mut(&col) {
                set.remove(&task);
                if set.is_empty() {
                    self.tasks_by_collection.remove(&col);
                }
            }
            true
        } else {
            false
        }
    }

    /// Deletes every remaining marker of a collection (the paper's
    /// synchronisation rule: “terminated collections deleted associated
    /// task markers”). Returns how many markers were swept.
    pub fn sweep_collection(&mut self, collection: CollectionId) -> usize {
        match self.tasks_by_collection.remove(&collection) {
            Some(set) => {
                let n = set.len();
                for t in set {
                    self.task_owner.remove(&t);
                }
                n
            }
            None => 0,
        }
    }

    /// Number of live task markers.
    pub fn live_task_markers(&self) -> usize {
        self.task_owner.len()
    }

    /// True when the task has a live marker.
    pub fn has_task_marker(&self, task: TaskId) -> bool {
        self.task_owner.contains_key(&task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_lifecycle() {
        let mut s = ClusterState::new();
        s.add_machine(Machine::new(1, 0.5, 0.5));
        s.add_machine(Machine::new(2, 1.0, 1.0));
        assert_eq!(s.machine_count(), 2);
        assert!(s.remove_machine(1).is_some());
        assert!(s.remove_machine(1).is_none());
        assert_eq!(s.machine_count(), 1);
    }

    #[test]
    fn stale_attr_update_is_ignored() {
        let mut s = ClusterState::new();
        s.add_machine(Machine::new(1, 0.5, 0.5));
        assert!(s.update_attr(1, 0, Some(AttrValue::Int(3))));
        assert!(!s.update_attr(99, 0, Some(AttrValue::Int(3))));
        assert_eq!(s.machine(1).unwrap().attr(0), Some(&AttrValue::Int(3)));
        assert!(s.update_attr(1, 0, None));
        assert_eq!(s.machine(1).unwrap().attr(0), None);
    }

    #[test]
    fn task_markers_follow_collections() {
        let mut s = ClusterState::new();
        s.add_task_marker(10, 1);
        s.add_task_marker(11, 1);
        s.add_task_marker(20, 2);
        assert_eq!(s.live_task_markers(), 3);
        assert!(s.remove_task_marker(10));
        assert!(!s.remove_task_marker(10), "double-removal must be a no-op");
        assert_eq!(s.sweep_collection(1), 1, "one marker left in collection 1");
        assert_eq!(s.live_task_markers(), 1);
        assert!(s.has_task_marker(20));
    }

    #[test]
    fn sweep_of_unknown_collection_is_zero() {
        let mut s = ClusterState::new();
        assert_eq!(s.sweep_collection(42), 0);
    }
}
