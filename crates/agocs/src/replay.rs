//! Event replay and dataset generation (paper Fig. 1).
//!
//! The replayer walks the corrected event stream, maintains the cluster
//! state, computes each constrained task's ground-truth suitable-node
//! group via the [`matcher`](crate::matcher), and encodes CO-VV / CO-EL
//! dataset rows. Whenever the attribute-value vocabulary grows — the
//! feature array is *extended* — it emits a [`DatasetStep`] snapshot:
//! exactly the retraining points Table XI tabulates.

use serde::{Deserialize, Serialize};

use ctlm_data::dataset::{group_for_count, Dataset, DatasetBuilder, NUM_GROUPS};
use ctlm_data::encode::co_el::CoElEncoder;
use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_data::vocab::ValueVocab;
use ctlm_trace::event::format_day_hour_minute;
use ctlm_trace::{EventPayload, GeneratedTrace, Micros};

use crate::corrector::{correct_stream, CorrectionReport};
use crate::matcher::count_suitable;
use crate::state::ClusterState;
use crate::stats::{CoDistribution, CoStatsCollector};

/// Replay tuning knobs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Rows required before step 0 (the initial model training) is
    /// emitted.
    pub min_rows_for_step0: usize,
    /// Vocabulary growths closer together than this merge into a single
    /// step (the generator emits e.g. a machine batch and a kernel rollout
    /// a microsecond apart; the paper's steps are minutes apart).
    pub step_merge_window: Micros,
    /// Whether to build the CO-EL dataset alongside CO-VV.
    pub build_co_el: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            min_rows_for_step0: 30,
            step_merge_window: 30 * 60 * 1_000_000, // 30 simulated minutes
            build_co_el: true,
        }
    }
}

/// One feature-array-extension step: the cumulative datasets as of the
/// extension, plus the bookkeeping Table XI reports per step.
#[derive(Clone, Debug)]
pub struct DatasetStep {
    /// Step number (0 = initial training).
    pub index: usize,
    /// Simulation time of the extension.
    pub time: Micros,
    /// Table XI-style `day HH:MM` label.
    pub label: String,
    /// CO-VV feature-array width at this step.
    pub features_count: usize,
    /// Columns added since the previous step.
    pub new_features: usize,
    /// Cumulative CO-VV dataset (rows so far, widened to
    /// `features_count`).
    pub vv: Dataset,
    /// Cumulative CO-EL dataset, when enabled.
    pub el: Option<Dataset>,
}

/// Everything a replay produces.
#[derive(Debug)]
pub struct ReplayOutput {
    /// The retraining steps, in time order.
    pub steps: Vec<DatasetStep>,
    /// Table IX statistics for this trace.
    pub stats: CoDistribution,
    /// What the corrector fixed.
    pub correction: CorrectionReport,
    /// Group width used for labelling.
    pub group_width: usize,
    /// Constrained tasks skipped because their constraints contradict
    /// (the paper: rare, logged, ignored).
    pub skipped_contradictions: usize,
    /// Constrained tasks skipped because no machine currently matches
    /// (transiently unschedulable during churn).
    pub skipped_unschedulable: usize,
    /// Rows labelled Group 0 across the whole trace.
    pub group0_rows: usize,
    /// Total dataset rows (constrained tasks encoded).
    pub total_rows: usize,
    /// Task markers swept by collection termination instead of their own
    /// termination event (anomaly (ii) healing).
    pub markers_swept_by_collection: usize,
    /// Task markers left alive after the full replay (should be 0).
    pub markers_leaked: usize,
    /// Final CO-VV vocabulary.
    pub vocab: ValueVocab,
}

/// The replayer. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct Replayer {
    config: ReplayConfig,
}

impl Replayer {
    /// A replayer with custom configuration.
    pub fn new(config: ReplayConfig) -> Self {
        Self { config }
    }

    /// Replays a generated trace into dataset steps and statistics.
    pub fn replay(&self, trace: &GeneratedTrace) -> ReplayOutput {
        let (events, correction) = correct_stream(&trace.events);
        let cfg = &self.config;

        let mut state = ClusterState::new();
        let mut vocab = ValueVocab::new();
        let vv_encoder = CoVvEncoder;
        let mut el_encoder = CoElEncoder::new();
        let mut vv_builder = DatasetBuilder::new(0, NUM_GROUPS);
        let mut el_builder = DatasetBuilder::new(0, NUM_GROUPS);
        let mut stats = CoStatsCollector::daily();

        let mut steps: Vec<DatasetStep> = Vec::new();
        let mut width_at_last_step = 0usize;
        let mut rows_at_last_step = 0usize;
        let mut growth_pending_since: Option<Micros> = None;
        let mut step0_emitted = false;

        let mut skipped_contradictions = 0usize;
        let mut skipped_unschedulable = 0usize;
        let mut group0_rows = 0usize;
        let mut markers_swept = 0usize;

        let emit_step = |time: Micros,
                         vocab: &ValueVocab,
                         vv_builder: &mut DatasetBuilder,
                         el_builder: &mut DatasetBuilder,
                         el_encoder: &CoElEncoder,
                         steps: &mut Vec<DatasetStep>,
                         width_at_last_step: &mut usize,
                         rows_at_last_step: &mut usize| {
            let width = vocab.len();
            vv_builder.widen(width);
            el_builder.widen(el_encoder.len().max(el_builder.cols()));
            let vv = vv_builder.snapshot(width);
            let el = if cfg.build_co_el {
                Some(el_builder.snapshot(el_encoder.len()))
            } else {
                None
            };
            steps.push(DatasetStep {
                index: steps.len(),
                time,
                label: format_day_hour_minute(time),
                features_count: width,
                new_features: width - *width_at_last_step,
                vv,
                el,
            });
            *width_at_last_step = width;
            *rows_at_last_step = vv_builder.len();
        };

        for ev in &events {
            // Flush a pending growth step once the merge window elapses
            // and the initial model exists.
            if let Some(t0) = growth_pending_since {
                if step0_emitted
                    && ev.time > t0 + cfg.step_merge_window
                    && vv_builder.len() > rows_at_last_step
                {
                    emit_step(
                        t0,
                        &vocab,
                        &mut vv_builder,
                        &mut el_builder,
                        &el_encoder,
                        &mut steps,
                        &mut width_at_last_step,
                        &mut rows_at_last_step,
                    );
                    growth_pending_since = None;
                }
            }

            match &ev.payload {
                EventPayload::MachineAdd(m) => {
                    let before = vocab.len();
                    for (attr, value) in &m.attributes {
                        vocab.observe(*attr, value);
                    }
                    state.add_machine(m.clone());
                    if ev.time > 0 && vocab.len() > before && growth_pending_since.is_none() {
                        growth_pending_since = Some(ev.time);
                    }
                }
                EventPayload::MachineRemove(id) => {
                    state.remove_machine(*id);
                }
                EventPayload::MachineAttrUpdate {
                    machine,
                    attr,
                    value,
                } => {
                    if state.update_attr(*machine, *attr, value.clone()) {
                        if let Some(v) = value {
                            let before = vocab.len();
                            vocab.observe(*attr, v);
                            if vocab.len() > before && growth_pending_since.is_none() {
                                growth_pending_since = Some(ev.time);
                            }
                        }
                    }
                }
                EventPayload::CollectionSubmit(_) => {}
                EventPayload::CollectionFinish(id) => {
                    markers_swept += state.sweep_collection(*id);
                }
                EventPayload::TaskSubmit(task) => {
                    stats.record(ev.time, task.cpu, task.memory, task.has_constraints());
                    state.add_task_marker(task.id, task.collection);
                    if !task.has_constraints() {
                        continue;
                    }
                    let reqs = match ctlm_data::compaction::collapse(&task.constraints) {
                        Ok(r) => r,
                        Err(_) => {
                            // The paper: contradictions are logged and the
                            // task is ignored by the simulation.
                            skipped_contradictions += 1;
                            continue;
                        }
                    };
                    let suitable = count_suitable(&state, &reqs);
                    if suitable == 0 {
                        skipped_unschedulable += 1;
                        continue;
                    }
                    let label = group_for_count(suitable, trace.group_width);
                    if label == 0 {
                        group0_rows += 1;
                    }
                    vv_builder.widen(vocab.len());
                    let vv_row = vv_encoder.encode_requirements(&reqs, &vocab);
                    vv_builder.push(vv_row, label);
                    if cfg.build_co_el {
                        let el_row = el_encoder.encode_requirements(&reqs);
                        el_builder.widen(el_encoder.len());
                        el_builder.push(el_row, label);
                    }
                    // Step 0 fires once enough rows exist for the initial
                    // training.
                    if !step0_emitted && vv_builder.len() >= cfg.min_rows_for_step0 {
                        emit_step(
                            ev.time,
                            &vocab,
                            &mut vv_builder,
                            &mut el_builder,
                            &el_encoder,
                            &mut steps,
                            &mut width_at_last_step,
                            &mut rows_at_last_step,
                        );
                        step0_emitted = true;
                        growth_pending_since = None;
                    }
                }
                EventPayload::TaskUpdate { .. } => {
                    // Resource updates do not change constraints; markers
                    // stay.
                }
                EventPayload::TaskTerminate { task, .. } => {
                    state.remove_task_marker(*task);
                }
            }
        }

        // Final step: flush trailing growth / rows so the last extension
        // is evaluated too.
        if vv_builder.len() > rows_at_last_step || vocab.len() > width_at_last_step {
            let t = events.last().map(|e| e.time).unwrap_or(0);
            emit_step(
                t,
                &vocab,
                &mut vv_builder,
                &mut el_builder,
                &el_encoder,
                &mut steps,
                &mut width_at_last_step,
                &mut rows_at_last_step,
            );
        }

        ReplayOutput {
            stats: stats.distribution(),
            correction,
            group_width: trace.group_width,
            skipped_contradictions,
            skipped_unschedulable,
            group0_rows,
            total_rows: vv_builder.len(),
            markers_swept_by_collection: markers_swept,
            markers_leaked: state.live_task_markers(),
            vocab,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_trace::{CellSet, Scale, TraceGenerator};

    fn replay_cell(cell: CellSet, seed: u64) -> ReplayOutput {
        let trace = TraceGenerator::generate_cell(
            cell,
            Scale {
                machines: 130,
                collections: 400,
                seed,
            },
        );
        Replayer::default().replay(&trace)
    }

    #[test]
    fn steps_are_ordered_and_widths_monotonic() {
        let out = replay_cell(CellSet::C2019c, 5);
        assert!(
            out.steps.len() >= 3,
            "expected several steps, got {}",
            out.steps.len()
        );
        for w in out.steps.windows(2) {
            assert!(w[0].time <= w[1].time);
            assert!(w[0].features_count <= w[1].features_count);
            assert!(w[0].vv.len() <= w[1].vv.len());
        }
    }

    #[test]
    fn step_zero_holds_most_of_the_vocabulary() {
        // Table XI: "most attribute values defined in step zero".
        let out = replay_cell(CellSet::C2019c, 5);
        let first = out.steps.first().unwrap().features_count;
        let last = out.steps.last().unwrap().features_count;
        assert!(
            first as f64 >= 0.55 * last as f64,
            "step 0 width {first} vs final {last}"
        );
    }

    #[test]
    fn later_steps_add_bounded_feature_batches() {
        // §VI: adding over 40–50 features at once degrades the model; the
        // generator caps per-step growth, and merged steps stay bounded.
        let out = replay_cell(CellSet::C2019c, 5);
        for s in &out.steps[1..] {
            assert!(
                s.new_features <= 2 * 50,
                "step {} added {} features",
                s.index,
                s.new_features
            );
        }
    }

    #[test]
    fn labels_are_valid_groups_and_group0_appears() {
        let trace = TraceGenerator::generate_cell(
            CellSet::C2019a,
            Scale {
                machines: 130,
                collections: 1_500,
                seed: 7,
            },
        );
        let out = Replayer::default().replay(&trace);
        let last = out.steps.last().unwrap();
        assert!(last.vv.y.iter().all(|&y| (y as usize) < NUM_GROUPS));
        assert!(
            out.group0_rows > 0,
            "2019a's group0 share should produce rows"
        );
        // Group 0 is rare — the class imbalance the paper highlights.
        let g0_frac = out.group0_rows as f64 / out.total_rows as f64;
        assert!(
            g0_frac < 0.06,
            "group0 fraction {g0_frac} suspiciously high"
        );
    }

    #[test]
    fn co_el_and_co_vv_have_same_rows_and_labels() {
        let out = replay_cell(CellSet::C2011, 3);
        let last = out.steps.last().unwrap();
        let el = last.el.as_ref().unwrap();
        assert_eq!(el.len(), last.vv.len());
        assert_eq!(el.y, last.vv.y);
        assert!(
            el.features_count() < last.vv.features_count(),
            "CO-EL label space is denser than CO-VV value space at this scale"
        );
    }

    #[test]
    fn corrections_match_injected_anomalies() {
        let trace = TraceGenerator::generate_cell(
            CellSet::C2019c,
            Scale {
                machines: 130,
                collections: 600,
                seed: 9,
            },
        );
        let out = Replayer::default().replay(&trace);
        let injected_mistimed = trace
            .anomalies
            .count(ctlm_trace::anomaly::AnomalyKind::MistimedUpdate);
        let injected_missing = trace
            .anomalies
            .count(ctlm_trace::anomaly::AnomalyKind::MissingTermination);
        assert_eq!(out.correction.mistimed_updates_fixed, injected_mistimed);
        assert_eq!(out.correction.tasks_missing_termination, injected_missing);
        // Anomaly (ii) healing: those tasks' markers are swept via their
        // collection.
        assert!(out.markers_swept_by_collection >= injected_missing);
    }

    #[test]
    fn no_task_markers_leak() {
        let out = replay_cell(CellSet::C2019d, 2);
        assert_eq!(
            out.markers_leaked, 0,
            "collection sweep must clean every marker"
        );
    }

    #[test]
    fn stats_land_near_profile_targets() {
        let out = replay_cell(CellSet::C2019a, 11);
        let avg = out.stats.by_volume.avg;
        let profile_avg = CellSet::C2019a.profile().co_volume_avg;
        assert!(
            (avg - profile_avg).abs() < 0.12,
            "volume avg {avg:.3} vs profile {profile_avg:.3}"
        );
        assert!(out.stats.by_volume.min < avg);
        assert!(out.stats.by_volume.max > avg);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = replay_cell(CellSet::C2019c, 13);
        let b = replay_cell(CellSet::C2019c, 13);
        assert_eq!(a.steps.len(), b.steps.len());
        assert_eq!(a.total_rows, b.total_rows);
        let (la, lb) = (a.steps.last().unwrap(), b.steps.last().unwrap());
        assert_eq!(la.vv.y, lb.vv.y);
        assert_eq!(la.features_count, lb.features_count);
    }

    #[test]
    fn contradictions_are_rare() {
        let out = replay_cell(CellSet::C2019c, 5);
        // The paper: fewer than twenty across all datasets. Our generator
        // does not intentionally produce contradictions at all.
        assert!(out.skipped_contradictions < 20);
    }

    #[test]
    fn vv_rows_are_sparse() {
        let out = replay_cell(CellSet::C2019c, 5);
        let last = out.steps.last().unwrap();
        let density = last.vv.x.density();
        // The CO-VV encoding marks unacceptable values; constrained tasks
        // at this scale mark well under half the array on average.
        assert!(density < 0.5, "density {density}");
        assert!(density > 0.0);
    }
}
