//! Event replay and dataset generation (paper Fig. 1), hosted on the
//! `ctlm-sim` kernel.
//!
//! The replayer walks the corrected event stream, maintains the cluster
//! state, computes each constrained task's ground-truth suitable-node
//! group via the [`matcher`](crate::matcher), and encodes CO-VV / CO-EL
//! dataset rows. Whenever the attribute-value vocabulary grows — the
//! feature array is *extended* — it emits a [`DatasetStep`] snapshot:
//! exactly the retraining points Table XI tabulates.
//!
//! The logic lives in [`ReplaySession`], an incremental state machine
//! consuming one [`TraceEvent`] at a time. [`ReplayComponent`] wraps a
//! session as a kernel component so replay shares a timeline with other
//! components (the scheduler engine, churn sources, rollouts) — the
//! online loop where dataset steps drive live retraining mid-simulation.
//! [`Replayer::replay`] is the batch convenience: it hosts the corrected
//! stream on a kernel instance and runs it to completion.

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use ctlm_data::dataset::{group_for_count, Dataset, DatasetBuilder, NUM_GROUPS};
use ctlm_data::encode::co_el::CoElEncoder;
use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_data::vocab::ValueVocab;
use ctlm_sim::{Component, Ctx, Event, Sim};
use ctlm_trace::event::format_day_hour_minute;
use ctlm_trace::{EventPayload, GeneratedTrace, Micros, TraceEvent};

use crate::corrector::{correct_stream, CorrectionReport};
use crate::matcher::count_suitable;
use crate::state::ClusterState;
use crate::stats::{CoDistribution, CoStatsCollector};

/// Replay tuning knobs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Rows required before step 0 (the initial model training) is
    /// emitted.
    pub min_rows_for_step0: usize,
    /// Vocabulary growths closer together than this merge into a single
    /// step (the generator emits e.g. a machine batch and a kernel rollout
    /// a microsecond apart; the paper's steps are minutes apart).
    pub step_merge_window: Micros,
    /// Whether to build the CO-EL dataset alongside CO-VV.
    pub build_co_el: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            min_rows_for_step0: 30,
            step_merge_window: 30 * 60 * 1_000_000, // 30 simulated minutes
            build_co_el: true,
        }
    }
}

/// One feature-array-extension step: the cumulative datasets as of the
/// extension, plus the bookkeeping Table XI reports per step.
#[derive(Clone, Debug)]
pub struct DatasetStep {
    /// Step number (0 = initial training).
    pub index: usize,
    /// Simulation time of the extension.
    pub time: Micros,
    /// Table XI-style `day HH:MM` label.
    pub label: String,
    /// CO-VV feature-array width at this step.
    pub features_count: usize,
    /// Columns added since the previous step.
    pub new_features: usize,
    /// Cumulative CO-VV dataset (rows so far, widened to
    /// `features_count`).
    pub vv: Dataset,
    /// Cumulative CO-EL dataset, when enabled.
    pub el: Option<Dataset>,
}

/// Everything a replay produces.
#[derive(Debug)]
pub struct ReplayOutput {
    /// The retraining steps, in time order.
    pub steps: Vec<DatasetStep>,
    /// Table IX statistics for this trace.
    pub stats: CoDistribution,
    /// What the corrector fixed.
    pub correction: CorrectionReport,
    /// Group width used for labelling.
    pub group_width: usize,
    /// Constrained tasks skipped because their constraints contradict
    /// (the paper: rare, logged, ignored).
    pub skipped_contradictions: usize,
    /// Constrained tasks skipped because no machine currently matches
    /// (transiently unschedulable during churn).
    pub skipped_unschedulable: usize,
    /// Rows labelled Group 0 across the whole trace.
    pub group0_rows: usize,
    /// Total dataset rows (constrained tasks encoded).
    pub total_rows: usize,
    /// Task markers swept by collection termination instead of their own
    /// termination event (anomaly (ii) healing).
    pub markers_swept_by_collection: usize,
    /// Task markers left alive after the full replay (should be 0).
    pub markers_leaked: usize,
    /// Final CO-VV vocabulary.
    pub vocab: ValueVocab,
}

/// The incremental replay state machine: feed it trace events in time
/// order via [`ReplaySession::observe`]; finished steps come back as
/// they fire, and [`ReplaySession::finish`] flushes the trailing step
/// and returns the [`ReplayOutput`].
pub struct ReplaySession {
    cfg: ReplayConfig,
    group_width: usize,
    state: ClusterState,
    vocab: ValueVocab,
    vv_encoder: CoVvEncoder,
    el_encoder: CoElEncoder,
    vv_builder: DatasetBuilder,
    el_builder: DatasetBuilder,
    stats: CoStatsCollector,
    steps_emitted: usize,
    width_at_last_step: usize,
    rows_at_last_step: usize,
    growth_pending_since: Option<Micros>,
    step0_emitted: bool,
    skipped_contradictions: usize,
    skipped_unschedulable: usize,
    group0_rows: usize,
    markers_swept: usize,
    last_time: Micros,
}

impl ReplaySession {
    /// A session for a trace labelled with `group_width`.
    pub fn new(cfg: ReplayConfig, group_width: usize) -> Self {
        Self {
            cfg,
            group_width,
            state: ClusterState::new(),
            vocab: ValueVocab::new(),
            vv_encoder: CoVvEncoder,
            el_encoder: CoElEncoder::new(),
            vv_builder: DatasetBuilder::new(0, NUM_GROUPS),
            el_builder: DatasetBuilder::new(0, NUM_GROUPS),
            stats: CoStatsCollector::daily(),
            steps_emitted: 0,
            width_at_last_step: 0,
            rows_at_last_step: 0,
            growth_pending_since: None,
            step0_emitted: false,
            skipped_contradictions: 0,
            skipped_unschedulable: 0,
            group0_rows: 0,
            markers_swept: 0,
            last_time: 0,
        }
    }

    /// The vocabulary as observed so far — online retraining snapshots
    /// it alongside each emitted step.
    pub fn vocab(&self) -> &ValueVocab {
        &self.vocab
    }

    /// Dataset rows encoded so far.
    pub fn rows(&self) -> usize {
        self.vv_builder.len()
    }

    /// Ground-truth suitable-machine count for a requirement set against
    /// the session's *current* cluster state — online feeds label
    /// scheduling arrivals with exactly the truth the replay sees.
    pub fn suitable_count(&self, reqs: &[ctlm_data::compaction::AttrRequirement]) -> usize {
        count_suitable(&self.state, reqs)
    }

    fn emit_step(&mut self, time: Micros) -> DatasetStep {
        let width = self.vocab.len();
        self.vv_builder.widen(width);
        self.el_builder
            .widen(self.el_encoder.len().max(self.el_builder.cols()));
        let vv = self.vv_builder.snapshot(width);
        let el = if self.cfg.build_co_el {
            Some(self.el_builder.snapshot(self.el_encoder.len()))
        } else {
            None
        };
        let step = DatasetStep {
            index: self.steps_emitted,
            time,
            label: format_day_hour_minute(time),
            features_count: width,
            new_features: width - self.width_at_last_step,
            vv,
            el,
        };
        self.steps_emitted += 1;
        self.width_at_last_step = width;
        self.rows_at_last_step = self.vv_builder.len();
        step
    }

    /// Consumes one (corrected) trace event, returning a dataset step
    /// when a pending vocabulary growth matures into one.
    pub fn observe(&mut self, ev: &TraceEvent) -> Option<DatasetStep> {
        self.last_time = ev.time;
        // Flush a pending growth step once the merge window elapses and
        // the initial model exists.
        let mut emitted = None;
        if let Some(t0) = self.growth_pending_since {
            if self.step0_emitted
                && ev.time > t0 + self.cfg.step_merge_window
                && self.vv_builder.len() > self.rows_at_last_step
            {
                emitted = Some(self.emit_step(t0));
                self.growth_pending_since = None;
            }
        }

        match &ev.payload {
            EventPayload::MachineAdd(m) => {
                let before = self.vocab.len();
                for (attr, value) in &m.attributes {
                    self.vocab.observe(*attr, value);
                }
                self.state.add_machine(m.clone());
                if ev.time > 0 && self.vocab.len() > before && self.growth_pending_since.is_none() {
                    self.growth_pending_since = Some(ev.time);
                }
            }
            EventPayload::MachineRemove(id) => {
                self.state.remove_machine(*id);
            }
            EventPayload::MachineAttrUpdate {
                machine,
                attr,
                value,
            } => {
                if self.state.update_attr(*machine, *attr, value.clone()) {
                    if let Some(v) = value {
                        let before = self.vocab.len();
                        self.vocab.observe(*attr, v);
                        if self.vocab.len() > before && self.growth_pending_since.is_none() {
                            self.growth_pending_since = Some(ev.time);
                        }
                    }
                }
            }
            EventPayload::CollectionSubmit(_) => {}
            EventPayload::CollectionFinish(id) => {
                self.markers_swept += self.state.sweep_collection(*id);
            }
            EventPayload::TaskSubmit(task) => {
                self.stats
                    .record(ev.time, task.cpu, task.memory, task.has_constraints());
                self.state.add_task_marker(task.id, task.collection);
                if !task.has_constraints() {
                    return emitted;
                }
                let reqs = match ctlm_data::compaction::collapse(&task.constraints) {
                    Ok(r) => r,
                    Err(_) => {
                        // The paper: contradictions are logged and the
                        // task is ignored by the simulation.
                        self.skipped_contradictions += 1;
                        return emitted;
                    }
                };
                let suitable = count_suitable(&self.state, &reqs);
                if suitable == 0 {
                    self.skipped_unschedulable += 1;
                    return emitted;
                }
                let label = group_for_count(suitable, self.group_width);
                if label == 0 {
                    self.group0_rows += 1;
                }
                self.vv_builder.widen(self.vocab.len());
                let vv_row = self.vv_encoder.encode_requirements(&reqs, &self.vocab);
                self.vv_builder.push(vv_row, label);
                if self.cfg.build_co_el {
                    let el_row = self.el_encoder.encode_requirements(&reqs);
                    self.el_builder.widen(self.el_encoder.len());
                    self.el_builder.push(el_row, label);
                }
                // Step 0 fires once enough rows exist for the initial
                // training.
                if !self.step0_emitted && self.vv_builder.len() >= self.cfg.min_rows_for_step0 {
                    debug_assert!(emitted.is_none(), "step 0 cannot race a growth step");
                    emitted = Some(self.emit_step(ev.time));
                    self.step0_emitted = true;
                    self.growth_pending_since = None;
                }
            }
            EventPayload::TaskUpdate { .. } => {
                // Resource updates do not change constraints; markers
                // stay.
            }
            EventPayload::TaskTerminate { task, .. } => {
                self.state.remove_task_marker(*task);
            }
        }
        emitted
    }

    /// Flushes the trailing step (if rows or vocabulary grew since the
    /// last one) and assembles the output. `steps` is the collected
    /// sequence of steps observed so far, in order.
    pub fn finish(
        mut self,
        mut steps: Vec<DatasetStep>,
        correction: CorrectionReport,
    ) -> ReplayOutput {
        if let Some(step) = self.flush_trailing() {
            steps.push(step);
        }
        self.into_output(steps, correction)
    }

    /// Emits the trailing step if rows or vocabulary grew since the last
    /// one — the single flush rule shared by the batch and component
    /// paths.
    pub fn flush_trailing(&mut self) -> Option<DatasetStep> {
        if self.vv_builder.len() > self.rows_at_last_step
            || self.vocab.len() > self.width_at_last_step
        {
            let t = self.last_time;
            Some(self.emit_step(t))
        } else {
            None
        }
    }

    /// Assembles the output without flushing (the caller already did).
    fn into_output(self, steps: Vec<DatasetStep>, correction: CorrectionReport) -> ReplayOutput {
        ReplayOutput {
            stats: self.stats.distribution(),
            correction,
            group_width: self.group_width,
            skipped_contradictions: self.skipped_contradictions,
            skipped_unschedulable: self.skipped_unschedulable,
            group0_rows: self.group0_rows,
            total_rows: self.vv_builder.len(),
            markers_swept_by_collection: self.markers_swept,
            markers_leaked: self.state.live_task_markers(),
            vocab: self.vocab,
            steps,
        }
    }
}

/// A [`ReplaySession`] as a kernel component: deliver it [`TraceEvent`]s
/// and it accumulates dataset steps, invoking `on_step` as each fires —
/// the hook online simulations use to submit retraining work while the
/// scheduler keeps running.
///
/// State lives behind `Rc<RefCell<...>>` (the kernel's shared-state
/// idiom) so the driver can finish the session after the run.
pub struct ReplayComponent<'a> {
    inner: Rc<RefCell<ReplayInner<'a>>>,
}

struct ReplayInner<'a> {
    session: ReplaySession,
    steps: Vec<DatasetStep>,
    #[allow(clippy::type_complexity)]
    on_step: Option<Box<dyn FnMut(&DatasetStep, &ValueVocab) + 'a>>,
}

impl<'a> ReplayInner<'a> {
    fn observe(&mut self, ev: &TraceEvent) {
        if let Some(step) = self.session.observe(ev) {
            if let Some(f) = self.on_step.as_mut() {
                f(&step, self.session.vocab());
            }
            self.steps.push(step);
        }
    }
}

/// Driver-side handle to a [`ReplayComponent`]'s state: finish it after
/// the simulation ran to collect the [`ReplayOutput`].
pub struct ReplayHandle<'a> {
    inner: Rc<RefCell<ReplayInner<'a>>>,
}

impl ReplayHandle<'_> {
    /// Dataset rows encoded so far (borrows the shared state briefly).
    pub fn rows(&self) -> usize {
        self.inner.borrow().session.rows()
    }

    /// Steps emitted so far.
    pub fn steps_emitted(&self) -> usize {
        self.inner.borrow().steps.len()
    }

    /// Flushes the trailing step (also reported through the callback)
    /// and assembles the output. Call after the simulation has run; the
    /// component must have been dropped with the kernel by then.
    pub fn finish(self, correction: CorrectionReport) -> ReplayOutput {
        let inner = Rc::try_unwrap(self.inner)
            .ok()
            .expect("replay state uniquely owned after the run")
            .into_inner();
        let ReplayInner {
            mut session,
            mut steps,
            mut on_step,
        } = inner;
        if let Some(step) = session.flush_trailing() {
            if let Some(f) = on_step.as_mut() {
                f(&step, session.vocab());
            }
            steps.push(step);
        }
        session.into_output(steps, correction)
    }
}

impl<'a> ReplayComponent<'a> {
    /// A component around a fresh session, returning the component and
    /// the driver-side handle.
    pub fn new(cfg: ReplayConfig, group_width: usize) -> (Self, ReplayHandle<'a>) {
        let inner = Rc::new(RefCell::new(ReplayInner {
            session: ReplaySession::new(cfg, group_width),
            steps: Vec::new(),
            on_step: None,
        }));
        (
            Self {
                inner: inner.clone(),
            },
            ReplayHandle { inner },
        )
    }

    /// Installs a step callback (called with each step and the
    /// vocabulary as of that step).
    pub fn on_step(self, f: impl FnMut(&DatasetStep, &ValueVocab) + 'a) -> Self {
        self.inner.borrow_mut().on_step = Some(Box::new(f));
        self
    }

    /// Consumes one trace event — wrappers embedding replay in a wider
    /// event type call this directly.
    pub fn observe(&self, ev: &TraceEvent) {
        self.inner.borrow_mut().observe(ev);
    }

    /// [`ReplaySession::suitable_count`] against the embedded session.
    pub fn suitable_count(&self, reqs: &[ctlm_data::compaction::AttrRequirement]) -> usize {
        self.inner.borrow().session.suitable_count(reqs)
    }
}

impl Component<TraceEvent> for ReplayComponent<'_> {
    fn on_event(&mut self, event: Event<TraceEvent>, _ctx: &mut Ctx<'_, TraceEvent>) {
        self.inner.borrow_mut().observe(&event.payload);
    }
}

/// Replay equally consumes borrowed events — the batch replayer keeps
/// the corrected stream in one buffer and runs the kernel over `&Trace­Event`
/// payloads, so no event is ever copied into the queue.
impl Component<&TraceEvent> for ReplayComponent<'_> {
    fn on_event(&mut self, event: Event<&TraceEvent>, _ctx: &mut Ctx<'_, &TraceEvent>) {
        self.inner.borrow_mut().observe(event.payload);
    }
}

/// The replayer. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct Replayer {
    config: ReplayConfig,
}

impl Replayer {
    /// A replayer with custom configuration.
    pub fn new(config: ReplayConfig) -> Self {
        Self { config }
    }

    /// Replays a generated trace into dataset steps and statistics by
    /// hosting the corrected event stream on a `ctlm-sim` kernel: every
    /// corrected event is scheduled at its trace timestamp and delivered
    /// to a [`ReplayComponent`] (same-time events keep stream order via
    /// the kernel's stable tie-break).
    pub fn replay(&self, trace: &GeneratedTrace) -> ReplayOutput {
        let (events, correction) = correct_stream(&trace.events);
        let mut sim: Sim<'_, &TraceEvent> = Sim::new();
        let (component, handle) = ReplayComponent::new(self.config, trace.group_width);
        let replay = sim.add_component("replay", component);
        sim.schedule_batch(0, replay, replay, events.iter().map(|ev| (ev.time, ev)));
        sim.run();
        drop(sim);
        handle.finish(correction)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_trace::{CellSet, Scale, TraceGenerator};

    fn replay_cell(cell: CellSet, seed: u64) -> ReplayOutput {
        let trace = TraceGenerator::generate_cell(
            cell,
            Scale {
                machines: 130,
                collections: 400,
                seed,
            },
        );
        Replayer::default().replay(&trace)
    }

    #[test]
    fn steps_are_ordered_and_widths_monotonic() {
        let out = replay_cell(CellSet::C2019c, 5);
        assert!(
            out.steps.len() >= 3,
            "expected several steps, got {}",
            out.steps.len()
        );
        for w in out.steps.windows(2) {
            assert!(w[0].time <= w[1].time);
            assert!(w[0].features_count <= w[1].features_count);
            assert!(w[0].vv.len() <= w[1].vv.len());
        }
    }

    #[test]
    fn step_zero_holds_most_of_the_vocabulary() {
        // Table XI: "most attribute values defined in step zero".
        let out = replay_cell(CellSet::C2019c, 5);
        let first = out.steps.first().unwrap().features_count;
        let last = out.steps.last().unwrap().features_count;
        assert!(
            first as f64 >= 0.55 * last as f64,
            "step 0 width {first} vs final {last}"
        );
    }

    #[test]
    fn later_steps_add_bounded_feature_batches() {
        // §VI: adding over 40–50 features at once degrades the model; the
        // generator caps per-step growth, and merged steps stay bounded.
        let out = replay_cell(CellSet::C2019c, 5);
        for s in &out.steps[1..] {
            assert!(
                s.new_features <= 2 * 50,
                "step {} added {} features",
                s.index,
                s.new_features
            );
        }
    }

    #[test]
    fn labels_are_valid_groups_and_group0_appears() {
        let trace = TraceGenerator::generate_cell(
            CellSet::C2019a,
            Scale {
                machines: 130,
                collections: 1_500,
                seed: 7,
            },
        );
        let out = Replayer::default().replay(&trace);
        let last = out.steps.last().unwrap();
        assert!(last.vv.y.iter().all(|&y| (y as usize) < NUM_GROUPS));
        assert!(
            out.group0_rows > 0,
            "2019a's group0 share should produce rows"
        );
        // Group 0 is rare — the class imbalance the paper highlights.
        let g0_frac = out.group0_rows as f64 / out.total_rows as f64;
        assert!(
            g0_frac < 0.06,
            "group0 fraction {g0_frac} suspiciously high"
        );
    }

    #[test]
    fn co_el_and_co_vv_have_same_rows_and_labels() {
        let out = replay_cell(CellSet::C2011, 3);
        let last = out.steps.last().unwrap();
        let el = last.el.as_ref().unwrap();
        assert_eq!(el.len(), last.vv.len());
        assert_eq!(el.y, last.vv.y);
        assert!(
            el.features_count() < last.vv.features_count(),
            "CO-EL label space is denser than CO-VV value space at this scale"
        );
    }

    #[test]
    fn corrections_match_injected_anomalies() {
        let trace = TraceGenerator::generate_cell(
            CellSet::C2019c,
            Scale {
                machines: 130,
                collections: 600,
                seed: 9,
            },
        );
        let out = Replayer::default().replay(&trace);
        let injected_mistimed = trace
            .anomalies
            .count(ctlm_trace::anomaly::AnomalyKind::MistimedUpdate);
        let injected_missing = trace
            .anomalies
            .count(ctlm_trace::anomaly::AnomalyKind::MissingTermination);
        assert_eq!(out.correction.mistimed_updates_fixed, injected_mistimed);
        assert_eq!(out.correction.tasks_missing_termination, injected_missing);
        // Anomaly (ii) healing: those tasks' markers are swept via their
        // collection.
        assert!(out.markers_swept_by_collection >= injected_missing);
    }

    #[test]
    fn no_task_markers_leak() {
        let out = replay_cell(CellSet::C2019d, 2);
        assert_eq!(
            out.markers_leaked, 0,
            "collection sweep must clean every marker"
        );
    }

    #[test]
    fn stats_land_near_profile_targets() {
        let out = replay_cell(CellSet::C2019a, 11);
        let avg = out.stats.by_volume.avg;
        let profile_avg = CellSet::C2019a.profile().co_volume_avg;
        assert!(
            (avg - profile_avg).abs() < 0.12,
            "volume avg {avg:.3} vs profile {profile_avg:.3}"
        );
        assert!(out.stats.by_volume.min < avg);
        assert!(out.stats.by_volume.max > avg);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = replay_cell(CellSet::C2019c, 13);
        let b = replay_cell(CellSet::C2019c, 13);
        assert_eq!(a.steps.len(), b.steps.len());
        assert_eq!(a.total_rows, b.total_rows);
        let (la, lb) = (a.steps.last().unwrap(), b.steps.last().unwrap());
        assert_eq!(la.vv.y, lb.vv.y);
        assert_eq!(la.features_count, lb.features_count);
    }

    #[test]
    fn contradictions_are_rare() {
        let out = replay_cell(CellSet::C2019c, 5);
        // The paper: fewer than twenty across all datasets. Our generator
        // does not intentionally produce contradictions at all.
        assert!(out.skipped_contradictions < 20);
    }

    #[test]
    fn vv_rows_are_sparse() {
        let out = replay_cell(CellSet::C2019c, 5);
        let last = out.steps.last().unwrap();
        let density = last.vv.x.density();
        // The CO-VV encoding marks unacceptable values; constrained tasks
        // at this scale mark well under half the array on average.
        assert!(density < 0.5, "density {density}");
        assert!(density > 0.0);
    }
}
