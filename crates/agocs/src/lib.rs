//! # ctlm-agocs — the AGOCS-style cluster-scheduling simulator
//!
//! The paper's experimental substrate is AGOCS (“Accurate Google Cloud
//! Simulator”), which parses GCD traces and replays scheduler operations.
//! This crate reimplements the behaviours §III describes:
//!
//! * **event replay** over a time-sorted trace ([`replay`]);
//! * **cluster state** tracking machines, attributes, and task markers
//!   ([`state`]);
//! * **constraint matching** — counting the machines suitable for a task
//!   ([`matcher`]), which provides the ground-truth group labels, served
//!   by an incrementally maintained inverted attribute index ([`index`]);
//! * **anomaly auto-correction** ([`corrector`]) — offsetting mis-timed
//!   task updates to after creation, and deleting task markers when their
//!   terminated collection finishes;
//! * **dataset generation** ([`replay`]) — emitting cumulative CO-VV and
//!   CO-EL dataset snapshots at every feature-array extension (the
//!   “steps” of Table XI);
//! * **workload statistics** ([`stats`]) — the tasks-with-CO ratios of
//!   Table IX.

pub mod corrector;
pub mod index;
pub mod matcher;
pub mod replay;
pub mod state;
pub mod stats;

pub use corrector::{correct_stream, CorrectionReport};
pub use index::AttrIndex;
pub use matcher::{count_suitable, count_suitable_linear, suitable_machines};
pub use replay::{
    DatasetStep, ReplayComponent, ReplayConfig, ReplayHandle, ReplayOutput, ReplaySession, Replayer,
};
pub use state::ClusterState;
pub use stats::{CoDistribution, CoStatsCollector};
