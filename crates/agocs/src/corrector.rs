//! Anomaly auto-correction.
//!
//! “AGOCS was modified to auto-correct event timings (e.g., offsetting
//! updates after creation) and synchronize task marker removal with
//! collection events, ensuring terminated collections deleted associated
//! task markers.” (§III)
//!
//! [`correct_stream`] performs the timing correction as a pre-pass over
//! the raw stream; the marker synchronisation is enforced by the replayer
//! (which sweeps markers at `CollectionFinish`), and this module reports
//! how many tasks needed it.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use ctlm_trace::{EventPayload, TraceEvent};

/// What the corrector had to fix.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrectionReport {
    /// `TaskUpdate` events whose timestamp preceded their task's
    /// submission, offset to just after creation.
    pub mistimed_updates_fixed: usize,
    /// Tasks with no termination event whose markers must be swept when
    /// their collection finishes.
    pub tasks_missing_termination: usize,
    /// Updates referencing tasks that were never submitted (dropped).
    pub orphan_updates_dropped: usize,
}

/// Corrects a time-sorted event stream, returning the fixed stream
/// (re-sorted) and the report.
pub fn correct_stream(events: &[TraceEvent]) -> (Vec<TraceEvent>, CorrectionReport) {
    // Pass 1: index task submissions and terminations.
    let mut submit_time: HashMap<u64, u64> = HashMap::new();
    let mut has_termination: HashSet<u64> = HashSet::new();
    for ev in events {
        match &ev.payload {
            EventPayload::TaskSubmit(task) => {
                submit_time.insert(task.id, ev.time);
            }
            EventPayload::TaskTerminate { task, .. } => {
                has_termination.insert(*task);
            }
            _ => {}
        }
    }

    let mut report = CorrectionReport {
        tasks_missing_termination: submit_time
            .keys()
            .filter(|t| !has_termination.contains(t))
            .count(),
        ..CorrectionReport::default()
    };

    // Pass 2: rebuild with corrected update timestamps.
    let mut out = Vec::with_capacity(events.len());
    for ev in events {
        match &ev.payload {
            EventPayload::TaskUpdate { task, .. } => match submit_time.get(task) {
                Some(&t_sub) => {
                    if ev.time < t_sub {
                        // The paper's fix: offset the update to after
                        // creation.
                        report.mistimed_updates_fixed += 1;
                        out.push(TraceEvent::new(t_sub + 1, ev.payload.clone()));
                    } else {
                        out.push(ev.clone());
                    }
                }
                None => {
                    report.orphan_updates_dropped += 1;
                }
            },
            _ => out.push(ev.clone()),
        }
    }
    out.sort_by_key(|e| e.time);
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_trace::{Task, TerminationReason};

    fn submit(time: u64, id: u64, collection: u64) -> TraceEvent {
        TraceEvent::new(
            time,
            EventPayload::TaskSubmit(Task {
                id,
                collection,
                cpu: 0.1,
                memory: 0.1,
                priority: 0,
                constraints: vec![],
            }),
        )
    }

    fn update(time: u64, task: u64) -> TraceEvent {
        TraceEvent::new(
            time,
            EventPayload::TaskUpdate {
                task,
                cpu: 0.2,
                memory: 0.2,
            },
        )
    }

    fn terminate(time: u64, task: u64) -> TraceEvent {
        TraceEvent::new(
            time,
            EventPayload::TaskTerminate {
                task,
                reason: TerminationReason::Complete,
            },
        )
    }

    #[test]
    fn well_formed_stream_passes_through() {
        let events = vec![submit(10, 1, 1), update(20, 1), terminate(30, 1)];
        let (out, report) = correct_stream(&events);
        assert_eq!(out, events);
        assert_eq!(report.mistimed_updates_fixed, 0);
        assert_eq!(report.tasks_missing_termination, 0);
    }

    #[test]
    fn mistimed_update_offsets_after_creation() {
        let events = vec![update(5, 1), submit(10, 1, 1), terminate(30, 1)];
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.time);
        let (out, report) = correct_stream(&sorted);
        assert_eq!(report.mistimed_updates_fixed, 1);
        // The update now sits just after the submission.
        let idx_submit = out
            .iter()
            .position(|e| matches!(e.payload, EventPayload::TaskSubmit(_)))
            .unwrap();
        let idx_update = out
            .iter()
            .position(|e| matches!(e.payload, EventPayload::TaskUpdate { .. }))
            .unwrap();
        assert!(idx_update > idx_submit);
        assert_eq!(out[idx_update].time, 11);
    }

    #[test]
    fn missing_termination_is_counted_not_dropped() {
        let events = vec![submit(10, 1, 1), submit(10, 2, 1), terminate(30, 2)];
        let (out, report) = correct_stream(&events);
        assert_eq!(report.tasks_missing_termination, 1);
        assert_eq!(out.len(), 3, "stream itself unchanged");
    }

    #[test]
    fn orphan_update_dropped() {
        let events = vec![submit(10, 1, 1), update(20, 99), terminate(30, 1)];
        let (out, report) = correct_stream(&events);
        assert_eq!(report.orphan_updates_dropped, 1);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn output_is_sorted() {
        let events = vec![update(5, 1), submit(100, 1, 1)];
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.time);
        let (out, _) = correct_stream(&sorted);
        assert!(out.windows(2).all(|w| w[0].time <= w[1].time));
    }
}
