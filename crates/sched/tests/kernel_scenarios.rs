//! Kernel-engine scenario tests: determinism across every `Scheduler`
//! impl, the preemption fallback, machine churn, and atomic gang
//! placement — paths the old monolithic loop either hardcoded or could
//! not express.

use std::sync::Arc;

use ctlm_core::{GrowingModel, ModelRegistry, TaskCoAnalyzer, TrainConfig};
use ctlm_data::compaction::collapse;
use ctlm_data::dataset::{DatasetBuilder, NUM_GROUPS};
use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_data::vocab::ValueVocab;
use ctlm_sched::engine::{SimConfig, SimResult, Simulator};
use ctlm_sched::placement::PreemptiveBestFit;
use ctlm_sched::scenario::{attach_source, ChurnAction, ChurnPlan, ChurnSource, GangSource};
use ctlm_sched::scheduler::{Enhanced, LiveRegistry, MainOnly, OracleEnhanced, Scheduler};
use ctlm_sched::{PendingTask, SchedCluster};
use ctlm_trace::{AttrValue, ConstraintOp as Op, Machine, TaskConstraint};

fn cluster(n: u64) -> SchedCluster {
    let mut ms = Vec::new();
    for i in 0..n {
        let mut m = Machine::new(i, 1.0, 1.0);
        m.set_attr(0, AttrValue::Int(i as i64));
        ms.push(m);
    }
    SchedCluster::from_machines(ms)
}

fn task(id: u64, arrival: u64, cpu: f64, priority: u8) -> PendingTask {
    PendingTask {
        id,
        collection: 1,
        cpu,
        memory: cpu,
        priority,
        reqs: vec![],
        arrival,
        truth_group: 25,
    }
}

fn pinned(id: u64, arrival: u64, cpu: f64, priority: u8, machine: i64) -> PendingTask {
    let reqs = collapse(&[TaskConstraint::new(
        0,
        Op::Equal(Some(AttrValue::Int(machine))),
    )])
    .unwrap();
    PendingTask {
        reqs,
        truth_group: 0,
        collection: 2,
        ..task(id, arrival, cpu, priority)
    }
}

/// A mixed workload with enough contention that routing matters.
fn workload() -> Vec<PendingTask> {
    let mut arrivals = Vec::new();
    for k in 0..300u64 {
        arrivals.push(task(k, k * 40_000, 0.12, 2));
    }
    for (j, at) in [(0u64, 4_000_000u64), (1, 9_000_000), (2, 14_000_000)] {
        arrivals.push(pinned(2000 + j, at, 0.2, 6, (j % 6) as i64));
    }
    arrivals.sort_by_key(|t| t.arrival);
    arrivals
}

fn sim() -> Simulator {
    Simulator::new(SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 3,
        mean_runtime: 6_000_000,
        horizon: 120_000_000,
        seed: 11,
    })
}

/// A deterministically trained analyzer over a tiny synthetic CO-VV
/// vocabulary (attribute 0, integer values) — enough for `Enhanced` and
/// `LiveRegistry` to exercise the model path.
fn tiny_analyzer() -> TaskCoAnalyzer {
    let mut vocab = ValueVocab::new();
    for v in 0..8 {
        vocab.observe(0, &AttrValue::Int(v));
    }
    let width = vocab.len();
    let enc = CoVvEncoder;
    let mut b = DatasetBuilder::new(width, NUM_GROUPS);
    for k in 1..8i64 {
        for _ in 0..40 {
            let reqs = collapse(&[TaskConstraint::new(0, Op::LessThan(k))]).unwrap();
            let row = enc.encode_requirements(&reqs, &vocab);
            b.push(row, ctlm_data::dataset::group_for_count(k as usize, 1));
        }
    }
    let ds = b.snapshot(width);
    let mut model = GrowingModel::new(TrainConfig {
        epochs_limit: 60,
        max_attempts: 2,
        ..TrainConfig::default()
    });
    model.step(&ds, 3);
    let mut analyzer = TaskCoAnalyzer::new(model.to_net(), vocab);
    analyzer.priority_threshold = 0;
    analyzer
}

fn run_twice(mut make: impl FnMut() -> Box<dyn Scheduler>) -> (SimResult, SimResult) {
    let arrivals = workload();
    let mut c1 = cluster(6);
    let r1 = sim().run(&mut c1, &arrivals, make().as_mut());
    let mut c2 = cluster(6);
    let r2 = sim().run(&mut c2, &arrivals, make().as_mut());
    (r1, r2)
}

#[test]
fn every_scheduler_impl_is_bit_deterministic() {
    // MainOnly and OracleEnhanced: pure routing.
    let (a, b) = run_twice(|| Box::new(MainOnly));
    assert_eq!(a, b, "MainOnly must be bit-identical across runs");
    assert!(!a.placed.is_empty());

    let (a, b) = run_twice(|| Box::new(OracleEnhanced));
    assert_eq!(a, b, "OracleEnhanced must be bit-identical across runs");

    // Enhanced: the trained-model path.
    let analyzer = Arc::new(tiny_analyzer());
    let (a, b) = {
        let analyzer = analyzer.clone();
        run_twice(move || Box::new(Enhanced::new(analyzer.clone())))
    };
    assert_eq!(a, b, "Enhanced must be bit-identical across runs");

    // LiveRegistry with a pre-installed model (no background racing):
    // routing reads through the hot-swap point deterministically.
    let (a, b) = run_twice(|| {
        let registry = ModelRegistry::new();
        registry.install(tiny_analyzer());
        Box::new(LiveRegistry::new(registry))
    });
    assert_eq!(a, b, "LiveRegistry must be bit-identical across runs");
}

#[test]
fn preemption_fallback_fires_on_the_hp_path() {
    // Saturate the fleet with low-priority work, then a pinned
    // high-priority task arrives: the HP path must evict to place.
    let mut arrivals: Vec<PendingTask> = (0..12u64).map(|k| task(k, 0, 0.45, 1)).collect();
    arrivals.push(pinned(99, 2_000_000, 0.5, 9, 0));
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 20,
        mean_runtime: 300_000_000,
        horizon: 20_000_000,
        seed: 5,
    };
    let mut c = cluster(6);
    let r = Simulator::new(config).run(&mut c, &arrivals, &mut OracleEnhanced);
    assert!(r.preemptions > 0, "expected eviction");
    let rec = r
        .placed
        .iter()
        .find(|p| p.task == 99)
        .expect("pinned placed");
    assert_eq!(rec.truth_group, 0);
    // Victims are marked.
    assert!(r.placed.iter().any(|p| p.was_preempted));
}

#[test]
fn preemptive_placer_pluggable_on_the_main_queue() {
    // The placement strategy is a parameter now: give the *main* queue
    // the preemptive strategy and MainOnly routing still evicts.
    let mut arrivals: Vec<PendingTask> = (0..12u64).map(|k| task(k, 0, 0.45, 1)).collect();
    arrivals.push(task(99, 2_000_000, 0.5, 9));
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 20,
        mean_runtime: 300_000_000,
        horizon: 20_000_000,
        seed: 5,
    };
    let mut c = cluster(6);
    let r = Simulator::new(config)
        .with_placers(Box::new(PreemptiveBestFit), Box::new(PreemptiveBestFit))
        .run(&mut c, &arrivals, &mut MainOnly);
    assert!(
        r.preemptions > 0,
        "preemptive strategy on the main queue must evict"
    );
    assert!(r.placed.iter().any(|p| p.task == 99));
}

#[test]
fn churn_drains_machines_and_requeues_their_tasks() {
    // Long-running tasks fill 6 machines; three machines fail mid-run and
    // return later. Their tasks must re-enter the queue and the result
    // must count the reschedules.
    let arrivals: Vec<PendingTask> = (0..18u64).map(|k| task(k, 0, 0.3, 2)).collect();
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 20,
        mean_runtime: 400_000_000, // effectively never finish naturally
        horizon: 60_000_000,
        seed: 2,
    };
    let plan = ChurnPlan::new(vec![
        (10_000_000, ChurnAction::Fail(0)),
        (12_000_000, ChurnAction::Fail(1)),
        (14_000_000, ChurnAction::Fail(2)),
        (30_000_000, ChurnAction::Restore(0)),
        (30_000_000, ChurnAction::Restore(1)),
        (32_000_000, ChurnAction::Restore(2)),
    ]);
    let simulator = Simulator::new(config);
    let mut scheduler = MainOnly;
    let mut harness = simulator.harness(cluster(6), &arrivals, &mut scheduler);
    let churn = ChurnSource::new(plan, harness.engine);
    let first = churn.first_time();
    attach_source(&mut harness, "churn", churn, first, 0);
    let (cluster_after, result) = harness.run();
    assert!(
        result.churn_rescheduled >= 9,
        "3 machines × ~3 tasks each must requeue, got {}",
        result.churn_rescheduled
    );
    assert_eq!(
        cluster_after.len(),
        6,
        "restored machines must rejoin the fleet"
    );
    // Rescheduled tasks keep one placed record each (first placement).
    assert_eq!(result.placed.len(), 18);
}

#[test]
fn churned_cluster_resets_for_ab_runs() {
    // After a churn run, `reset` must bring back drained machines so an
    // A/B comparison on the same cluster object stays fair.
    let arrivals: Vec<PendingTask> = (0..6u64).map(|k| task(k, 0, 0.3, 2)).collect();
    let simulator = Simulator::new(SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 8,
        mean_runtime: 400_000_000,
        horizon: 20_000_000,
        seed: 3,
    });
    let mut scheduler = MainOnly;
    let mut harness = simulator.harness(cluster(6), &arrivals, &mut scheduler);
    let plan = ChurnPlan::new(vec![(5_000_000, ChurnAction::Fail(4))]);
    let churn = ChurnSource::new(plan, harness.engine);
    let first = churn.first_time();
    attach_source(&mut harness, "churn", churn, first, 0);
    let (mut cluster_after, _) = harness.run();
    assert_eq!(cluster_after.len(), 5, "machine 4 still drained");
    cluster_after.reset();
    assert_eq!(cluster_after.len(), 6, "reset restores the fleet");
    assert_eq!(cluster_after.cpu_utilisation(), 0.0);
}

#[test]
fn capacity_index_stays_consistent_through_kernel_churn() {
    // Run a full kernel simulation with churn (drain/restore mid-run),
    // then check the incrementally maintained capacity index still
    // answers placement queries exactly like the linear reference on the
    // post-churn cluster — the end-to-end form of the property tests in
    // `placement_equivalence.rs`.
    use ctlm_sched::placement::{best_fit, best_fit_linear};
    let arrivals: Vec<PendingTask> = (0..24u64).map(|k| task(k, k * 250_000, 0.3, 2)).collect();
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 6,
        mean_runtime: 20_000_000,
        horizon: 60_000_000,
        seed: 13,
    };
    let simulator = Simulator::new(config);
    let mut scheduler = MainOnly;
    let mut harness = simulator.harness(cluster(6), &arrivals, &mut scheduler);
    let plan = ChurnPlan::new(vec![
        (5_000_000, ChurnAction::Fail(1)),
        (8_000_000, ChurnAction::Fail(4)),
        (20_000_000, ChurnAction::Restore(1)),
        (25_000_000, ChurnAction::Restore(4)),
        (30_000_000, ChurnAction::Fail(2)),
    ]);
    let churn = ChurnSource::new(plan, harness.engine);
    let first = churn.first_time();
    attach_source(&mut harness, "churn", churn, first, 0);
    let (cluster_after, result) = harness.run();
    assert!(result.placed.len() > 12, "most tasks place despite churn");
    assert_eq!(cluster_after.len(), 5, "machine 2 still drained");
    for cpu in [0.1, 0.3, 0.7, 1.0] {
        for pin in [None, Some(0), Some(2), Some(5)] {
            let reqs = match pin {
                Some(v) => {
                    collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(v))))]).unwrap()
                }
                None => vec![],
            };
            let probe = PendingTask {
                reqs,
                ..task(9999, 0, cpu, 2)
            };
            assert_eq!(
                best_fit(&cluster_after, &probe),
                best_fit_linear(&cluster_after, &probe),
                "post-churn index diverged for cpu={cpu} pin={pin:?}"
            );
        }
    }
}

#[test]
fn gangs_place_all_or_nothing_on_the_kernel() {
    // A 4-member gang needing 0.8 CPU each on a 6-machine cluster that
    // has only 3 free machines at arrival: nothing places until enough
    // capacity frees, then the whole gang lands in one cycle.
    let arrivals: Vec<PendingTask> = (0..3u64).map(|k| task(k, 0, 0.8, 2)).collect();
    // Gang members arrive only through the gang source — owned tasks,
    // never in the individual admission path.
    let gang_members: Vec<PendingTask> = (0..4u64)
        .map(|g| task(100 + g, 1_000_000, 0.8, 5))
        .collect();
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 8,
        mean_runtime: 8_000_000, // blockers drain after ~8 s
        horizon: 60_000_000,
        seed: 7,
    };
    let simulator = Simulator::new(config);
    let mut scheduler = MainOnly;
    let mut harness = simulator.harness(cluster(6), &arrivals, &mut scheduler);
    let gangs = GangSource::new(vec![(1_000_000, gang_members)], harness.engine);
    let first = gangs.first_time();
    attach_source(&mut harness, "gangs", gangs, first, 1);
    let (_, result) = harness.run();
    assert_eq!(result.gangs_placed, 1, "gang must eventually place whole");
    let placed_members = result
        .placed
        .iter()
        .filter(|p| p.task >= 100)
        .collect::<Vec<_>>();
    assert_eq!(placed_members.len(), 4, "all members place");
    let latencies: Vec<u64> = placed_members.iter().map(|p| p.latency).collect();
    assert!(
        latencies.iter().all(|&l| l == latencies[0]),
        "atomic placement: one cycle, identical latency {latencies:?}"
    );
}
