//! Pins the hot-path contract: a steady-state scheduling pass — queue
//! rotation, placement attempts through the capacity index, cycle-timer
//! events through the kernel's timer-wheel lane — performs **zero heap
//! allocations** once buffers have warmed up.
//!
//! A counting global allocator wraps the system one. Two angles:
//!
//! * the *engine* test drives a saturated cluster (head-of-line regime:
//!   every queued task cycles through `NoCapacity` each pass, the
//!   pathology the paper's analyzer exists to remove) across many
//!   simulated passes and asserts the allocation counter does not move;
//! * the *cluster* test exercises the mutation path — `tightest_fit`
//!   probes, `place`/`release` churn updating the capacity buckets —
//!   outside the kernel, with recurring task shapes, and asserts the
//!   incremental index maintenance is allocation-free once bucket
//!   capacities have settled.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ctlm_data::compaction::collapse;
use ctlm_sched::engine::{SimConfig, SimResult, Simulator};
use ctlm_sched::faults::{FaultPlan, FaultPlane};
use ctlm_sched::placement::{best_fit, Placement};
use ctlm_sched::scenario::attach_source;
use ctlm_sched::scheduler::MainOnly;
use ctlm_sched::{CapacityFit, PendingTask, SchedCluster};
use ctlm_trace::{AttrValue, ConstraintOp as Op, Machine, TaskConstraint};
use serde::Serialize;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn fleet(n: u64) -> SchedCluster {
    let mut ms = Vec::new();
    for i in 0..n {
        let mut m = Machine::new(i, 1.0, 1.0);
        m.set_attr(0, AttrValue::Int(i as i64));
        ms.push(m);
    }
    SchedCluster::from_machines(ms)
}

fn task(id: u64, arrival: u64, cpu: f64) -> PendingTask {
    PendingTask {
        id,
        collection: 1,
        cpu,
        memory: cpu,
        priority: 2,
        reqs: vec![],
        arrival,
        truth_group: 25,
    }
}

#[test]
fn steady_state_scheduling_pass_does_not_allocate() {
    // 4 machines filled by 12 long-running blockers; 40 background tasks
    // plus 3 pinned (single-suitable-node) tasks then cycle NoCapacity
    // every pass until the horizon. The cycle period is an exact
    // multiple of the kernel wheel's slot granularity (16 × 65 536 µs),
    // so the timer's slot orbit closes after one wheel revolution and
    // every lane buffer is warm before the measured window.
    let mut arrivals: Vec<PendingTask> = (0..12u64).map(|k| task(k, 0, 0.32)).collect();
    for k in 0..40u64 {
        arrivals.push(task(100 + k, 200_000 * k, 0.4));
    }
    for j in 0..3u64 {
        let reqs = collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(0))))]).unwrap();
        arrivals.push(PendingTask {
            id: 900 + j,
            collection: 2,
            reqs,
            truth_group: 0,
            ..task(900 + j, 3_000_000 + j * 700_000, 0.5)
        });
    }
    arrivals.sort_by_key(|t| t.arrival);
    let config = SimConfig {
        cycle: 1_048_576, // 16 wheel slots exactly
        attempts_per_cycle: 3,
        mean_runtime: 100_000_000_000, // blockers never finish
        horizon: 400_000_000,
        seed: 9,
    };
    let simulator = Simulator::new(config);
    let mut scheduler = MainOnly;
    let mut harness = simulator.harness(fleet(4), &arrivals, &mut scheduler);

    // Warm-up: all admissions, the blocker placements, and two full
    // wheel revolutions (2 × 67 s) of timer traffic.
    harness.sim.run_until(150_000_000);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    harness.sim.run_until(390_000_000);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state scheduling passes allocated {} times",
        after - before
    );

    let (_, result) = harness.run();
    assert_eq!(result.placed.len(), 12, "only the blockers ever place");
    assert_eq!(result.unplaced, 43, "everything else cycles to the horizon");
}

#[test]
fn scheduling_pass_with_telemetry_enabled_does_not_allocate() {
    // The engine scenario again, but with every observability feature
    // switched on: the always-on `EngineStats` counters/histograms are
    // maintained throughout, and a bounded trace ring records every
    // delivered event. The ring preallocates at `enable_trace` and
    // overwrites in place once full, and `Histogram::record` is a fixed
    // array increment — so the steady-state window must still show zero
    // heap allocations.
    let mut arrivals: Vec<PendingTask> = (0..12u64).map(|k| task(k, 0, 0.32)).collect();
    for k in 0..40u64 {
        arrivals.push(task(100 + k, 200_000 * k, 0.4));
    }
    arrivals.sort_by_key(|t| t.arrival);
    let config = SimConfig {
        cycle: 1_048_576,
        attempts_per_cycle: 3,
        mean_runtime: 100_000_000_000,
        horizon: 400_000_000,
        seed: 9,
    };
    let simulator = Simulator::new(config);
    let mut scheduler = MainOnly;
    let mut harness = simulator.harness(fleet(4), &arrivals, &mut scheduler);
    let state = harness.state();
    state.borrow_mut().enable_trace(256);

    harness.sim.run_until(150_000_000);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    harness.sim.run_until(390_000_000);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "telemetry-enabled scheduling passes allocated {} times",
        after - before
    );

    {
        let s = state.borrow();
        let stats = s.stats();
        assert_eq!(stats.admitted_arrivals, 52, "every task admitted once");
        assert_eq!(stats.placed, 12, "only the blockers place");
        assert!(stats.no_capacity > 0, "background tasks must churn");
        assert!(stats.cycles > 0);
        assert_eq!(
            stats.main_depth.count(),
            stats.cycles,
            "one depth sample per pass"
        );
        let trace = s.trace().expect("tracing was enabled");
        assert_eq!(trace.len(), 256, "ring fills to capacity and stays there");
        assert!(
            trace.recorded() > 256,
            "long run must have wrapped the ring"
        );
    }
    let (_, result) = harness.run();
    assert_eq!(result.placed.len(), 12);
}

#[test]
fn fault_free_run_adds_zero_allocations_and_identical_report_bytes() {
    // A spec with no `faults` block must cost nothing: the engine's
    // fault hooks (the `Option<Box<FaultRuntime>>` checks on crash,
    // completion, and infeasible paths) stay on the None branch, an
    // attached-but-empty fault plane wakes never, and the serialized
    // result is byte-for-byte the result of a run with no fault plane
    // at all (dead-letter fields only appear once faults engage).
    let run = |with_empty_plane: bool| -> SimResult {
        let mut arrivals: Vec<PendingTask> = (0..12u64).map(|k| task(k, 0, 0.32)).collect();
        for k in 0..40u64 {
            arrivals.push(task(100 + k, 200_000 * k, 0.4));
        }
        arrivals.sort_by_key(|t| t.arrival);
        let config = SimConfig {
            cycle: 1_048_576,
            attempts_per_cycle: 3,
            mean_runtime: 100_000_000_000,
            horizon: 400_000_000,
            seed: 9,
        };
        let simulator = Simulator::new(config);
        let mut scheduler = MainOnly;
        let mut harness = simulator.harness(fleet(4), &arrivals, &mut scheduler);
        if with_empty_plane {
            let plan = FaultPlan::default();
            assert!(plan.is_empty());
            let plane = FaultPlane::new(plan, harness.engine);
            let first = plane.first_time();
            assert!(first.is_none(), "empty plan must never wake");
            attach_source(&mut harness, "faults", plane, first, 0);
        }

        harness.sim.run_until(150_000_000);
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        harness.sim.run_until(390_000_000);
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "fault-free steady state allocated {} times (empty plane: {with_empty_plane})",
            after - before
        );
        let (_, result) = harness.run();
        result
    };

    let plain = run(false);
    let with_plane = run(true);
    assert_eq!(plain.failed_permanently, 0);
    assert_eq!(
        plain.to_value(),
        with_plane.to_value(),
        "an inert fault plane must not change a single report byte"
    );
}

#[test]
fn span_recorder_disabled_is_free_and_enabled_changes_no_report_byte() {
    // The flight recorder's contract, from both sides:
    //
    // * **off** (the default — no `observability.spans` in a spec): the
    //   engine's span hooks are `Option` checks on the `None` branch, so
    //   the steady-state window still allocates zero times and the
    //   serialized result is the baseline result;
    // * **on**: spans observe but never steer — the result must stay
    //   byte-for-byte identical — and the steady-state window is *still*
    //   allocation-free, because a `NoCapacity` churn pass only bumps
    //   the open `queued` span's attempt counter in place (the open
    //   tables and segment arena were sized during warm-up).
    let run = |with_spans: bool| -> SimResult {
        let mut arrivals: Vec<PendingTask> = (0..12u64).map(|k| task(k, 0, 0.32)).collect();
        for k in 0..40u64 {
            arrivals.push(task(100 + k, 200_000 * k, 0.4));
        }
        arrivals.sort_by_key(|t| t.arrival);
        let config = SimConfig {
            cycle: 1_048_576,
            attempts_per_cycle: 3,
            mean_runtime: 100_000_000_000,
            horizon: 400_000_000,
            seed: 9,
        };
        let simulator = Simulator::new(config);
        let mut scheduler = MainOnly;
        let mut harness = simulator.harness(fleet(4), &arrivals, &mut scheduler);
        let spans = with_spans.then(|| harness.state().borrow_mut().enable_spans());

        harness.sim.run_until(150_000_000);
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        harness.sim.run_until(390_000_000);
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "steady state allocated {} times (spans: {with_spans})",
            after - before
        );
        let (_, result) = harness.run();
        if let Some(spans) = spans {
            let log = spans.borrow();
            assert!(!log.is_empty(), "recorder on but no spans closed");
            assert_eq!(log.open_count(), 0, "horizon close must drain opens");
        }
        result
    };

    let plain = run(false);
    let recorded = run(true);
    assert_eq!(
        plain.to_value(),
        recorded.to_value(),
        "the flight recorder must not change a single report byte"
    );
}

#[test]
fn capacity_index_maintenance_does_not_allocate_in_steady_state() {
    let mut c = fleet(8);
    let pin = collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(3))))]).unwrap();
    let window = collapse(&[
        TaskConstraint::new(0, Op::GreaterThanEqual(2)),
        TaskConstraint::new(0, Op::LessThan(6)),
    ])
    .unwrap();
    // Binary-fraction sizes: sums recur exactly, so the set of capacity
    // buckets ever touched is finite and warms quickly.
    let sizes = [0.125, 0.25, 0.375];

    let mut churn = |rounds: usize| {
        for r in 0..rounds {
            for (k, &s) in sizes.iter().enumerate() {
                let probe = task(0, 0, s);
                match best_fit(&c, &probe) {
                    Placement::Placed(m) => c.place(m, (r % 7 * 3 + k) as u64, s, s, 2),
                    other => panic!("fleet cannot saturate at these sizes: {other:?}"),
                }
            }
            assert!(matches!(
                c.tightest_fit(&pin, 0.1, 0.1),
                CapacityFit::Fit(3) | CapacityFit::NoCapacity
            ));
            assert!(!matches!(
                c.tightest_fit(&window, 0.05, 0.05),
                CapacityFit::Infeasible
            ));
            for (k, _) in sizes.iter().enumerate() {
                let id = (r % 7 * 3 + k) as u64;
                // Find and release (machines rotate as load shifts).
                let mut released = false;
                for m in 0..8u64 {
                    if c.release(m, id) {
                        released = true;
                        break;
                    }
                }
                assert!(released, "task {id} must be live");
            }
        }
    };

    churn(32); // warm every bucket/alloc-map shape the cycle produces
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    churn(512);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state place/release churn allocated {} times",
        after - before
    );
}
