//! Task conservation under randomized crash/retry schedules.
//!
//! The fault plane loses work on purpose — these tests pin down the
//! promise that it never loses *accounting*: across seeds × retry
//! policies × crash plans, every admitted task terminates in exactly
//! one of {placed (finished or still resident), unplaced (still
//! queued), dead-lettered}, and the fault counters balance — a lost
//! task is always either rescheduled or dead-lettered, never silently
//! hung.

use proptest::prelude::*;

use ctlm_data::compaction::collapse;
use ctlm_sched::engine::{SimConfig, SimResult, Simulator};
use ctlm_sched::faults::{ExponentialBackoff, FaultPlan, FaultPlane, FixedRetry, RetryPolicy};
use ctlm_sched::scenario::{attach_source, ChurnAction, ChurnPlan, ChurnSource};
use ctlm_sched::scheduler::MainOnly;
use ctlm_sched::{FaultStats, OwnershipGuard, PendingTask, SchedCluster};
use ctlm_trace::{AttrValue, ConstraintOp as Op, Machine, MachineId, TaskConstraint};

fn cluster(n: u64) -> (SchedCluster, Vec<MachineId>) {
    let mut ms = Vec::new();
    for i in 0..n {
        let mut m = Machine::new(i, 1.0, 1.0);
        m.set_attr(0, AttrValue::Int(i as i64));
        ms.push(m);
    }
    let ids = ms.iter().map(|m| m.id).collect();
    (SchedCluster::from_machines(ms), ids)
}

fn task(id: u64, arrival: u64, cpu: f64) -> PendingTask {
    PendingTask {
        id,
        collection: 1,
        cpu,
        memory: cpu,
        priority: 2,
        reqs: vec![],
        arrival,
        truth_group: 25,
    }
}

fn pinned(id: u64, arrival: u64, machine: i64) -> PendingTask {
    let reqs = collapse(&[TaskConstraint::new(
        0,
        Op::Equal(Some(AttrValue::Int(machine))),
    )])
    .unwrap();
    PendingTask {
        reqs,
        truth_group: 0,
        ..task(id, arrival, 0.2)
    }
}

/// One randomized configuration of the crash/retry space.
#[derive(Clone, Debug)]
struct FaultCase {
    sim_seed: u64,
    plan_seed: u64,
    zones: usize,
    crashes: usize,
    mttr: u64,
    tasks: u64,
    pins: u64,
    policy_fixed: bool,
    budget: u32,
    base: u64,
}

fn arb_case() -> impl Strategy<Value = FaultCase> {
    (
        (1u64..32, 0u64..32, 1usize..=6, 1usize..5),
        (1_000_000u64..40_000_000, 10u64..40, 0u64..4),
        (0u32..2, 0u32..4, 200_000u64..4_000_000),
    )
        .prop_map(
            |(
                (sim_seed, plan_seed, zones, crashes),
                (mttr, tasks, pins),
                (fixed, budget, base),
            )| {
                FaultCase {
                    sim_seed,
                    plan_seed,
                    zones,
                    crashes,
                    mttr,
                    tasks,
                    pins,
                    policy_fixed: fixed == 1,
                    budget,
                    base,
                }
            },
        )
}

fn policy(case: &FaultCase) -> Box<dyn RetryPolicy> {
    if case.policy_fixed {
        Box::new(FixedRetry {
            delay: case.base,
            budget: case.budget,
        })
    } else {
        Box::new(ExponentialBackoff {
            base: case.base,
            cap: case.base * 8,
            budget: case.budget,
            jitter: 0.5,
        })
    }
}

/// Runs one randomized case to the horizon, returning the result plus
/// the engine's admission count and fault counters.
fn run_case(case: &FaultCase) -> (SimResult, u64, FaultStats) {
    let (cluster, ids) = cluster(6);
    let mut arrivals: Vec<PendingTask> =
        (0..case.tasks).map(|k| task(k, k * 400_000, 0.3)).collect();
    for p in 0..case.pins {
        arrivals.push(pinned(1000 + p, 1_000_000 + p * 2_000_000, (p % 6) as i64));
    }
    arrivals.sort_by_key(|t| (t.arrival, t.id));
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 6,
        mean_runtime: 15_000_000,
        horizon: 90_000_000,
        seed: case.sim_seed,
    };
    let plan = FaultPlan::zone_crashes(
        case.plan_seed,
        &ids,
        case.zones,
        case.crashes,
        (5_000_000, 60_000_000),
        case.mttr,
    );
    let simulator = Simulator::new(config);
    let mut scheduler = MainOnly;
    let mut harness = simulator.harness(cluster, &arrivals, &mut scheduler);
    harness
        .state()
        .borrow_mut()
        .enable_faults(policy(case), case.sim_seed);
    let plane = FaultPlane::new(plan, harness.engine);
    let first = plane.first_time();
    attach_source(&mut harness, "faults", plane, first, 0);
    let state = harness.state();
    let (_, result) = harness.run();
    let state = state.borrow();
    let admitted = state.stats().admitted_arrivals;
    let stats = state.fault_stats().cloned().expect("fault runtime enabled");
    (result, admitted, stats)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every admitted task terminates in exactly one bucket — placed
    /// (with dead-letters a marked subset of placed) or unplaced — and
    /// every loss event resolves to a retry or a dead-letter.
    #[test]
    fn tasks_conserve_under_crash_retry_schedules(case in arb_case()) {
        let (result, admitted, stats) = run_case(&case);

        // Conservation: admission = placed + unplaced, exactly.
        prop_assert_eq!(
            admitted as usize,
            result.placed.len() + result.unplaced,
            "admitted {} != placed {} + unplaced {}",
            admitted, result.placed.len(), result.unplaced
        );
        // Dead-letters are a terminal subset of placed work (a task must
        // have been placed once to be crash-lost).
        prop_assert!(result.failed_permanently <= result.placed.len());
        prop_assert_eq!(stats.dead_lettered as usize, result.failed_permanently);
        // Every loss event resolved: retried under budget or
        // dead-lettered (infeasible retries dead-letter too, so the
        // right-hand side can only exceed the losses).
        prop_assert!(
            stats.retries_scheduled + stats.dead_lettered >= stats.tasks_lost,
            "lost {} > retried {} + dead-lettered {}",
            stats.tasks_lost, stats.retries_scheduled, stats.dead_lettered
        );
        // Histogram bookkeeping matches the counters.
        prop_assert_eq!(stats.backoff.count(), stats.retries_scheduled);
        prop_assert!(stats.reschedule.count() + stats.dead_lettered <= stats.retries_scheduled + stats.tasks_lost);
    }

    /// The whole fault pipeline is a pure function of its seeds.
    #[test]
    fn fault_runs_are_bit_deterministic(case in arb_case()) {
        let (r1, a1, s1) = run_case(&case);
        let (r2, a2, s2) = run_case(&case);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(s1, s2);
    }
}

/// A crash landing on a machine the churn plan is draining must void
/// the drain claim: the churn source skips its stale Restore, the fault
/// plane owns recovery, and the counters still balance.
#[test]
fn crash_overrides_inflight_drain_and_conservation_holds() {
    let (cluster, ids) = cluster(6);
    let arrivals: Vec<PendingTask> = (0..18u64).map(|k| task(k, 0, 0.3)).collect();
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 20,
        mean_runtime: 400_000_000, // effectively never finish naturally
        horizon: 80_000_000,
        seed: 2,
    };
    // Churn drains machine 0 at t=10s (restore planned at t=50s); the
    // fault plane crashes the same machine at t=20s while it is drained
    // (capacity-inert) and recovers it at t=40s.
    let churn_plan = ChurnPlan::new(vec![
        (10_000_000, ChurnAction::Fail(0)),
        (50_000_000, ChurnAction::Restore(0)),
    ]);
    let fault_plan = FaultPlan::new(vec![
        (20_000_000, ctlm_sched::FaultAction::Crash(0)),
        (40_000_000, ctlm_sched::FaultAction::Recover(0)),
        // A second, online machine crashes too, so tasks are lost.
        (22_000_000, ctlm_sched::FaultAction::Crash(3)),
        (45_000_000, ctlm_sched::FaultAction::Recover(3)),
    ]);
    let simulator = Simulator::new(config);
    let mut scheduler = MainOnly;
    let mut harness = simulator.harness(cluster, &arrivals, &mut scheduler);
    harness.state().borrow_mut().enable_faults(
        Box::new(FixedRetry {
            delay: 2_000_000,
            budget: 3,
        }),
        7,
    );
    let guard = OwnershipGuard::new();
    let churn = ChurnSource::new(churn_plan, harness.engine).with_guard(guard.clone());
    let first = churn.first_time();
    attach_source(&mut harness, "churn", churn, first, 0);
    let plane = FaultPlane::new(fault_plan, harness.engine).with_guard(guard.clone());
    let first = plane.first_time();
    attach_source(&mut harness, "faults", plane, first, 0);
    let state = harness.state();
    let (cluster_after, result) = harness.run();
    let state = state.borrow();
    let stats = state.fault_stats().cloned().unwrap();
    assert!(stats.crashed_machines >= 1, "online machine 3 crashed");
    assert!(stats.tasks_lost >= 1, "machine 3 carried running tasks");
    assert_eq!(
        state.stats().admitted_arrivals as usize,
        result.placed.len() + result.unplaced
    );
    assert_eq!(stats.dead_lettered as usize, result.failed_permanently);
    // Recovery belongs to the fault plane; the churn source's stale
    // Restore was skipped, and nobody holds a leaked claim at the end.
    assert!(guard.owner(0).is_none(), "no claim leaked on machine 0");
    assert_eq!(
        cluster_after.len(),
        6,
        "crash-recovered machines rejoin the fleet"
    );
    assert!(!ids.is_empty());
}

/// Without a fault runtime, a crash dead-letters its running tasks
/// immediately (loss is never silent even when nobody configured
/// retries).
#[test]
fn crash_without_retry_runtime_dead_letters_immediately() {
    let (cluster, _) = cluster(3);
    let arrivals: Vec<PendingTask> = (0..9u64).map(|k| task(k, 0, 0.3)).collect();
    let config = SimConfig {
        cycle: 500_000,
        attempts_per_cycle: 20,
        mean_runtime: 400_000_000,
        horizon: 40_000_000,
        seed: 4,
    };
    let plan = FaultPlan::new(vec![(10_000_000, ctlm_sched::FaultAction::Crash(1))]);
    let simulator = Simulator::new(config);
    let mut scheduler = MainOnly;
    let mut harness = simulator.harness(cluster, &arrivals, &mut scheduler);
    let plane = FaultPlane::new(plan, harness.engine);
    let first = plane.first_time();
    attach_source(&mut harness, "faults", plane, first, 0);
    let state = harness.state();
    let (_, result) = harness.run();
    let state = state.borrow();
    assert!(
        result.failed_permanently >= 1,
        "lost tasks must surface as failed_permanently, got {}",
        result.failed_permanently
    );
    assert_eq!(
        state.stats().admitted_arrivals as usize,
        result.placed.len() + result.unplaced
    );
}
