//! Property tests: capacity-indexed best-fit equals the retained linear
//! reference scan — over randomized clusters, task shapes, and
//! admit/complete/drain/restore churn sequences that exercise the
//! incremental maintenance of the free-capacity ordering.

use proptest::prelude::*;

use ctlm_data::compaction::collapse;
use ctlm_sched::placement::{best_fit, best_fit_linear, Placement};
use ctlm_sched::{CapacityFit, PendingTask, SchedCluster};
use ctlm_trace::{AttrValue, ConstraintOp as Op, Machine, MachineId, TaskConstraint};

/// One churn step applied between placement queries.
#[derive(Clone, Debug)]
enum ChurnOp {
    /// Place a task (cpu, mem quantized) on the tightest machine, if any.
    Admit { cpu: f64, mem: f64, priority: u8 },
    /// Complete (release) the k-th oldest live task, if any.
    Complete(usize),
    /// Drain the machine `k % fleet` (tasks evaporate for this test —
    /// the engine requeues them; here only index consistency matters).
    Drain(usize),
    /// Restore the k-th drained machine, if any.
    Restore(usize),
}

fn arb_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        (1u32..8, 1u32..8, 0u8..10).prop_map(|(c, m, p)| ChurnOp::Admit {
            cpu: c as f64 / 8.0,
            mem: m as f64 / 8.0,
            priority: p,
        }),
        (1u32..8, 1u32..8, 0u8..10).prop_map(|(c, m, p)| ChurnOp::Admit {
            cpu: c as f64 / 8.0,
            mem: m as f64 / 8.0,
            priority: p,
        }),
        (0usize..64).prop_map(ChurnOp::Complete),
        (0usize..64).prop_map(ChurnOp::Complete),
        (0usize..64).prop_map(ChurnOp::Drain),
        (0usize..64).prop_map(ChurnOp::Restore),
    ]
}

fn arb_reqs() -> impl Strategy<Value = Vec<TaskConstraint>> {
    prop_oneof![
        Just(vec![]),
        (0i64..24).prop_map(|v| vec![TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(v))))]),
        (0i64..24, 1i64..12).prop_map(|(lo, w)| vec![
            TaskConstraint::new(0, Op::GreaterThanEqual(lo)),
            TaskConstraint::new(0, Op::LessThan(lo + w)),
        ]),
        Just(vec![TaskConstraint::new(1, Op::Present)]),
        Just(vec![TaskConstraint::new(1, Op::NotPresent)]),
    ]
}

fn fleet(n: usize) -> SchedCluster {
    let mut ms = Vec::new();
    for i in 0..n as u64 {
        let mut m = Machine::new(i, 1.0, 1.0);
        m.set_attr(0, AttrValue::Int(i as i64));
        if i % 3 == 0 {
            m.set_attr(1, AttrValue::Int(1));
        }
        ms.push(m);
    }
    SchedCluster::from_machines(ms)
}

fn probe(reqs: &[TaskConstraint], cpu: f64, mem: f64) -> PendingTask {
    PendingTask {
        id: u64::MAX,
        collection: 0,
        cpu,
        memory: mem,
        priority: 5,
        reqs: collapse(reqs).unwrap(),
        arrival: 0,
        truth_group: 25,
    }
}

/// Asserts the indexed path and the linear reference agree for a probe.
fn assert_equivalent(cluster: &SchedCluster, task: &PendingTask) {
    let indexed = best_fit(cluster, task);
    let linear = best_fit_linear(cluster, task);
    assert_eq!(
        indexed, linear,
        "indexed best-fit diverged from the linear reference"
    );
    // `tightest_fit` (the engine's can_admit probe) tells the same story.
    let fit = cluster.tightest_fit(&task.reqs, task.cpu, task.memory);
    match (&indexed, fit) {
        (Placement::Placed(m), CapacityFit::Fit(f)) => assert_eq!(*m, f),
        (Placement::NoCapacity, CapacityFit::NoCapacity) => {}
        (Placement::Infeasible, CapacityFit::Infeasible) => {}
        other => panic!("best_fit and tightest_fit disagree: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The capacity index stays equivalent to the linear scan across
    /// random admit/complete/drain/restore sequences, for every probe
    /// shape, at every step.
    #[test]
    fn indexed_best_fit_tracks_linear_reference_under_churn(
        machines in 2usize..24,
        ops in prop::collection::vec(arb_op(), 0..60),
        probes in prop::collection::vec((arb_reqs(), 1u32..8), 1..6),
    ) {
        let mut cluster = fleet(machines);
        let mut live: Vec<(u64, MachineId)> = Vec::new();
        let mut drained: Vec<MachineId> = Vec::new();
        let mut next_task = 0u64;
        for op in ops {
            match op {
                ChurnOp::Admit { cpu, mem, priority } => {
                    let t = probe(&[], cpu, mem);
                    if let Placement::Placed(m) = best_fit(&cluster, &t) {
                        cluster.place(m, next_task, cpu, mem, priority);
                        live.push((next_task, m));
                        next_task += 1;
                    }
                }
                ChurnOp::Complete(k) => {
                    if !live.is_empty() {
                        let (task, m) = live.remove(k % live.len());
                        prop_assert!(cluster.release(m, task));
                    }
                }
                ChurnOp::Drain(k) => {
                    let id = (k % machines) as MachineId;
                    if cluster.remove_machine(id).is_some() {
                        live.retain(|&(_, m)| m != id);
                        drained.push(id);
                    }
                }
                ChurnOp::Restore(k) => {
                    if !drained.is_empty() {
                        let id = drained.remove(k % drained.len());
                        prop_assert!(cluster.restore_machine(id));
                    }
                }
            }
            for (reqs, cpu) in &probes {
                let t = probe(reqs, *cpu as f64 / 8.0, *cpu as f64 / 8.0);
                assert_equivalent(&cluster, &t);
            }
        }
        // And after a reset, the rebuilt index still agrees.
        cluster.reset();
        for (reqs, cpu) in &probes {
            let t = probe(reqs, *cpu as f64 / 8.0, *cpu as f64 / 8.0);
            assert_equivalent(&cluster, &t);
        }
    }

    /// Saturation boundary: filling the fleet flips probes from Placed to
    /// NoCapacity identically on both paths.
    #[test]
    fn saturation_agrees_on_both_paths(
        machines in 1usize..10,
        load in 1u32..8,
    ) {
        let mut cluster = fleet(machines);
        let chunk = load as f64 / 8.0;
        let mut id = 0u64;
        loop {
            let t = probe(&[], chunk, chunk);
            assert_equivalent(&cluster, &t);
            match best_fit(&cluster, &t) {
                Placement::Placed(m) => {
                    cluster.place(m, id, chunk, chunk, 1);
                    id += 1;
                }
                Placement::NoCapacity => break,
                other => prop_assert!(false, "unexpected {other:?}"),
            }
            prop_assert!(id < 10_000, "saturation must terminate");
        }
    }
}
