//! Background model updates.
//!
//! “Updating ML model runs in parallel and won't block or slow down the
//! main cluster scheduler.” A dedicated thread owns the
//! [`GrowingModel`]; schedulers keep reading the previously installed
//! analyzer from the [`ModelRegistry`] while retraining proceeds, and the
//! refreshed analyzer is hot-swapped in on completion.

use std::thread::JoinHandle;

use std::sync::mpsc::{channel, Sender};

use ctlm_core::{GrowingModel, ModelRegistry, TaskCoAnalyzer, TrainConfig};
use ctlm_data::dataset::Dataset;
use ctlm_data::vocab::ValueVocab;

enum Msg {
    Train {
        dataset: Box<Dataset>,
        vocab: Box<ValueVocab>,
        seed: u64,
    },
    Shutdown,
}

/// Handle to the background updater thread.
pub struct ModelUpdater {
    tx: Sender<Msg>,
    handle: Option<JoinHandle<usize>>,
}

impl ModelUpdater {
    /// Spawns the updater; trained analyzers are installed into
    /// `registry`.
    pub fn spawn(registry: ModelRegistry, config: TrainConfig) -> Self {
        let (tx, rx) = channel::<Msg>();
        let handle = std::thread::spawn(move || {
            let mut model = GrowingModel::new(config);
            let mut steps_done = 0usize;
            while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Train {
                        dataset,
                        vocab,
                        seed,
                    } => {
                        let outcome = model.step(&dataset, seed);
                        if outcome.accepted || model.is_trained() {
                            // The vocabulary may already be wider than
                            // the step's dataset (values observed after
                            // the snapshot); pad without retraining.
                            let net = if vocab.len() > model.features() {
                                model.to_net_padded(vocab.len())
                            } else {
                                model.to_net()
                            };
                            let mut analyzer = TaskCoAnalyzer::new(net, *vocab);
                            analyzer.priority_threshold = 0;
                            registry.install(analyzer);
                        }
                        steps_done += 1;
                    }
                    Msg::Shutdown => break,
                }
            }
            steps_done
        });
        Self {
            tx,
            handle: Some(handle),
        }
    }

    /// Queues a (dataset, vocabulary) pair for training. Non-blocking.
    pub fn submit(&self, dataset: Dataset, vocab: ValueVocab, seed: u64) {
        let _ = self.tx.send(Msg::Train {
            dataset: Box::new(dataset),
            vocab: Box::new(vocab),
            seed,
        });
    }

    /// Drains queued work, stops the thread, and returns how many steps
    /// it completed.
    pub fn shutdown(mut self) -> usize {
        let _ = self.tx.send(Msg::Shutdown);
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for ModelUpdater {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_data::dataset::{DatasetBuilder, NUM_GROUPS};
    use ctlm_trace::AttrValue;

    /// A trivially learnable dataset over a small vocabulary.
    fn dataset_and_vocab() -> (Dataset, ValueVocab) {
        let mut vocab = ValueVocab::new();
        for v in 0..12 {
            vocab.observe(0, &AttrValue::Int(v));
        }
        let width = vocab.len();
        let mut b = DatasetBuilder::new(width, NUM_GROUPS);
        for k in 1..12usize {
            for _ in 0..25 {
                let entries: Vec<(usize, f32)> = (k + 1..width).map(|c| (c, 1.0)).collect();
                b.push(entries, ctlm_data::dataset::group_for_count(k, 1));
            }
        }
        (b.snapshot(width), vocab)
    }

    #[test]
    fn updater_trains_and_installs_without_blocking_caller() {
        let registry = ModelRegistry::new();
        let updater = ModelUpdater::spawn(
            registry.clone(),
            TrainConfig {
                epochs_limit: 60,
                max_attempts: 2,
                ..TrainConfig::default()
            },
        );
        assert!(
            !registry.is_ready(),
            "registry empty until training completes"
        );
        let (ds, vocab) = dataset_and_vocab();
        updater.submit(ds, vocab, 1);
        // The caller (the "scheduler") is free immediately; wait for the
        // install to land.
        let steps = updater.shutdown();
        assert_eq!(steps, 1);
        assert!(
            registry.is_ready(),
            "analyzer must be installed after training"
        );
        let analyzer = registry.get().unwrap();
        assert_eq!(analyzer.features(), 13);
    }

    #[test]
    fn multiple_submissions_process_in_order() {
        let registry = ModelRegistry::new();
        let updater = ModelUpdater::spawn(
            registry.clone(),
            TrainConfig {
                epochs_limit: 40,
                max_attempts: 1,
                ..TrainConfig::default()
            },
        );
        let (ds, vocab) = dataset_and_vocab();
        updater.submit(ds.clone(), vocab.clone(), 1);
        updater.submit(ds, vocab, 2);
        let steps = updater.shutdown();
        assert_eq!(steps, 2);
        assert!(registry.is_ready());
    }

    #[test]
    fn drop_shuts_the_thread_down() {
        let registry = ModelRegistry::new();
        let updater = ModelUpdater::spawn(registry, TrainConfig::default());
        drop(updater); // must not hang
    }
}
