//! The open scheduling-policy surface.
//!
//! The engine used to switch over a closed `Policy` enum; policies are
//! now impls of the [`Scheduler`] trait, so new routing strategies plug
//! in without touching the engine. A scheduler's single job is admission
//! routing: decide, per arriving task, whether it goes to the
//! high-priority queue (served with preemption fallback ahead of the
//! main queue) or the main FIFO queue.

use std::sync::Arc;

use ctlm_core::{ModelRegistry, TaskCoAnalyzer};

use crate::queue::PendingTask;

/// Admission router: the policy under test.
///
/// `route` takes `&mut self` so stateful schedulers (e.g. ones tracking
/// queue pressure, or re-reading a hot-swapped model) fit the trait.
pub trait Scheduler {
    /// True routes the task to the high-priority scheduler.
    fn route_high_priority(&mut self, task: &PendingTask) -> bool;

    /// Policy name, for reports.
    fn name(&self) -> &'static str;
}

/// Conventional baseline: one FIFO queue, nothing is high-priority.
#[derive(Clone, Copy, Debug, Default)]
pub struct MainOnly;

impl Scheduler for MainOnly {
    fn route_high_priority(&mut self, _task: &PendingTask) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "main_only"
    }
}

/// Fig. 3: the Task CO Analyzer flags restrictive tasks. The analyzer
/// sees constraints only — never the ground-truth group.
#[derive(Clone, Debug)]
pub struct Enhanced {
    analyzer: Arc<TaskCoAnalyzer>,
}

impl Enhanced {
    /// An enhanced scheduler around a trained analyzer.
    pub fn new(analyzer: Arc<TaskCoAnalyzer>) -> Self {
        Self { analyzer }
    }
}

impl Scheduler for Enhanced {
    fn route_high_priority(&mut self, task: &PendingTask) -> bool {
        !task.reqs.is_empty() && analyzer_flags(&self.analyzer, task)
    }
    fn name(&self) -> &'static str {
        "enhanced"
    }
}

/// Ablation: perfect (oracle) routing by ground-truth group.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleEnhanced;

impl Scheduler for OracleEnhanced {
    fn route_high_priority(&mut self, task: &PendingTask) -> bool {
        task.truth_group == 0
    }
    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// The online-loop scheduler: routes through whatever analyzer is
/// currently installed in the [`ModelRegistry`], so a background
/// [`crate::updater::ModelUpdater`] hot-swapping models *during* the
/// simulated run changes routing live. Until a first model lands, every
/// task goes to the main queue (the paper's cold-start behavior).
#[derive(Clone, Debug)]
pub struct LiveRegistry {
    registry: ModelRegistry,
    /// Cached analyzer, refreshed only when the registry version moves —
    /// keeps the per-task cost at one atomic load.
    cached: Option<(u64, Arc<TaskCoAnalyzer>)>,
}

impl LiveRegistry {
    /// A scheduler reading from `registry`.
    pub fn new(registry: ModelRegistry) -> Self {
        Self {
            registry,
            cached: None,
        }
    }

    /// Number of distinct model versions this scheduler has routed with
    /// (0 until the first install lands).
    pub fn model_version(&self) -> u64 {
        self.cached.as_ref().map(|(v, _)| *v).unwrap_or(0)
    }
}

impl Scheduler for LiveRegistry {
    fn route_high_priority(&mut self, task: &PendingTask) -> bool {
        let v = self.registry.version();
        if self.cached.as_ref().map(|(cv, _)| *cv) != Some(v) {
            self.cached = self.registry.get().map(|a| (v, a));
        }
        match &self.cached {
            Some((_, analyzer)) => !task.reqs.is_empty() && analyzer_flags(analyzer, task),
            None => false,
        }
    }
    fn name(&self) -> &'static str {
        "live_registry"
    }
}

/// Scores a pending task's collapsed requirements through the analyzer's
/// network (the queue stores collapsed requirements; the analyzer's
/// public API consumes raw constraints).
pub fn analyzer_flags(analyzer: &TaskCoAnalyzer, t: &PendingTask) -> bool {
    use ctlm_data::encode::co_vv::CoVvEncoder;
    use ctlm_tensor::CsrBuilder;
    let entries = CoVvEncoder.encode_requirements(&t.reqs, analyzer.vocab());
    let mut b = CsrBuilder::new(analyzer.features());
    b.push_row(entries);
    let g = analyzer.net().predict(&b.finish())[0];
    g <= analyzer.priority_threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(truth_group: u8) -> PendingTask {
        PendingTask {
            id: 1,
            collection: 1,
            cpu: 0.1,
            memory: 0.1,
            priority: 0,
            reqs: vec![],
            arrival: 0,
            truth_group,
        }
    }

    #[test]
    fn main_only_never_routes() {
        assert!(!MainOnly.route_high_priority(&task(0)));
    }

    #[test]
    fn oracle_routes_exactly_group0() {
        let mut s = OracleEnhanced;
        assert!(s.route_high_priority(&task(0)));
        assert!(!s.route_high_priority(&task(1)));
    }

    #[test]
    fn live_registry_routes_nothing_until_install() {
        let mut s = LiveRegistry::new(ModelRegistry::new());
        assert!(!s.route_high_priority(&task(0)));
        assert_eq!(s.model_version(), 0);
    }
}
