//! The discrete-event scheduling simulation.
//!
//! Reproduces the Fig. 3 experiment: identical task arrivals are pushed
//! through (a) a conventional main-scheduler-only pipeline and (b) the
//! enhanced pipeline where the Task CO Analyzer routes restrictive tasks
//! to a High-Priority Scheduler served ahead of the main queue (with the
//! Kubernetes-style preemption fallback). The output is scheduling
//! latency per ground-truth suitable-node group.
//!
//! The contention mechanics matter: the main scheduler examines a bounded
//! number of queue heads per cycle (head-of-line pressure), so a
//! restrictive task that misses its single suitable node keeps cycling to
//! the back — exactly the pathology the paper's analyzer removes.

use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use ctlm_core::TaskCoAnalyzer;
use ctlm_data::compaction::collapse;
use ctlm_trace::{EventPayload, GeneratedTrace, Micros, TaskId};

use crate::cluster::SchedCluster;
use crate::latency::LatencyStats;
use crate::placement::{best_fit, best_fit_with_preemption, Placement};
use crate::queue::{PendingQueue, PendingTask};

/// Scheduling policy under test.
#[derive(Clone)]
pub enum Policy {
    /// Conventional: one FIFO queue, best-fit, no analyzer.
    MainOnly,
    /// Fig. 3: the analyzer flags restrictive tasks into a high-priority
    /// queue served first each cycle, with preemption fallback.
    Enhanced(Arc<TaskCoAnalyzer>),
    /// Ablation: perfect (oracle) routing by ground-truth group.
    OracleEnhanced,
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Scheduler pass period (µs).
    pub cycle: Micros,
    /// Main-queue placement attempts per cycle (the head-of-line budget).
    pub attempts_per_cycle: usize,
    /// Mean task runtime (µs), exponential.
    pub mean_runtime: Micros,
    /// Give-up horizon (µs) — tasks still pending at the end count as
    /// unplaced.
    pub horizon: Micros,
    /// RNG seed for runtimes.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cycle: 1_000_000, // 1 s scheduler passes
            attempts_per_cycle: 8,
            mean_runtime: 120_000_000, // 2 min mean runtime
            horizon: 3_600_000_000,    // 1 h
            seed: 0,
        }
    }
}

/// One placed task's outcome.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PlacedRecord {
    /// Task id.
    pub task: TaskId,
    /// Ground-truth suitable-node group.
    pub truth_group: u8,
    /// Scheduling latency: placement time − arrival time (µs).
    pub latency: Micros,
    /// Whether this task was ever preempted after placement.
    pub was_preempted: bool,
}

/// Simulation output.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// Placed tasks.
    pub placed: Vec<PlacedRecord>,
    /// Tasks never placed within the horizon.
    pub unplaced: usize,
    /// Total preemption evictions performed.
    pub preemptions: usize,
}

impl SimResult {
    /// Latency statistics over tasks whose truth group satisfies `pred`.
    pub fn latency_where(&self, pred: impl Fn(u8) -> bool) -> Option<LatencyStats> {
        let samples: Vec<Micros> = self
            .placed
            .iter()
            .filter(|r| pred(r.truth_group))
            .map(|r| r.latency)
            .collect();
        LatencyStats::from_samples(&samples)
    }

    /// Latency statistics for Group 0 (single-suitable-node) tasks.
    pub fn group0_latency(&self) -> Option<LatencyStats> {
        self.latency_where(|g| g == 0)
    }

    /// Latency statistics for everything else.
    pub fn other_latency(&self) -> Option<LatencyStats> {
        self.latency_where(|g| g != 0)
    }
}

#[derive(PartialEq, Eq)]
struct Finish(Micros, TaskId, u64); // (end, task, machine)

impl Ord for Finish {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by end time.
        other.0.cmp(&self.0).then(other.1.cmp(&self.1))
    }
}
impl PartialOrd for Finish {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulator.
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// A simulator with the given parameters.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// Runs `arrivals` (sorted by arrival time) against the cluster under
    /// the policy.
    pub fn run(
        &self,
        mut cluster: SchedCluster,
        arrivals: &[PendingTask],
        policy: &Policy,
    ) -> SimResult {
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5C4E_D111);
        let mut result = SimResult::default();
        let mut hp = PendingQueue::new();
        let mut main = PendingQueue::new();
        let mut finishes: BinaryHeap<Finish> = BinaryHeap::new();
        let mut preempted_ids: std::collections::HashSet<TaskId> = Default::default();
        // Runtime per task, fixed at arrival so policies see identical
        // workloads.
        let mut next_arrival = 0usize;

        let mut now: Micros = 0;
        while now <= cfg.horizon {
            // 1. Complete finished tasks.
            while let Some(f) = finishes.peek() {
                if f.0 > now {
                    break;
                }
                let Finish(_, task, machine) = finishes.pop().expect("peeked");
                cluster.release(machine, task);
            }
            // 2. Admit arrivals.
            while next_arrival < arrivals.len() && arrivals[next_arrival].arrival <= now {
                let t = arrivals[next_arrival].clone();
                next_arrival += 1;
                let high_priority = match policy {
                    Policy::MainOnly => false,
                    Policy::Enhanced(analyzer) => {
                        // The analyzer sees constraints only — no truth.
                        !t.reqs.is_empty() && {
                            // Re-derive the raw constraint check through
                            // the analyzer's encoded prediction.
                            analyzer_flags(analyzer, &t)
                        }
                    }
                    Policy::OracleEnhanced => t.truth_group == 0,
                };
                if high_priority {
                    hp.push(t);
                } else {
                    main.push(t);
                }
            }
            // 3. High-priority scheduler: serve the whole HP queue with
            //    preemption fallback.
            let hp_len = hp.len();
            for _ in 0..hp_len {
                let Some(t) = hp.pop() else { break };
                match best_fit_with_preemption(&cluster, &t) {
                    Placement::Placed(m) => {
                        place(
                            &mut cluster,
                            &mut finishes,
                            &mut result,
                            &mut rng,
                            &cfg,
                            &t,
                            m,
                            now,
                            &preempted_ids,
                        );
                    }
                    Placement::PlacedWithPreemption(m, victims) => {
                        // Kubernetes-style eviction: victims lose their
                        // slot; their placed record is marked disrupted
                        // (rescheduling checkpointed work is out of scope
                        // for the latency experiment).
                        for v in victims {
                            cluster.release(m, v);
                            result.preemptions += 1;
                            preempted_ids.insert(v);
                            if let Some(rec) = result.placed.iter_mut().find(|r| r.task == v) {
                                rec.was_preempted = true;
                            }
                        }
                        place(
                            &mut cluster,
                            &mut finishes,
                            &mut result,
                            &mut rng,
                            &cfg,
                            &t,
                            m,
                            now,
                            &preempted_ids,
                        );
                    }
                    Placement::Infeasible => {
                        // No node can ever satisfy the affinity —
                        // Kubernetes would error the pod; we drop it.
                        result.unplaced += 1;
                    }
                    Placement::NoCapacity => hp.requeue(t),
                }
            }
            // 4. Main scheduler: bounded attempts per cycle.
            for _ in 0..cfg.attempts_per_cycle.min(main.len()) {
                let Some(t) = main.pop() else { break };
                match best_fit(&cluster, &t) {
                    Placement::Placed(m) => {
                        place(
                            &mut cluster,
                            &mut finishes,
                            &mut result,
                            &mut rng,
                            &cfg,
                            &t,
                            m,
                            now,
                            &preempted_ids,
                        );
                    }
                    Placement::Infeasible => result.unplaced += 1,
                    _ => main.requeue(t),
                }
            }
            now += cfg.cycle;
        }
        result.unplaced += hp.len() + main.len();
        result
    }
}

#[allow(clippy::too_many_arguments)]
fn place(
    cluster: &mut SchedCluster,
    finishes: &mut BinaryHeap<Finish>,
    result: &mut SimResult,
    rng: &mut StdRng,
    cfg: &SimConfig,
    t: &PendingTask,
    machine: u64,
    now: Micros,
    preempted: &std::collections::HashSet<TaskId>,
) {
    cluster.place(machine, t.id, t.cpu, t.memory, t.priority);
    let u: f64 = rng.gen_range(1e-9..1.0);
    let runtime = ((-u.ln()) * cfg.mean_runtime as f64) as Micros;
    finishes.push(Finish(now + runtime.max(1), t.id, machine));
    result.placed.push(PlacedRecord {
        task: t.id,
        truth_group: t.truth_group,
        latency: now - t.arrival,
        was_preempted: preempted.contains(&t.id),
    });
}

fn analyzer_flags(analyzer: &TaskCoAnalyzer, t: &PendingTask) -> bool {
    // The queue stores collapsed requirements; the analyzer consumes raw
    // constraints, so score through its network directly via the encoded
    // requirements.
    use ctlm_data::encode::co_vv::CoVvEncoder;
    use ctlm_tensor::CsrBuilder;
    let entries = CoVvEncoder.encode_requirements(&t.reqs, analyzer.vocab());
    let mut b = CsrBuilder::new(analyzer.features());
    b.push_row(entries);
    let g = analyzer.net().predict(&b.finish())[0];
    g <= analyzer.priority_threshold
}

/// Rescales arrival times into `[0, span]`, preserving order — trace
/// horizons are weeks, scheduler experiments run minutes-to-hours of
/// simulated time, so the workload is compressed onto the experiment
/// window (intensifying contention, which is the regime of interest).
pub fn compress_timeline(arrivals: &mut [PendingTask], span: Micros) {
    let max = arrivals.iter().map(|t| t.arrival).max().unwrap_or(0);
    if max == 0 {
        return;
    }
    for t in arrivals.iter_mut() {
        t.arrival = ((t.arrival as u128 * span as u128) / max as u128) as Micros;
    }
}

/// Builds `(cluster, arrivals)` from a generated trace: machines from the
/// initial fleet, tasks from submissions (constraints collapsed,
/// ground-truth group computed against the full fleet).
pub fn arrivals_from_trace(
    trace: &GeneratedTrace,
    max_tasks: usize,
) -> (SchedCluster, Vec<PendingTask>) {
    let mut cluster = SchedCluster::new();
    let mut agocs_state = ctlm_agocs::ClusterState::new();
    // Use the full fleet (all machine adds) so truth groups are stable.
    for ev in &trace.events {
        if let EventPayload::MachineAdd(m) = &ev.payload {
            cluster.add_machine(m.clone());
            agocs_state.add_machine(m.clone());
        }
    }
    let mut arrivals = Vec::new();
    for ev in &trace.events {
        if arrivals.len() >= max_tasks {
            break;
        }
        if let EventPayload::TaskSubmit(task) = &ev.payload {
            let Ok(reqs) = collapse(&task.constraints) else {
                continue;
            };
            let suitable = ctlm_agocs::count_suitable(&agocs_state, &reqs);
            if suitable == 0 {
                continue;
            }
            let truth_group = ctlm_data::dataset::group_for_count(suitable, trace.group_width);
            arrivals.push(PendingTask {
                id: task.id,
                collection: task.collection,
                cpu: task.cpu.min(0.9),
                memory: task.memory.min(0.9),
                priority: task.priority,
                reqs,
                arrival: ev.time,
                truth_group,
            });
        }
    }
    (cluster, arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_trace::{AttrValue, Machine};

    /// A 6-machine cluster hit by a 10-second burst of 400 small tasks:
    /// the main queue backs up behind the per-cycle attempt budget, so a
    /// group-0 task arriving mid-burst waits out the whole FIFO backlog —
    /// unless the enhanced path lifts it into the HP queue.
    fn contended_setup() -> (SchedCluster, Vec<PendingTask>) {
        let mut ms = Vec::new();
        for i in 0..6u64 {
            let mut m = Machine::new(i, 1.0, 1.0);
            m.set_attr(0, AttrValue::Int(i as i64));
            ms.push(m);
        }
        let cluster = SchedCluster::from_machines(ms);
        let mut arrivals = Vec::new();
        for k in 0..400u64 {
            arrivals.push(PendingTask {
                id: k,
                collection: 1,
                cpu: 0.1,
                memory: 0.1,
                priority: 2,
                reqs: vec![],
                arrival: k * 25_000, // 400 tasks in 10 s
                truth_group: 25,
            });
        }
        // A few restrictive tasks pinned to machine 0.
        use ctlm_data::compaction::collapse;
        use ctlm_trace::{ConstraintOp as Op, TaskConstraint};
        for (j, t_arr) in [(0u64, 5_000_000u64), (1, 15_000_000), (2, 25_000_000)] {
            let reqs =
                collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(0))))]).unwrap();
            arrivals.push(PendingTask {
                id: 1000 + j,
                collection: 2,
                cpu: 0.2,
                memory: 0.2,
                priority: 6,
                reqs,
                arrival: t_arr,
                truth_group: 0,
            });
        }
        arrivals.sort_by_key(|t| t.arrival);
        (cluster, arrivals)
    }

    fn sim() -> Simulator {
        Simulator::new(SimConfig {
            cycle: 500_000,
            attempts_per_cycle: 3,
            mean_runtime: 5_000_000,
            horizon: 180_000_000,
            seed: 4,
        })
    }

    #[test]
    fn oracle_routing_cuts_group0_latency() {
        let (cluster, arrivals) = contended_setup();
        let base = sim().run(cluster.clone(), &arrivals, &Policy::MainOnly);
        let enhanced = sim().run(cluster, &arrivals, &Policy::OracleEnhanced);
        let b0 = base.group0_latency().expect("group0 placed under baseline");
        let e0 = enhanced
            .group0_latency()
            .expect("group0 placed under oracle");
        assert!(
            e0.mean < b0.mean,
            "enhanced group0 mean {} should beat baseline {}",
            e0.mean,
            b0.mean
        );
    }

    #[test]
    fn both_policies_place_most_tasks() {
        let (cluster, arrivals) = contended_setup();
        let base = sim().run(cluster.clone(), &arrivals, &Policy::MainOnly);
        let enhanced = sim().run(cluster, &arrivals, &Policy::OracleEnhanced);
        for (name, r) in [("base", &base), ("enhanced", &enhanced)] {
            let frac = r.placed.len() as f64 / arrivals.len() as f64;
            assert!(frac > 0.8, "{name} placed only {frac:.2}");
        }
    }

    #[test]
    fn preemption_happens_under_oracle_when_needed() {
        // Fill every machine with low-priority work, then submit a pinned
        // high-priority task: the HP path must preempt.
        let (cluster, _) = contended_setup();
        let mut arrivals = Vec::new();
        for k in 0..18u64 {
            arrivals.push(PendingTask {
                id: k,
                collection: 1,
                cpu: 0.33,
                memory: 0.33,
                priority: 1,
                reqs: vec![],
                arrival: 0,
                truth_group: 25,
            });
        }
        use ctlm_data::compaction::collapse;
        use ctlm_trace::{ConstraintOp as Op, TaskConstraint};
        let reqs = collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(0))))]).unwrap();
        arrivals.push(PendingTask {
            id: 999,
            collection: 2,
            cpu: 0.5,
            memory: 0.5,
            priority: 9,
            reqs,
            arrival: 2_000_000,
            truth_group: 0,
        });
        let config = SimConfig {
            cycle: 500_000,
            attempts_per_cycle: 20,
            mean_runtime: 200_000_000, // long tasks: no natural drain
            horizon: 30_000_000,
            seed: 1,
        };
        let r = Simulator::new(config).run(cluster, &arrivals, &Policy::OracleEnhanced);
        assert!(r.preemptions > 0, "expected preemption to fire");
        assert!(
            r.placed.iter().any(|p| p.task == 999),
            "pinned task must place"
        );
    }

    #[test]
    fn arrivals_from_trace_produces_feasible_tasks() {
        use ctlm_trace::{CellSet, Scale, TraceGenerator};
        let trace = TraceGenerator::generate_cell(
            CellSet::C2019c,
            Scale {
                machines: 80,
                collections: 150,
                seed: 3,
            },
        );
        let (cluster, arrivals) = arrivals_from_trace(&trace, 500);
        assert!(cluster.len() >= 70);
        assert!(!arrivals.is_empty());
        assert!(arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(arrivals
            .iter()
            .all(|t| t.cpu <= 0.9 && (t.truth_group as usize) < 26));
    }
}
