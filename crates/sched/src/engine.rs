//! The scheduling simulation, hosted on the `ctlm-sim` event kernel.
//!
//! Reproduces the Fig. 3 experiment: identical task arrivals are pushed
//! through (a) a conventional main-scheduler-only pipeline and (b) the
//! enhanced pipeline where the Task CO Analyzer routes restrictive tasks
//! to a High-Priority Scheduler served ahead of the main queue (with the
//! Kubernetes-style preemption fallback). The output is scheduling
//! latency per ground-truth suitable-node group.
//!
//! What used to be a bespoke `while now <= horizon` loop is now a set of
//! kernel components exchanging [`SchedEvent`]s on one timeline:
//!
//! * [`ArrivalSource`] — walks the (borrowed) arrival list and emits
//!   admission events at each task's arrival time;
//! * [`CycleTimer`] — fires the scheduler pass every `cycle` µs;
//! * [`EngineComponent`] — owns the cluster, queues and result; handles
//!   admissions, scheduler passes, task completions, machine churn and
//!   gang arrivals.
//!
//! Intra-instant ordering is pinned by kernel delivery classes: at one
//! timestamp, completions and machine-state changes ([`PRIO_STATE`])
//! deliver before admissions ([`PRIO_ADMIT`]), which deliver before the
//! scheduling pass ([`PRIO_PASS`]) — the same phase order the old
//! monolithic loop hardcoded, now explicit and shared with any scenario
//! component that joins the simulation (churn, trace feeds, rollouts).
//!
//! The contention mechanics matter: the main scheduler examines a bounded
//! number of queue heads per cycle (head-of-line pressure), so a
//! restrictive task that misses its single suitable node keeps cycling to
//! the back — exactly the pathology the paper's analyzer removes.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use ctlm_data::compaction::collapse;
use ctlm_sim::{CompId, Component, Ctx, Event, Sim};
use ctlm_telemetry::{Histogram, SpanLog, TraceEvent, TraceRing};
use ctlm_trace::{
    AttrId, AttrValue, EventPayload, GeneratedTrace, Machine, MachineId, Micros, TaskId,
};

use crate::arena::TaskSlab;
use crate::cluster::{CapacityFit, SchedCluster};
use crate::latency::LatencyStats;
use crate::placement::{BestFit, PlaceCtx, Placement, Placer, PreemptiveBestFit};
use crate::queue::PendingTask;
use crate::scheduler::Scheduler;
use crate::stream::{ArrivalStream, StreamingSource};

/// Delivery class for completions and machine-state changes — first at a
/// timestamp.
pub const PRIO_STATE: u8 = 0;
/// Delivery class for task admissions — after state changes.
pub const PRIO_ADMIT: u8 = 1;
/// Delivery class for the scheduling pass — last at a timestamp.
pub const PRIO_PASS: u8 = 2;

/// Events exchanged by the scheduling simulation's components.
#[derive(Clone, Debug)]
pub enum SchedEvent {
    /// Self-wakeup for source components (arrival source, cycle timer,
    /// churn source, trace feed).
    Wake,
    /// A task from the shared arrival list arrives (index into the
    /// engine's task arena — no task is cloned on admission).
    Arrival(usize),
    /// A dynamically created task arrives (online trace feeds).
    Admit(Box<PendingTask>),
    /// A gang arrives: its member tasks enter the arena together and
    /// must place all-or-nothing.
    GangArrival(Vec<PendingTask>),
    /// Scheduler pass.
    Cycle,
    /// A placed task's runtime elapsed. `epoch` guards against stale
    /// completions after churn re-placed the task elsewhere.
    Finish {
        /// The finishing task.
        task: TaskId,
        /// Machine it was placed on.
        machine: MachineId,
        /// Placement epoch the completion belongs to.
        epoch: u64,
    },
    /// A machine drains (churn / failure): its tasks re-enter the queue.
    MachineFail(MachineId),
    /// A machine *crashes* (fault plane): capacity leaves the index
    /// atomically and running tasks are **lost** — each is charged
    /// against the retry budget and either rescheduled after a backoff
    /// delay ([`SchedEvent::TaskRetry`]) or dead-lettered. Contrast with
    /// [`SchedEvent::MachineFail`], whose graceful drain requeues tasks
    /// immediately.
    MachineCrash(MachineId),
    /// A previously drained machine rejoins empty.
    MachineRestore(MachineId),
    /// A new machine joins the fleet.
    MachineJoin(Box<Machine>),
    /// One machine attribute changes (kernel rollouts and other
    /// vocabulary-growing updates).
    AttrUpdate {
        /// Machine being updated.
        machine: MachineId,
        /// Attribute being set or cleared.
        attr: AttrId,
        /// New value (`None` clears).
        value: Option<AttrValue>,
    },
    /// A task (index into the **home** cell's arrival arena) its home
    /// cell could not admit at arrival time. Emitted cross-shard by
    /// [`SpilloverForwarder`] via the epoch outbox; never delivered to an
    /// engine — the coordinator's barrier hook resolves it into an
    /// [`SchedEvent::Arrival`] (home cell) or [`SchedEvent::Admit`]
    /// (sibling cell) at the epoch boundary.
    SpillRequest(usize),
    /// A crash-lost task's backoff delay elapsed: the task (arena index)
    /// re-enters its queue behind the existing backlog. Admission
    /// counters are *not* re-bumped — the task was admitted exactly once.
    TaskRetry(usize),
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Scheduler pass period (µs).
    pub cycle: Micros,
    /// Main-queue placement attempts per cycle (the head-of-line budget).
    pub attempts_per_cycle: usize,
    /// Mean task runtime (µs), exponential.
    pub mean_runtime: Micros,
    /// Give-up horizon (µs) — tasks still pending at the end count as
    /// unplaced.
    pub horizon: Micros,
    /// RNG seed for runtimes.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cycle: 1_000_000, // 1 s scheduler passes
            attempts_per_cycle: 8,
            mean_runtime: 120_000_000, // 2 min mean runtime
            horizon: 3_600_000_000,    // 1 h
            seed: 0,
        }
    }
}

/// One placed task's outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedRecord {
    /// Task id.
    pub task: TaskId,
    /// Ground-truth suitable-node group.
    pub truth_group: u8,
    /// Scheduling latency: placement time − arrival time (µs).
    pub latency: Micros,
    /// Whether this task was ever preempted after placement.
    pub was_preempted: bool,
}

/// Simulation output.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// Placed tasks.
    pub placed: Vec<PlacedRecord>,
    /// Tasks never placed within the horizon.
    pub unplaced: usize,
    /// Total preemption evictions performed.
    pub preemptions: usize,
    /// Tasks evicted by machine churn and re-queued for placement.
    pub churn_rescheduled: usize,
    /// Gangs placed atomically.
    pub gangs_placed: usize,
    /// Crash-lost tasks whose retry budget ran out — the dead-letter
    /// terminal state. Always 0 without the fault plane. These tasks hold
    /// a placed record (they were running when lost), so the conservation
    /// identity stays `admitted == placed + unplaced` with
    /// `failed_permanently ≤ placed`.
    #[serde(default)]
    pub failed_permanently: usize,
}

impl SimResult {
    /// Latency statistics over tasks whose truth group satisfies `pred`.
    pub fn latency_where(&self, pred: impl Fn(u8) -> bool) -> Option<LatencyStats> {
        let samples: Vec<Micros> = self
            .placed
            .iter()
            .filter(|r| pred(r.truth_group))
            .map(|r| r.latency)
            .collect();
        // One gather, sorted in place — no second snapshot copy.
        LatencyStats::from_vec(samples)
    }

    /// Latency statistics for Group 0 (single-suitable-node) tasks.
    pub fn group0_latency(&self) -> Option<LatencyStats> {
        self.latency_where(|g| g == 0)
    }

    /// Latency statistics for everything else.
    pub fn other_latency(&self) -> Option<LatencyStats> {
        self.latency_where(|g| g != 0)
    }
}

/// Sim-plane engine telemetry: always-on placement-outcome and admission
/// counters plus queue-depth histograms.
///
/// Everything here is a pure function of the (deterministic) event
/// sequence — identical across thread counts and with/without metrics
/// export — and maintaining it is a few integer increments per event
/// with zero allocation (the histograms are fixed arrays), so it stays
/// inside the zero-allocation scheduling-pass contract.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Tasks placed without preemption.
    pub placed: u64,
    /// Tasks placed after evicting preemption victims.
    pub placed_with_preemption: u64,
    /// Tasks dropped as infeasible (no machine can ever suit them).
    pub infeasible: u64,
    /// `NoCapacity` outcomes — suitable machines existed but none had
    /// room; the task burned a cycle slot and went back to its queue.
    pub no_capacity: u64,
    /// Admissions from the arrival list or stream
    /// ([`SchedEvent::Arrival`]).
    pub admitted_arrivals: u64,
    /// Dynamic admissions ([`SchedEvent::Admit`] — spill-ins, online
    /// feeds).
    pub admitted_dynamic: u64,
    /// Gang members admitted ([`SchedEvent::GangArrival`]).
    pub admitted_gang_members: u64,
    /// Tasks this cell declined at arrival time and emitted to the epoch
    /// outbox as [`SchedEvent::SpillRequest`].
    pub spill_requests: u64,
    /// Scheduler passes executed.
    pub cycles: u64,
    /// High-priority-queue depth, sampled at the start of every pass.
    pub hp_depth: Histogram,
    /// Main-queue depth, sampled at the start of every pass.
    pub main_depth: Histogram,
}

/// A running task's bookkeeping entry.
#[derive(Clone, Copy, Debug)]
struct Running {
    /// Arena index of the task.
    idx: usize,
    /// Machine the task occupies.
    machine: MachineId,
    /// Placement epoch (monotone per placement).
    epoch: u64,
    /// When this placement started — a crash severing the task charges
    /// `now − started` to the lost-work account.
    started: Micros,
}

/// Per-task retry bookkeeping under the fault plane, keyed by arena
/// index (entries are dropped when the task finishes or dead-letters, so
/// recycled slab slots never inherit stale budgets).
#[derive(Clone, Copy, Debug, Default)]
struct RetryState {
    /// Losses charged against the policy budget so far.
    attempts: u32,
    /// When the task was last lost.
    lost_at: Micros,
    /// True while a retry is scheduled but the task has not re-placed.
    pending: bool,
}

/// The engine's optional fault runtime: the retry policy, its dedicated
/// seeded jitter RNG, per-task budgets and the fault telemetry. Boxed
/// behind `Option` so fault-free simulations carry one null-pointer-sized
/// field and take none of these code paths — the zero-allocation
/// scheduling-pass contract and report bytes are unchanged when no
/// `faults` block is configured.
struct FaultRuntime {
    policy: Box<dyn crate::faults::RetryPolicy>,
    rng: StdRng,
    attempts: HashMap<usize, RetryState>,
    stats: crate::faults::FaultStats,
}

/// The engine's mutable state, shared between the engine component and
/// the driver via `Rc<RefCell<...>>` (dslab-style).
pub struct EngineState<'a> {
    cfg: SimConfig,
    /// The arrival list, borrowed from the driver — admissions reference
    /// tasks by index instead of cloning them. Streamed cells pass `&[]`
    /// and feed every task through the slab instead.
    arrivals: &'a [PendingTask],
    /// Arena for tasks entering mid-run — streamed arrival chunks, gang
    /// members, dynamic admits. Indices continue past `arrivals.len()`;
    /// released slots let drained chunk segments reclaim their buffers.
    slab: TaskSlab,
    /// The cluster under scheduling.
    pub cluster: SchedCluster,
    scheduler: &'a mut dyn Scheduler,
    main_placer: &'a dyn Placer,
    hp_placer: &'a dyn Placer,
    hp: VecDeque<usize>,
    main: VecDeque<usize>,
    /// Gangs awaiting retry, as `(start, len)` ranges into the task
    /// arena — gang members are pushed contiguously on arrival, so no
    /// per-gang index list is ever allocated.
    pending_gangs: Vec<(usize, usize)>,
    rng: StdRng,
    result: SimResult,
    running: HashMap<TaskId, Running>,
    preempted: HashSet<TaskId>,
    placed_once: HashSet<TaskId>,
    next_epoch: u64,
    engine_id: CompId,
    /// Reusable placement scratch threaded through every attempt.
    place_ctx: PlaceCtx,
    /// Always-on sim-plane counters/histograms (see [`EngineStats`]).
    stats: EngineStats,
    /// Bounded structured event trace; `None` (the default) records
    /// nothing. See [`EngineState::enable_trace`].
    trace: Option<TraceRing>,
    /// Fault-plane runtime; `None` (the default) means crashes
    /// dead-letter immediately and no fault bookkeeping runs. See
    /// [`EngineState::enable_faults`].
    faults: Option<Box<FaultRuntime>>,
    /// Causal flight recorder; `None` (the default) records nothing and
    /// takes none of the span code paths. Shared (`Rc`) so control-plane
    /// components (fault plane, autoscaler) can record into the same
    /// per-cell log. See [`EngineState::enable_spans`].
    spans: Option<Rc<RefCell<SpanLog>>>,
}

impl<'a> EngineState<'a> {
    fn new(
        cfg: SimConfig,
        cluster: SchedCluster,
        arrivals: &'a [PendingTask],
        scheduler: &'a mut dyn Scheduler,
        main_placer: &'a dyn Placer,
        hp_placer: &'a dyn Placer,
    ) -> Self {
        // Record and bookkeeping capacities are reserved for the known
        // arrival population up front, so steady-state passes never grow
        // them (part of the zero-allocation-per-pass contract; tasks
        // arriving through the dynamic `extra` arena may still grow).
        let n = arrivals.len();
        let mut result = SimResult::default();
        result.placed.reserve(n);
        Self {
            cfg,
            arrivals,
            slab: TaskSlab::default(),
            cluster,
            scheduler,
            main_placer,
            hp_placer,
            hp: VecDeque::with_capacity(n.min(1024)),
            main: VecDeque::with_capacity(n.min(1024)),
            pending_gangs: Vec::new(),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x5C4E_D111),
            result,
            running: HashMap::with_capacity(n),
            preempted: HashSet::new(),
            placed_once: HashSet::with_capacity(n),
            next_epoch: 0,
            engine_id: 0,
            place_ctx: PlaceCtx::new(),
            stats: EngineStats::default(),
            trace: None,
            faults: None,
            spans: None,
        }
    }

    /// The task behind an arena index.
    ///
    /// # Panics
    /// Panics for released slots (see [`EngineState::release_slot`]) —
    /// a released index must never be read again.
    pub fn task(&self, idx: usize) -> &PendingTask {
        if idx < self.arrivals.len() {
            &self.arrivals[idx]
        } else {
            self.slab.get(idx - self.arrivals.len())
        }
    }

    /// Appends a dynamically created task to the arena, returning its
    /// index.
    pub fn push_extra(&mut self, t: PendingTask) -> usize {
        self.arrivals.len() + self.slab.push_one(t)
    }

    /// Appends one time-sorted arrival chunk to the arena as an
    /// index-stable segment, taking ownership of the buffer. Returns the
    /// segment's `(start, len)` arena index range. The streaming arrival
    /// path ([`StreamingSource`]) refills through this.
    pub fn push_chunk(&mut self, buf: Vec<PendingTask>) -> (usize, usize) {
        let (rel, len) = self.slab.push_sealed(buf);
        (self.arrivals.len() + rel, len)
    }

    /// A cleared task buffer for the next arrival chunk — recycled from
    /// drained chunk segments when one is available, so steady-state
    /// streaming reuses the same few allocations.
    pub fn take_slab_buffer(&mut self) -> Vec<PendingTask> {
        self.slab.take_buffer()
    }

    /// Returns an unused chunk buffer to the recycle pool.
    pub fn recycle_slab_buffer(&mut self, buf: Vec<PendingTask>) {
        self.slab.recycle_buffer(buf);
    }

    /// Marks an arena slot dead — the task finished, was dropped as
    /// infeasible, was evicted, or was cloned away to a sibling cell —
    /// so its chunk segment can reclaim its buffer once fully drained.
    /// No-op for indices in the borrowed arrival list (nothing to
    /// reclaim there). The index must never be read again afterwards.
    pub fn release_slot(&mut self, idx: usize) {
        if idx >= self.arrivals.len() {
            self.slab.release(idx - self.arrivals.len());
        }
    }

    /// Pending main-queue depth (scenario components may inspect it).
    pub fn main_queue_len(&self) -> usize {
        self.main.len()
    }

    /// Pending high-priority-queue depth.
    pub fn hp_queue_len(&self) -> usize {
        self.hp.len()
    }

    /// Gang members awaiting an all-or-nothing retry.
    pub fn pending_gang_members(&self) -> usize {
        self.pending_gangs.iter().map(|&(_, len)| len).sum()
    }

    /// Cumulative task admissions (fresh arrivals, dynamic admits and
    /// gang members; churn requeues are *not* re-counted) — control
    /// planes diff successive reads for an arrival-rate estimate.
    pub fn admitted(&self) -> u64 {
        self.stats.admitted_arrivals
            + self.stats.admitted_dynamic
            + self.stats.admitted_gang_members
    }

    /// Cumulative `NoCapacity` placement outcomes — the queue-pressure
    /// signal an autoscaler watches: suitable machines existed but none
    /// had room, so the task burned a cycle slot and went back to the
    /// queue.
    pub fn no_capacity_events(&self) -> u64 {
        self.stats.no_capacity
    }

    /// The sim-plane telemetry counters and histograms accumulated so
    /// far. Always maintained (the cost is a handful of integer adds per
    /// event); exporters snapshot this after the run.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Switches on the bounded structured event trace: the last
    /// `capacity` delivered events are kept in a preallocated ring (a
    /// `capacity` of 0 turns tracing back off). Recording into a full
    /// ring overwrites the oldest entry and never allocates, so tracing
    /// is compatible with the zero-allocation scheduling-pass contract
    /// once the ring exists.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = if capacity == 0 {
            None
        } else {
            Some(TraceRing::new(capacity))
        };
    }

    /// The event trace ring, when [`EngineState::enable_trace`] switched
    /// it on.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.trace.as_ref()
    }

    /// Switches on the fault-plane runtime: crash-lost tasks consult
    /// `policy` (jitter drawn from a dedicated RNG seeded with `seed`)
    /// and are rescheduled or dead-lettered. Without this, a delivered
    /// [`SchedEvent::MachineCrash`] dead-letters every lost task
    /// immediately.
    pub fn enable_faults(&mut self, policy: Box<dyn crate::faults::RetryPolicy>, seed: u64) {
        self.faults = Some(Box::new(FaultRuntime {
            policy,
            rng: StdRng::seed_from_u64(seed ^ 0xFA17_4E77),
            attempts: HashMap::new(),
            stats: crate::faults::FaultStats::default(),
        }));
    }

    /// The fault runtime's counters and histograms, when
    /// [`EngineState::enable_faults`] switched it on.
    pub fn fault_stats(&self) -> Option<&crate::faults::FaultStats> {
        self.faults.as_deref().map(|f| &f.stats)
    }

    /// Switches on the causal flight recorder and returns a handle to
    /// the cell's span log (idempotent — repeated calls share one log).
    /// Control-plane components (fault plane, autoscaler) clone the
    /// handle to record their decision spans into the same timeline.
    ///
    /// Recording is sim-plane only, so the log is byte-identical across
    /// `execution.threads`, and span storage grows only on lifecycle
    /// *transitions* — steady-state scheduling passes update open spans
    /// in place without allocating.
    pub fn enable_spans(&mut self) -> Rc<RefCell<SpanLog>> {
        if self.spans.is_none() {
            self.spans = Some(Rc::new(RefCell::new(SpanLog::new())));
        }
        self.spans.as_ref().expect("just set").clone()
    }

    /// The span-log handle, when [`EngineState::enable_spans`] switched
    /// the recorder on.
    pub fn spans_handle(&self) -> Option<Rc<RefCell<SpanLog>>> {
        self.spans.clone()
    }

    /// Takes the recorded span log out of the engine (after the run),
    /// leaving the recorder disabled. Finish the run first (e.g.
    /// [`CellHandle::finish`]) so open spans are closed at the horizon.
    pub fn take_spans(&mut self) -> Option<SpanLog> {
        self.spans
            .take()
            .map(|rc| std::mem::take(&mut *rc.borrow_mut()))
    }

    /// Crash events that removed an online machine so far — control
    /// planes diff successive reads to detect crash-induced capacity
    /// loss (always 0 without the fault runtime).
    pub fn crashed_machines(&self) -> u64 {
        self.faults
            .as_deref()
            .map_or(0, |f| f.stats.crashed_machines)
    }

    /// Counts replacement machines the control plane ordered against
    /// crash-induced capacity loss (no-op when the fault plane is off).
    pub fn note_replacements(&mut self, n: u64) {
        if let Some(f) = self.faults.as_deref_mut() {
            f.stats.replacements_ordered += n;
        }
    }

    /// Tasks currently resident in the dynamic-admission slab.
    pub fn slab_len(&self) -> usize {
        self.slab.len()
    }

    /// Slab segments retired (fully drained and recycled) so far.
    pub fn slab_retired(&self) -> u64 {
        self.slab.retired()
    }

    /// Slab segments currently resident in memory.
    pub fn slab_resident_segments(&self) -> usize {
        self.slab.resident_segments()
    }

    /// Counts one task spilled out of this cell at arrival time (bumped
    /// by the spillover forwarders, which own the emit site).
    pub(crate) fn note_spill_request(&mut self) {
        self.stats.spill_requests += 1;
    }

    /// Tasks placed so far (monotone during the run).
    pub fn placed_count(&self) -> usize {
        self.result.placed.len()
    }

    /// Mean scheduling latency over the `last` most recently placed
    /// tasks (`None` before anything placed) — the admission-latency
    /// signal, windowed so old history cannot mask a building backlog.
    pub fn recent_latency_mean(&self, last: usize) -> Option<f64> {
        if self.result.placed.is_empty() || last == 0 {
            return None;
        }
        let tail = &self.result.placed[self.result.placed.len().saturating_sub(last)..];
        Some(tail.iter().map(|r| r.latency as f64).sum::<f64>() / tail.len() as f64)
    }

    /// Drains a machine through the engine's churn path: its running
    /// tasks re-enter admission (counted as churn reschedules) and the
    /// machine is parked offline. The autoscaler's scale-down hook —
    /// identical semantics to a [`SchedEvent::MachineFail`] delivery.
    /// `now` is the caller's sim time (span timestamps and requeue
    /// records are stamped with it). Returns false for unknown machines.
    pub fn drain_machine(&mut self, id: MachineId, now: Micros) -> bool {
        self.machine_fail(id, now)
    }

    /// Adds a machine to the live fleet (capacity + attribute indexes
    /// update incrementally) — the autoscaler's activation hook,
    /// identical to a [`SchedEvent::MachineJoin`] delivery.
    pub fn admit_machine(&mut self, m: Machine) {
        self.cluster.add_machine(m);
    }

    /// Takes a parked (drained) machine out of the cluster entirely —
    /// see [`SchedCluster::take_offline`]. The decommission /
    /// warm-parking hook.
    pub fn take_offline_machine(&mut self, id: MachineId) -> Option<Machine> {
        self.cluster.take_offline(id)
    }

    /// True when this cell could admit `task` right now: at least one
    /// suitable machine exists *and* currently has capacity, *and* the
    /// admission queues hold less than one cycle's placement budget.
    /// The backlog term matters under sustained overload: completions
    /// drip capacity back between cycle passes, so a pure capacity
    /// probe stays green at most arrival instants even while the queue
    /// grows without bound. Spillover routers in multi-cell simulations
    /// consult this before forwarding a task to another cell; the probe
    /// streams the capacity index so per-task routing stays
    /// allocation-free.
    pub fn can_admit(&self, task: &PendingTask) -> bool {
        let backlog = self.hp.len() + self.main.len() + self.pending_gang_members();
        backlog < self.cfg.attempts_per_cycle
            && matches!(
                self.cluster.tightest_fit(&task.reqs, task.cpu, task.memory),
                CapacityFit::Fit(_)
            )
    }

    /// Why [`EngineState::can_admit`] says no right now — the rejection
    /// reason stamped into spill decision records. `"admittable"` when
    /// the cell would in fact admit the task.
    pub fn admit_rejection(&self, task: &PendingTask) -> &'static str {
        let backlog = self.hp.len() + self.main.len() + self.pending_gang_members();
        if backlog >= self.cfg.attempts_per_cycle {
            return "backlog_full";
        }
        match self.cluster.tightest_fit(&task.reqs, task.cpu, task.memory) {
            CapacityFit::Fit(_) => "admittable",
            CapacityFit::NoCapacity => "no_capacity",
            CapacityFit::Infeasible => "infeasible",
        }
    }

    /// Opens a `spill_transit` span for a task this cell just emitted to
    /// the epoch outbox, recording the admission-rejection reason. No-op
    /// without the flight recorder.
    pub(crate) fn span_spill_open(&mut self, idx: usize, now: Micros) {
        if self.spans.is_none() {
            return;
        }
        let (id, reason) = {
            let t = self.task(idx);
            (t.id, self.admit_rejection(t))
        };
        if let Some(s) = &self.spans {
            s.borrow_mut().open_task(id, "spill_transit", now, reason);
        }
    }

    /// Closes the task's pending `spill_transit` span with the route the
    /// coordinator chose (`"routed"` + target cell, `"routed_home"`, or
    /// `"link_timeout"`). The multi-cell barrier hook calls this when it
    /// resolves a [`SchedEvent::SpillRequest`]; no-op without the flight
    /// recorder. Call before releasing the task's arena slot.
    pub fn span_spill_resolve(
        &mut self,
        idx: usize,
        at: Micros,
        outcome: &'static str,
        target: u64,
    ) {
        if self.spans.is_none() {
            return;
        }
        let id = self.task(idx).id;
        if let Some(s) = &self.spans {
            let mut log = s.borrow_mut();
            if log.open_task_kind(id) == Some("spill_transit") {
                log.close_task_with(id, at, outcome, "", "", target, 0);
            }
        }
    }

    /// Routes an admitted task into the high-priority or main queue,
    /// opening its `queued` span (`cause` says how it got here:
    /// `"arrival"`, `"dynamic"`, `"retry"`, `"churn_requeue"`).
    fn admit(&mut self, idx: usize, now: Micros, cause: &'static str) {
        let t = if idx < self.arrivals.len() {
            &self.arrivals[idx]
        } else {
            self.slab.get(idx - self.arrivals.len())
        };
        let id = t.id;
        let high_priority = self.scheduler.route_high_priority(t);
        if let Some(s) = &self.spans {
            s.borrow_mut().open_task(id, "queued", now, cause);
        }
        if high_priority {
            self.hp.push_back(idx);
        } else {
            self.main.push_back(idx);
        }
    }

    /// Reserves the task on the machine and emits its completion event.
    /// `plan` is the placer plan that made the decision (recorded in the
    /// span audit; the placement itself is already made).
    fn commit(
        &mut self,
        idx: usize,
        machine: MachineId,
        plan: &'static str,
        ctx: &mut Ctx<'_, SchedEvent>,
    ) {
        let now = ctx.now();
        let (id, cpu, memory, priority, arrival, truth_group) = {
            let t = self.task(idx);
            (t.id, t.cpu, t.memory, t.priority, t.arrival, t.truth_group)
        };
        if self.spans.is_some() {
            // Decision record: chosen machine, the capacity index's
            // candidate estimate, and which index arm the placer walked.
            let (cand, arm) = {
                let reqs = &self.task(idx).reqs;
                (
                    self.cluster.candidate_estimate(reqs) as u64,
                    self.cluster.plan_hint(reqs),
                )
            };
            if let Some(s) = &self.spans {
                let mut log = s.borrow_mut();
                log.close_task_with(id, now, "placed", plan, arm, machine, cand);
                log.open_task_full(id, "running", now, "placed", plan, arm, 0, machine, cand);
            }
        }
        self.cluster.place(machine, id, cpu, memory, priority);
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        let runtime = (((-u.ln()) * self.cfg.mean_runtime as f64) as Micros).max(1);
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.running.insert(
            id,
            Running {
                idx,
                machine,
                epoch,
                started: now,
            },
        );
        if let Some(f) = self.faults.as_deref_mut() {
            if let Some(st) = f.attempts.get_mut(&idx) {
                if st.pending {
                    st.pending = false;
                    f.stats.reschedule.record(now.saturating_sub(st.lost_at));
                }
            }
        }
        ctx.emit_prio(
            runtime,
            PRIO_STATE,
            self.engine_id,
            SchedEvent::Finish {
                task: id,
                machine,
                epoch,
            },
        );
        if self.placed_once.insert(id) {
            self.result.placed.push(PlacedRecord {
                task: id,
                truth_group,
                latency: now - arrival,
                was_preempted: self.preempted.contains(&id),
            });
        }
    }

    /// Evicts a preemption victim (Kubernetes-style: the victim loses its
    /// slot; rescheduling checkpointed work is out of scope for the
    /// latency experiment). `preemptor` is the task that claimed the
    /// room — the span audit's answer to "why was I preempted".
    fn evict_victim(&mut self, machine: MachineId, victim: TaskId, now: Micros, preemptor: TaskId) {
        if let Some(s) = &self.spans {
            s.borrow_mut()
                .close_task_with(victim, now, "preempted", "", "", machine, preemptor);
        }
        self.cluster.release(machine, victim);
        if let Some(r) = self.running.remove(&victim) {
            // The victim never re-enters a queue — its slot is dead.
            self.release_slot(r.idx);
        }
        self.result.preemptions += 1;
        self.preempted.insert(victim);
        if let Some(rec) = self.result.placed.iter_mut().find(|r| r.task == victim) {
            rec.was_preempted = true;
        }
    }

    /// One attempt for the queue head; returns the task to the queue's
    /// back on `NoCapacity`.
    fn attempt(
        &mut self,
        idx: usize,
        placer: &dyn Placer,
        high_priority: bool,
        ctx: &mut Ctx<'_, SchedEvent>,
    ) {
        // Field-precise task lookup so the placement scratch can borrow
        // mutably alongside the (shared) cluster and arena borrows.
        let t = if idx < self.arrivals.len() {
            &self.arrivals[idx]
        } else {
            self.slab.get(idx - self.arrivals.len())
        };
        let task_id = t.id;
        match placer.place(&self.cluster, t, &mut self.place_ctx) {
            Placement::Placed(m) => {
                self.stats.placed += 1;
                self.commit(idx, m, placer.name(), ctx);
            }
            Placement::PlacedWithPreemption(m, victims) => {
                self.stats.placed_with_preemption += 1;
                let now = ctx.now();
                for v in victims {
                    self.evict_victim(m, v, now, task_id);
                }
                self.commit(idx, m, placer.name(), ctx);
            }
            Placement::Infeasible => {
                // No node can ever satisfy the affinity — Kubernetes
                // would error the pod; we drop it (and free its slot).
                self.stats.infeasible += 1;
                if let Some(s) = &self.spans {
                    s.borrow_mut().close_task_with(
                        task_id,
                        ctx.now(),
                        "infeasible",
                        placer.name(),
                        "",
                        0,
                        0,
                    );
                }
                if self.faults.is_some() && self.placed_once.contains(&task_id) {
                    // A crash-retried task whose every suitable machine
                    // is down: it already holds a placed record, so
                    // counting it unplaced would break task conservation
                    // — it dead-letters instead.
                    self.result.failed_permanently += 1;
                    let mut attempts = 0;
                    if let Some(f) = self.faults.as_deref_mut() {
                        f.stats.dead_lettered += 1;
                        attempts = f.attempts.remove(&idx).map_or(0, |st| st.attempts as u64);
                    }
                    if let Some(s) = &self.spans {
                        s.borrow_mut().instant_task(
                            task_id,
                            "dead_letter",
                            ctx.now(),
                            "infeasible",
                            placer.name(),
                            "",
                            attempts,
                            0,
                        );
                    }
                } else {
                    self.result.unplaced += 1;
                }
                self.release_slot(idx);
            }
            Placement::NoCapacity => {
                self.stats.no_capacity += 1;
                if self.spans.is_some() {
                    // In-place attempt bump on the open `queued` span —
                    // the steady-state path stays allocation-free.
                    let cand = self.cluster.candidate_estimate(&self.task(idx).reqs) as u64;
                    if let Some(s) = &self.spans {
                        s.borrow_mut().note_attempt(task_id, cand);
                    }
                }
                if high_priority {
                    self.hp.push_back(idx);
                } else {
                    self.main.push_back(idx);
                }
            }
        }
    }

    /// The scheduler pass: retry gangs, serve the whole HP queue, then a
    /// bounded number of main-queue heads.
    fn cycle(&mut self, ctx: &mut Ctx<'_, SchedEvent>) {
        self.stats.cycles += 1;
        self.stats.hp_depth.record(self.hp.len() as u64);
        self.stats.main_depth.record(self.main.len() as u64);
        // Gangs retry all-or-nothing ahead of individual placements —
        // compacted in place (FIFO retry order preserved, no take/realloc
        // churn on the pending list).
        let mut write = 0;
        for read in 0..self.pending_gangs.len() {
            let (start, len) = self.pending_gangs[read];
            if !self.try_gang(start, len, ctx) {
                self.pending_gangs[write] = (start, len);
                write += 1;
            }
        }
        self.pending_gangs.truncate(write);
        let hp_len = self.hp.len();
        for _ in 0..hp_len {
            let Some(idx) = self.hp.pop_front() else {
                break;
            };
            let placer = self.hp_placer;
            self.attempt(idx, placer, true, ctx);
        }
        let budget = self.cfg.attempts_per_cycle.min(self.main.len());
        for _ in 0..budget {
            let Some(idx) = self.main.pop_front() else {
                break;
            };
            let placer = self.main_placer;
            self.attempt(idx, placer, false, ctx);
        }
    }

    /// Attempts an all-or-nothing placement of the gang occupying arena
    /// range `start..start + len`. Returns true when the gang placed
    /// (callers keep failed ranges pending). Assignments stream through
    /// the placement scratch — no allocation per attempt.
    fn try_gang(&mut self, start: usize, len: usize, ctx: &mut Ctx<'_, SchedEvent>) -> bool {
        let mut pairs = std::mem::take(&mut self.place_ctx.gang);
        let placed = {
            let (arrivals, slab) = (self.arrivals, &self.slab);
            let members = (start..start + len).map(|i| {
                if i < arrivals.len() {
                    &arrivals[i]
                } else {
                    slab.get(i - arrivals.len())
                }
            });
            crate::gang::place_gang_into(&mut self.cluster, members, &mut pairs)
        };
        if placed {
            self.result.gangs_placed += 1;
            for (idx, &(task, machine)) in (start..start + len).zip(pairs.iter()) {
                debug_assert_eq!(self.task(idx).id, task);
                // `place_gang_into` already reserved capacity; release
                // and re-commit so runtime draw, completion event and
                // record go through the one bookkeeping path.
                self.cluster.release(machine, task);
                self.commit(idx, machine, "gang", ctx);
            }
        }
        self.place_ctx.gang = pairs;
        placed
    }

    /// A machine drains: running tasks re-enter admission (they keep
    /// their first-placement latency record; the reschedule is counted).
    /// Returns false for unknown machines.
    fn machine_fail(&mut self, id: MachineId, now: Micros) -> bool {
        let Some(evicted) = self.cluster.remove_machine(id) else {
            return false;
        };
        if let Some(s) = &self.spans {
            s.borrow_mut()
                .open_machine(id, "machine_drain", now, "drain", "");
        }
        for (task, ..) in evicted {
            if let Some(r) = self.running.remove(&task) {
                self.result.churn_rescheduled += 1;
                if let Some(s) = &self.spans {
                    s.borrow_mut().close_task(task, now, "machine_drain");
                }
                self.admit(r.idx, now, "churn_requeue");
            }
        }
        true
    }

    /// A machine *crashes* — the abrupt sibling of [`Self::machine_fail`]:
    /// capacity leaves atomically (the same offline parking, so a later
    /// [`SchedEvent::MachineRestore`] revives it empty), but running
    /// tasks are lost, not requeued. Each loss is charged against the
    /// retry policy: within budget, a [`SchedEvent::TaskRetry`] is
    /// scheduled after the backoff delay; over budget (or with no fault
    /// runtime at all) the task dead-letters as `failed_permanently`.
    /// Crashing an already-offline machine is capacity-inert.
    fn machine_crash(&mut self, id: MachineId, ctx: &mut Ctx<'_, SchedEvent>) {
        let Some(evicted) = self.cluster.remove_machine(id) else {
            return;
        };
        let now = ctx.now();
        if let Some(f) = self.faults.as_deref_mut() {
            f.stats.crashed_machines += 1;
        }
        if let Some(s) = &self.spans {
            s.borrow_mut()
                .open_machine(id, "machine_down", now, "crash", "");
        }
        // Evicted tasks arrive sorted by task id, so RNG draws (backoff
        // jitter) consume in a deterministic order.
        for (task, ..) in evicted {
            let Some(r) = self.running.remove(&task) else {
                continue;
            };
            let (retry_after, attempt_no, policy_name) = match self.faults.as_deref_mut() {
                Some(f) => {
                    let st = f.attempts.entry(r.idx).or_default();
                    st.attempts += 1;
                    st.lost_at = now;
                    let attempt_no = st.attempts as u64;
                    f.stats.tasks_lost += 1;
                    f.stats.lost_work_us += now.saturating_sub(r.started);
                    let delay = f.policy.delay(st.attempts, &mut f.rng);
                    match delay {
                        Some(d) => {
                            st.pending = true;
                            f.stats.retries_scheduled += 1;
                            f.stats.backoff.record(d);
                        }
                        None => {
                            f.stats.dead_lettered += 1;
                            f.attempts.remove(&r.idx);
                        }
                    }
                    (delay, attempt_no, f.policy.name())
                }
                // No retry runtime: lost work dead-letters immediately.
                None => (None, 0, "none"),
            };
            if let Some(s) = &self.spans {
                // The causal crash chain: running closes on the crash,
                // then either a retry_wait span carries the policy draw
                // or the dead-letter terminal records the spent budget.
                let mut log = s.borrow_mut();
                log.close_task(task, now, "machine_crash");
                match retry_after {
                    Some(d) => log.open_task_full(
                        task,
                        "retry_wait",
                        now,
                        "machine_crash",
                        policy_name,
                        "",
                        attempt_no,
                        d,
                        id,
                    ),
                    None => log.instant_task(
                        task,
                        "dead_letter",
                        now,
                        "budget_exhausted",
                        policy_name,
                        "",
                        attempt_no,
                        id,
                    ),
                }
            }
            match retry_after {
                Some(delay) => ctx.emit_prio(
                    delay,
                    PRIO_ADMIT,
                    self.engine_id,
                    SchedEvent::TaskRetry(r.idx),
                ),
                None => {
                    self.result.failed_permanently += 1;
                    self.release_slot(r.idx);
                }
            }
        }
    }

    fn handle(&mut self, ev: SchedEvent, ctx: &mut Ctx<'_, SchedEvent>) {
        if let Some(ring) = &mut self.trace {
            // One fixed-shape record per delivered event: a static kind
            // tag plus two payload words — no formatting, no allocation.
            let (kind, a, b) = match &ev {
                SchedEvent::Wake => ("wake", 0, 0),
                SchedEvent::Arrival(idx) => ("arrival", *idx as u64, 0),
                SchedEvent::Admit(t) => ("admit", t.id, 0),
                SchedEvent::GangArrival(members) => ("gang_arrival", members.len() as u64, 0),
                SchedEvent::Cycle => ("cycle", 0, 0),
                SchedEvent::Finish { task, machine, .. } => ("finish", *task, *machine),
                SchedEvent::MachineFail(id) => ("machine_fail", *id, 0),
                SchedEvent::MachineCrash(id) => ("machine_crash", *id, 0),
                SchedEvent::MachineRestore(id) => ("machine_restore", *id, 0),
                SchedEvent::MachineJoin(m) => ("machine_join", m.id, 0),
                SchedEvent::AttrUpdate { machine, attr, .. } => {
                    ("attr_update", *machine, u64::from(*attr))
                }
                SchedEvent::SpillRequest(idx) => ("spill_request", *idx as u64, 0),
                SchedEvent::TaskRetry(idx) => ("task_retry", *idx as u64, 0),
            };
            ring.push(TraceEvent {
                time: ctx.now(),
                kind,
                a,
                b,
            });
        }
        match ev {
            SchedEvent::Arrival(idx) => {
                self.stats.admitted_arrivals += 1;
                self.admit(idx, ctx.now(), "arrival");
            }
            SchedEvent::Admit(t) => {
                self.stats.admitted_dynamic += 1;
                let idx = self.push_extra(*t);
                self.admit(idx, ctx.now(), "dynamic");
            }
            SchedEvent::GangArrival(members) => {
                // Members enter the arena contiguously (one sealed slab
                // segment), so the gang is just a range — no per-gang
                // index list.
                let (start, len) = self.push_chunk(members);
                self.stats.admitted_gang_members += len as u64;
                if self.spans.is_some() {
                    let now = ctx.now();
                    for i in start..start + len {
                        let id = self.task(i).id;
                        if let Some(s) = &self.spans {
                            s.borrow_mut().open_task(id, "queued", now, "gang");
                        }
                    }
                }
                if !self.try_gang(start, len, ctx) {
                    self.pending_gangs.push((start, len));
                }
            }
            SchedEvent::Cycle => self.cycle(ctx),
            SchedEvent::Finish {
                task,
                machine,
                epoch,
            } => {
                // Stale completions (task preempted or churned since)
                // are ignored via the epoch guard.
                if self
                    .running
                    .get(&task)
                    .is_some_and(|r| r.machine == machine && r.epoch == epoch)
                {
                    let r = self.running.remove(&task).expect("checked above");
                    if let Some(s) = &self.spans {
                        s.borrow_mut().close_task(task, ctx.now(), "finished");
                    }
                    self.cluster.release(machine, task);
                    self.release_slot(r.idx);
                    // The task terminated: drop its retry budget so a
                    // recycled arena slot never inherits it.
                    if let Some(f) = self.faults.as_deref_mut() {
                        f.attempts.remove(&r.idx);
                    }
                }
            }
            SchedEvent::MachineFail(id) => {
                self.machine_fail(id, ctx.now());
            }
            SchedEvent::MachineCrash(id) => self.machine_crash(id, ctx),
            SchedEvent::TaskRetry(idx) => {
                let now = ctx.now();
                if self.spans.is_some() {
                    let id = self.task(idx).id;
                    if let Some(s) = &self.spans {
                        s.borrow_mut().close_task(id, now, "backoff_elapsed");
                    }
                }
                self.admit(idx, now, "retry");
            }
            SchedEvent::MachineRestore(id) => {
                if let Some(s) = &self.spans {
                    s.borrow_mut().close_machine(id, ctx.now(), "restored");
                }
                self.cluster.restore_machine(id);
            }
            SchedEvent::MachineJoin(m) => {
                if let Some(s) = &self.spans {
                    s.borrow_mut().instant_ctrl(
                        m.id,
                        "machine_join",
                        ctx.now(),
                        "join",
                        "",
                        "",
                        0,
                        0,
                    );
                }
                self.cluster.add_machine(*m);
            }
            SchedEvent::AttrUpdate {
                machine,
                attr,
                value,
            } => {
                self.cluster.update_attr(machine, attr, value);
            }
            SchedEvent::Wake => {}
            // Spill requests travel through epoch outboxes to the
            // coordinator, not to engines; one reaching an engine is a
            // routing bug upstream, dropped like a stale completion.
            SchedEvent::SpillRequest(_) => debug_assert!(false, "SpillRequest delivered to engine"),
        }
    }

    /// Takes the final cluster and result out of the state, counting
    /// still-queued tasks as unplaced — except churn-requeued tasks that
    /// already hold a placed record (they were placed once; counting
    /// them again would make placed + unplaced exceed the task count).
    fn finish(&mut self) -> (SchedCluster, SimResult) {
        // Spans still open at the horizon (queued, running, retry_wait,
        // machine_down, …) close deterministically at `end = horizon`.
        if let Some(s) = &self.spans {
            s.borrow_mut().close_all(self.cfg.horizon);
        }
        let hp = std::mem::take(&mut self.hp);
        let main = std::mem::take(&mut self.main);
        let gangs = std::mem::take(&mut self.pending_gangs);
        let queued = hp
            .iter()
            .chain(main.iter())
            .copied()
            .chain(gangs.iter().flat_map(|&(start, len)| start..start + len));
        for idx in queued {
            if !self.placed_once.contains(&self.task(idx).id) {
                self.result.unplaced += 1;
            }
        }
        (
            std::mem::take(&mut self.cluster),
            std::mem::take(&mut self.result),
        )
    }
}

/// The engine as a kernel component: a thin shell delegating every event
/// to the shared [`EngineState`].
pub struct EngineComponent<'a> {
    state: Rc<RefCell<EngineState<'a>>>,
}

impl Component<SchedEvent> for EngineComponent<'_> {
    fn on_event(&mut self, event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        self.state.borrow_mut().handle(event.payload, ctx);
    }
}

/// Emits [`SchedEvent::Arrival`] admissions as simulated time reaches
/// each task's arrival stamp. Borrows the arrival list — nothing is
/// copied.
pub struct ArrivalSource<'a> {
    arrivals: &'a [PendingTask],
    next: usize,
    engine: CompId,
}

impl Component<SchedEvent> for ArrivalSource<'_> {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        while self.next < self.arrivals.len() && self.arrivals[self.next].arrival <= now {
            ctx.emit_prio(0, PRIO_ADMIT, self.engine, SchedEvent::Arrival(self.next));
            self.next += 1;
        }
        if self.next < self.arrivals.len() {
            let delay = self.arrivals[self.next].arrival - now;
            ctx.emit_self_prio(delay, PRIO_ADMIT, SchedEvent::Wake);
        }
    }
}

/// An [`ArrivalSource`] for cells participating in cross-cell spillover
/// under the epoch-sharded coordinator.
///
/// Tasks the home cell can admit at their arrival instant are delivered
/// locally as [`SchedEvent::Arrival`] — the fast path, identical to
/// [`ArrivalSource`] and with no task clone. Tasks the home cell has no
/// feasible machine for are emitted into the shard's epoch outbox as
/// [`SchedEvent::SpillRequest`]; the coordinator's barrier hook routes
/// them (home queue or a sibling cell, per the spillover policy) at the
/// next epoch boundary. Spilled tasks keep their original arrival
/// stamp, so queue latency honestly includes the barrier wait.
pub struct SpilloverForwarder<'a> {
    arrivals: &'a [PendingTask],
    next: usize,
    engine: CompId,
    state: Rc<RefCell<EngineState<'a>>>,
}

impl Component<SchedEvent> for SpilloverForwarder<'_> {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        while self.next < self.arrivals.len() && self.arrivals[self.next].arrival <= now {
            if self.state.borrow().can_admit(&self.arrivals[self.next]) {
                ctx.emit_prio(0, PRIO_ADMIT, self.engine, SchedEvent::Arrival(self.next));
            } else {
                let mut st = self.state.borrow_mut();
                st.note_spill_request();
                st.span_spill_open(self.next, now);
                drop(st);
                ctx.emit_remote(PRIO_ADMIT, SchedEvent::SpillRequest(self.next));
            }
            self.next += 1;
        }
        if self.next < self.arrivals.len() {
            let delay = self.arrivals[self.next].arrival - now;
            ctx.emit_self_prio(delay, PRIO_ADMIT, SchedEvent::Wake);
        }
    }
}

/// Fires the scheduler pass every `period` µs up to the horizon.
pub struct CycleTimer {
    period: Micros,
    horizon: Micros,
    engine: CompId,
}

impl Component<SchedEvent> for CycleTimer {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        ctx.emit_prio(0, PRIO_PASS, self.engine, SchedEvent::Cycle);
        if ctx.now() + self.period <= self.horizon {
            ctx.emit_self_prio(self.period, PRIO_PASS, SchedEvent::Wake);
        }
    }
}

/// The simulator: configuration plus pluggable placement strategies.
pub struct Simulator {
    config: SimConfig,
    main_placer: Box<dyn Placer>,
    hp_placer: Box<dyn Placer>,
}

impl Simulator {
    /// A simulator with the given parameters and the default strategies:
    /// best-fit on the main queue, preemptive best-fit on the HP queue.
    pub fn new(config: SimConfig) -> Self {
        Self {
            config,
            main_placer: Box::new(BestFit),
            hp_placer: Box::new(PreemptiveBestFit),
        }
    }

    /// Replaces the placement strategies.
    pub fn with_placers(
        mut self,
        main_placer: Box<dyn Placer>,
        hp_placer: Box<dyn Placer>,
    ) -> Self {
        self.main_placer = main_placer;
        self.hp_placer = hp_placer;
        self
    }

    /// The configured parameters.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Registers one scheduling **cell** — engine component, arrival
    /// source and cycle timer — on an existing kernel simulation, so
    /// several cells can share a single timeline (multi-cell runs).
    ///
    /// `name` prefixes the registered component names. An empty arrival
    /// list is fine: cells fed exclusively through
    /// [`SchedEvent::Admit`] (e.g. by a spillover router) pass `&[]`.
    pub fn attach_cell<'a>(
        &'a self,
        sim: &mut Sim<'a, SchedEvent>,
        name: &str,
        cluster: SchedCluster,
        arrivals: &'a [PendingTask],
        scheduler: &'a mut dyn Scheduler,
    ) -> CellHandle<'a> {
        let cfg = self.config;
        let state = Rc::new(RefCell::new(EngineState::new(
            cfg,
            cluster,
            arrivals,
            scheduler,
            self.main_placer.as_ref(),
            self.hp_placer.as_ref(),
        )));
        let engine = sim.add_component(
            format!("{name}/engine"),
            EngineComponent {
                state: state.clone(),
            },
        );
        state.borrow_mut().engine_id = engine;
        let source = sim.add_component(
            format!("{name}/arrival_source"),
            ArrivalSource {
                arrivals,
                next: 0,
                engine,
            },
        );
        if let Some(first) = arrivals.first() {
            sim.schedule_prio(first.arrival, PRIO_ADMIT, source, source, SchedEvent::Wake);
        }
        let timer = sim.add_component(
            format!("{name}/cycle_timer"),
            CycleTimer {
                period: cfg.cycle,
                horizon: cfg.horizon,
                engine,
            },
        );
        sim.schedule_prio(0, PRIO_PASS, timer, timer, SchedEvent::Wake);
        CellHandle { engine, state }
    }

    /// [`Simulator::attach_cell`] for a cell whose arrivals go through
    /// spillover: registers a [`SpilloverForwarder`] (admit-or-spill) in
    /// place of the plain [`ArrivalSource`]. Meant for per-cell shards
    /// under a [`ParallelSim`](ctlm_sim::ParallelSim) coordinator whose
    /// barrier hook resolves the [`SchedEvent::SpillRequest`] outbox
    /// entries.
    pub fn attach_cell_spillover<'a>(
        &'a self,
        sim: &mut Sim<'a, SchedEvent>,
        name: &str,
        cluster: SchedCluster,
        arrivals: &'a [PendingTask],
        scheduler: &'a mut dyn Scheduler,
    ) -> CellHandle<'a> {
        let cell = self.attach_cell(sim, name, cluster, &[], scheduler);
        // The engine still needs the arena for Arrival(idx) lookups even
        // though the forwarder, not an ArrivalSource, walks it.
        cell.state.borrow_mut().arrivals = arrivals;
        let forwarder = sim.add_component(
            format!("{name}/spillover_forwarder"),
            SpilloverForwarder {
                arrivals,
                next: 0,
                engine: cell.engine,
                state: cell.state.clone(),
            },
        );
        if let Some(first) = arrivals.first() {
            sim.schedule_prio(
                first.arrival,
                PRIO_ADMIT,
                forwarder,
                forwarder,
                SchedEvent::Wake,
            );
        }
        cell
    }

    /// [`Simulator::attach_cell`] for a cell fed by a pull-based
    /// [`ArrivalStream`] instead of a materialised arrival list: registers
    /// a [`StreamingSource`] that decodes fixed-size, time-sorted chunks
    /// into the engine's task slab on demand, always one chunk ahead of
    /// the simulation clock. Peak arena memory is O(chunk + in-flight
    /// tasks) instead of O(total tasks), and the event sequence is
    /// identical to the materialised source's.
    ///
    /// With `spill`, the source behaves like a [`SpilloverForwarder`]:
    /// tasks the cell cannot admit at their arrival instant go to the
    /// shard outbox as [`SchedEvent::SpillRequest`] for the coordinator's
    /// barrier hook to route (the hook reads the task via
    /// [`EngineState::task`] and must call [`EngineState::release_slot`]
    /// when it clones the task away to a sibling cell).
    pub fn attach_cell_stream<'a>(
        &'a self,
        sim: &mut Sim<'a, SchedEvent>,
        name: &str,
        cluster: SchedCluster,
        stream: Box<dyn ArrivalStream + 'a>,
        scheduler: &'a mut dyn Scheduler,
        spill: bool,
    ) -> CellHandle<'a> {
        let cell = self.attach_cell(sim, name, cluster, &[], scheduler);
        let mut source = StreamingSource::new(stream, cell.state.clone(), cell.engine, spill);
        let first = source.prime();
        let source_id = sim.add_component(format!("{name}/stream_source"), source);
        if let Some(at) = first {
            sim.schedule_prio(at, PRIO_ADMIT, source_id, source_id, SchedEvent::Wake);
        }
        cell
    }

    /// Builds the simulation harness without running it, so scenario
    /// components (churn, gang sources, trace feeds, rollouts) can join
    /// before [`Harness::run`].
    ///
    /// The cluster is taken by value; [`Harness::run`] returns it (reset
    /// to pristine) together with the result.
    pub fn harness<'a>(
        &'a self,
        cluster: SchedCluster,
        arrivals: &'a [PendingTask],
        scheduler: &'a mut dyn Scheduler,
    ) -> Harness<'a> {
        let mut sim = Sim::new();
        let cell = self.attach_cell(&mut sim, "cell", cluster, arrivals, scheduler);
        Harness {
            sim,
            engine: cell.engine,
            state: cell.state,
            horizon: self.config.horizon,
        }
    }

    /// Runs `arrivals` (sorted by arrival time) against the cluster under
    /// `scheduler`.
    ///
    /// The cluster is borrowed and handed back **reset** (allocations
    /// cleared, churned machines restored), so A/B policy runs reuse one
    /// cluster without deep-copying it.
    pub fn run(
        &self,
        cluster: &mut SchedCluster,
        arrivals: &[PendingTask],
        scheduler: &mut dyn Scheduler,
    ) -> SimResult {
        let taken = std::mem::take(cluster);
        let harness = self.harness(taken, arrivals, scheduler);
        let (mut back, result) = harness.run();
        back.reset();
        *cluster = back;
        result
    }
}

/// One cell registered on a shared kernel simulation via
/// [`Simulator::attach_cell`]: the engine's component id plus the shared
/// engine state. The driver owns the `Sim` and runs it; after the run
/// (once the `Sim` is dropped), [`CellHandle::finish`] extracts the
/// cell's cluster and result.
pub struct CellHandle<'a> {
    /// The cell engine's component id — the destination for scheduling
    /// events (admissions, churn, spillover forwards).
    pub engine: CompId,
    state: Rc<RefCell<EngineState<'a>>>,
}

impl<'a> CellHandle<'a> {
    /// The cell's shared engine state (see [`Harness::state`]).
    pub fn state(&self) -> Rc<RefCell<EngineState<'a>>> {
        self.state.clone()
    }

    /// Extracts `(cluster, result)`, counting still-queued tasks as
    /// unplaced. Call after the simulation has run (and its components
    /// have released their handler borrows).
    pub fn finish(&self) -> (SchedCluster, SimResult) {
        self.state.borrow_mut().finish()
    }
}

/// A built-but-not-run simulation: the kernel, the engine's component id
/// and the shared engine state. Scenario components register against
/// `sim`/`engine` before `run`.
pub struct Harness<'a> {
    /// The underlying kernel simulation.
    pub sim: Sim<'a, SchedEvent>,
    /// The engine's component id — the destination scenario components
    /// emit scheduling events to.
    pub engine: CompId,
    state: Rc<RefCell<EngineState<'a>>>,
    horizon: Micros,
}

impl<'a> Harness<'a> {
    /// The shared engine state — scenario components and drivers may
    /// inspect it (e.g. cluster state, queue depths) between or after
    /// runs; holding the clone across [`Harness::run`] is fine.
    pub fn state(&self) -> Rc<RefCell<EngineState<'a>>> {
        self.state.clone()
    }

    /// Runs to the horizon and returns `(cluster, result)`. The cluster
    /// is *not* reset — callers inspecting post-churn state see it as the
    /// simulation left it.
    pub fn run(mut self) -> (SchedCluster, SimResult) {
        self.sim.run_until(self.horizon);
        drop(self.sim); // components are done emitting
        let mut state = self.state.borrow_mut();
        state.finish()
    }
}

/// Rescales arrival times into `[0, span]`, preserving order — trace
/// horizons are weeks, scheduler experiments run minutes-to-hours of
/// simulated time, so the workload is compressed onto the experiment
/// window (intensifying contention, which is the regime of interest).
pub fn compress_timeline(arrivals: &mut [PendingTask], span: Micros) {
    let max = arrivals.iter().map(|t| t.arrival).max().unwrap_or(0);
    if max == 0 {
        return;
    }
    for t in arrivals.iter_mut() {
        t.arrival = ((t.arrival as u128 * span as u128) / max as u128) as Micros;
    }
}

/// Builds `(cluster, arrivals)` from a generated trace: machines from the
/// initial fleet, tasks from submissions (constraints collapsed,
/// ground-truth group computed against the full fleet).
pub fn arrivals_from_trace(
    trace: &GeneratedTrace,
    max_tasks: usize,
) -> (SchedCluster, Vec<PendingTask>) {
    // One pass over the machine adds: each machine is cloned exactly once
    // (out of the borrowed trace) and later *moved* into the cluster; the
    // truth-group counts come from a transient inverted index over
    // borrowed machines instead of a second fully-cloned cluster state.
    let mut machines: Vec<Machine> = Vec::new();
    let mut slot: HashMap<MachineId, usize> = HashMap::new();
    let mut index = ctlm_agocs::AttrIndex::new();
    for ev in &trace.events {
        if let EventPayload::MachineAdd(m) = &ev.payload {
            if let Some(&i) = slot.get(&m.id) {
                // Re-add supersedes: mirror `ClusterState::add_machine`.
                index.remove_machine(m.id);
                index.add_machine(m);
                machines[i] = m.clone();
            } else {
                slot.insert(m.id, machines.len());
                index.add_machine(m);
                machines.push(m.clone());
            }
        }
    }
    let mut arrivals = Vec::new();
    for ev in &trace.events {
        if arrivals.len() >= max_tasks {
            break;
        }
        if let EventPayload::TaskSubmit(task) = &ev.payload {
            let Ok(reqs) = collapse(&task.constraints) else {
                continue;
            };
            let suitable = index.count_matching(&reqs);
            if suitable == 0 {
                continue;
            }
            let truth_group = ctlm_data::dataset::group_for_count(suitable, trace.group_width);
            arrivals.push(PendingTask {
                id: task.id,
                collection: task.collection,
                cpu: task.cpu.min(0.9),
                memory: task.memory.min(0.9),
                priority: task.priority,
                reqs,
                arrival: ev.time,
                truth_group,
            });
        }
    }
    (SchedCluster::from_machines(machines), arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{MainOnly, OracleEnhanced};
    use ctlm_trace::{AttrValue, Machine};

    /// A 6-machine cluster hit by a 10-second burst of 400 small tasks:
    /// the main queue backs up behind the per-cycle attempt budget, so a
    /// group-0 task arriving mid-burst waits out the whole FIFO backlog —
    /// unless the enhanced path lifts it into the HP queue.
    fn contended_setup() -> (SchedCluster, Vec<PendingTask>) {
        let mut ms = Vec::new();
        for i in 0..6u64 {
            let mut m = Machine::new(i, 1.0, 1.0);
            m.set_attr(0, AttrValue::Int(i as i64));
            ms.push(m);
        }
        let cluster = SchedCluster::from_machines(ms);
        let mut arrivals = Vec::new();
        for k in 0..400u64 {
            arrivals.push(PendingTask {
                id: k,
                collection: 1,
                cpu: 0.1,
                memory: 0.1,
                priority: 2,
                reqs: vec![],
                arrival: k * 25_000, // 400 tasks in 10 s
                truth_group: 25,
            });
        }
        // A few restrictive tasks pinned to machine 0.
        use ctlm_data::compaction::collapse;
        use ctlm_trace::{ConstraintOp as Op, TaskConstraint};
        for (j, t_arr) in [(0u64, 5_000_000u64), (1, 15_000_000), (2, 25_000_000)] {
            let reqs =
                collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(0))))]).unwrap();
            arrivals.push(PendingTask {
                id: 1000 + j,
                collection: 2,
                cpu: 0.2,
                memory: 0.2,
                priority: 6,
                reqs,
                arrival: t_arr,
                truth_group: 0,
            });
        }
        arrivals.sort_by_key(|t| t.arrival);
        (cluster, arrivals)
    }

    fn sim() -> Simulator {
        Simulator::new(SimConfig {
            cycle: 500_000,
            attempts_per_cycle: 3,
            mean_runtime: 5_000_000,
            horizon: 180_000_000,
            seed: 4,
        })
    }

    #[test]
    fn oracle_routing_cuts_group0_latency() {
        let (mut cluster, arrivals) = contended_setup();
        let base = sim().run(&mut cluster, &arrivals, &mut MainOnly);
        let enhanced = sim().run(&mut cluster, &arrivals, &mut OracleEnhanced);
        let b0 = base.group0_latency().expect("group0 placed under baseline");
        let e0 = enhanced
            .group0_latency()
            .expect("group0 placed under oracle");
        assert!(
            e0.mean < b0.mean,
            "enhanced group0 mean {} should beat baseline {}",
            e0.mean,
            b0.mean
        );
    }

    #[test]
    fn both_policies_place_most_tasks() {
        let (mut cluster, arrivals) = contended_setup();
        let base = sim().run(&mut cluster, &arrivals, &mut MainOnly);
        let enhanced = sim().run(&mut cluster, &arrivals, &mut OracleEnhanced);
        for (name, r) in [("base", &base), ("enhanced", &enhanced)] {
            let frac = r.placed.len() as f64 / arrivals.len() as f64;
            assert!(frac > 0.8, "{name} placed only {frac:.2}");
        }
    }

    #[test]
    fn ab_runs_on_one_cluster_match_fresh_clusters() {
        // The reset path must leave no trace of the previous policy run.
        let (mut shared, arrivals) = contended_setup();
        let a1 = sim().run(&mut shared, &arrivals, &mut MainOnly);
        let a2 = sim().run(&mut shared, &arrivals, &mut OracleEnhanced);
        let (mut fresh1, _) = contended_setup();
        let (mut fresh2, _) = contended_setup();
        let b1 = sim().run(&mut fresh1, &arrivals, &mut MainOnly);
        let b2 = sim().run(&mut fresh2, &arrivals, &mut OracleEnhanced);
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
    }

    #[test]
    fn preemption_happens_under_oracle_when_needed() {
        // Fill every machine with low-priority work, then submit a pinned
        // high-priority task: the HP path must preempt.
        let (cluster, _) = contended_setup();
        let mut cluster = cluster;
        let mut arrivals = Vec::new();
        for k in 0..18u64 {
            arrivals.push(PendingTask {
                id: k,
                collection: 1,
                cpu: 0.33,
                memory: 0.33,
                priority: 1,
                reqs: vec![],
                arrival: 0,
                truth_group: 25,
            });
        }
        use ctlm_data::compaction::collapse;
        use ctlm_trace::{ConstraintOp as Op, TaskConstraint};
        let reqs = collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(0))))]).unwrap();
        arrivals.push(PendingTask {
            id: 999,
            collection: 2,
            cpu: 0.5,
            memory: 0.5,
            priority: 9,
            reqs,
            arrival: 2_000_000,
            truth_group: 0,
        });
        let config = SimConfig {
            cycle: 500_000,
            attempts_per_cycle: 20,
            mean_runtime: 200_000_000, // long tasks: no natural drain
            horizon: 30_000_000,
            seed: 1,
        };
        let r = Simulator::new(config).run(&mut cluster, &arrivals, &mut OracleEnhanced);
        assert!(r.preemptions > 0, "expected preemption to fire");
        assert!(
            r.placed.iter().any(|p| p.task == 999),
            "pinned task must place"
        );
    }

    #[test]
    fn streaming_source_matches_materialised_run() {
        // Feeding the identical workload through a chunked SliceStream
        // (any chunk size) must reproduce the borrowed-slice run exactly
        // — same placements, latencies, preemptions.
        use crate::stream::SliceStream;
        let (mut cluster, arrivals) = contended_setup();
        let base_main = sim().run(&mut cluster, &arrivals, &mut MainOnly);
        let base_orac = sim().run(&mut cluster, &arrivals, &mut OracleEnhanced);
        for chunk in [3usize, 64, 4096] {
            for (which, base) in [(0, &base_main), (1, &base_orac)] {
                let (fresh, _) = contended_setup();
                let mut main = MainOnly;
                let mut orac = OracleEnhanced;
                let sched: &mut dyn crate::scheduler::Scheduler =
                    if which == 0 { &mut main } else { &mut orac };
                let s = sim();
                let mut kernel = Sim::new();
                let cell = s.attach_cell_stream(
                    &mut kernel,
                    "cell",
                    fresh,
                    Box::new(SliceStream::new(&arrivals, chunk)),
                    sched,
                    false,
                );
                kernel.run_until(s.config().horizon);
                drop(kernel);
                let (_, result) = cell.finish();
                assert_eq!(&result, base, "chunk {chunk} scheduler {which}");
            }
        }
    }

    #[test]
    fn arrivals_from_trace_produces_feasible_tasks() {
        use ctlm_trace::{CellSet, Scale, TraceGenerator};
        let trace = TraceGenerator::generate_cell(
            CellSet::C2019c,
            Scale {
                machines: 80,
                collections: 150,
                seed: 3,
            },
        );
        let (cluster, arrivals) = arrivals_from_trace(&trace, 500);
        assert!(cluster.len() >= 70);
        assert!(!arrivals.is_empty());
        assert!(arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(arrivals
            .iter()
            .all(|t| t.cpu <= 0.9 && (t.truth_group as usize) < 26));
    }
}
