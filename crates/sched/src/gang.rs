//! Gang grouping.
//!
//! “This approach works well with gang scheduling, where tasks in the
//! same job are grouped by their CO and scheduled together.” Tasks of one
//! collection sharing identical collapsed constraints form a *gang*; the
//! engine can be configured to place gangs all-or-nothing.

use std::collections::HashMap;

use ctlm_trace::CollectionId;

use crate::queue::PendingTask;

/// Key identifying a gang: the collection plus a fingerprint of the
/// collapsed constraints.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GangKey {
    /// The collection the tasks belong to.
    pub collection: CollectionId,
    /// Display fingerprint of the constraint set.
    pub co_fingerprint: String,
}

/// Groups pending tasks into gangs (collection × CO set).
pub fn group_into_gangs(tasks: Vec<PendingTask>) -> Vec<(GangKey, Vec<PendingTask>)> {
    let mut map: HashMap<GangKey, Vec<PendingTask>> = HashMap::new();
    let mut order: Vec<GangKey> = Vec::new();
    for t in tasks {
        let fp = t
            .reqs
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(" && ");
        let key = GangKey {
            collection: t.collection,
            co_fingerprint: fp,
        };
        if !map.contains_key(&key) {
            order.push(key.clone());
        }
        map.entry(key).or_default().push(t);
    }
    order
        .into_iter()
        .map(|k| {
            let v = map.remove(&k).expect("key inserted above");
            (k, v)
        })
        .collect()
}

/// All-or-nothing gang placement: reserves machines for *every* task of
/// the gang or places nothing. Returns the `(task, machine)` assignments
/// on success; on failure the cluster is left untouched.
///
/// Greedy best-fit per member with rollback — sufficient for the paper's
/// usage (“tasks in the same job are grouped by their CO and scheduled
/// together”), where gang members share one constraint set.
pub fn place_gang(
    cluster: &mut crate::cluster::SchedCluster,
    gang: &[PendingTask],
) -> Option<Vec<(u64, u64)>> {
    place_gang_by_ref(cluster, gang.iter())
}

/// [`place_gang`] over borrowed members — the kernel engine's form, where
/// gang members live in the shared task arena and are never cloned.
/// Assignments are returned in member order.
pub fn place_gang_by_ref<'a>(
    cluster: &mut crate::cluster::SchedCluster,
    gang: impl IntoIterator<Item = &'a PendingTask>,
) -> Option<Vec<(u64, u64)>> {
    let mut placed: Vec<(u64, u64)> = Vec::new();
    if place_gang_into(cluster, gang, &mut placed) {
        Some(placed)
    } else {
        None
    }
}

/// [`place_gang_by_ref`] into a caller-provided assignment buffer — the
/// engine's scratch-threaded form (no allocation per gang attempt).
/// Returns true when the whole gang placed; on false the cluster and
/// `out` are left empty of this attempt.
pub fn place_gang_into<'a>(
    cluster: &mut crate::cluster::SchedCluster,
    gang: impl IntoIterator<Item = &'a PendingTask>,
    out: &mut Vec<(u64, u64)>,
) -> bool {
    out.clear();
    for t in gang {
        match crate::placement::best_fit(cluster, t) {
            crate::placement::Placement::Placed(m) => {
                cluster.place(m, t.id, t.cpu, t.memory, t.priority);
                out.push((t.id, m));
            }
            _ => {
                // Roll back everything reserved so far.
                for &(task, machine) in out.iter() {
                    cluster.release(machine, task);
                }
                out.clear();
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_data::compaction::collapse;
    use ctlm_trace::{ConstraintOp as Op, TaskConstraint};

    fn task(id: u64, collection: u64, lt: Option<i64>) -> PendingTask {
        let reqs = match lt {
            Some(v) => collapse(&[TaskConstraint::new(0, Op::LessThan(v))]).unwrap(),
            None => vec![],
        };
        PendingTask {
            id,
            collection,
            cpu: 0.1,
            memory: 0.1,
            priority: 0,
            reqs,
            arrival: 0,
            truth_group: 25,
        }
    }

    #[test]
    fn same_collection_same_co_groups_together() {
        let gangs = group_into_gangs(vec![task(1, 7, Some(3)), task(2, 7, Some(3))]);
        assert_eq!(gangs.len(), 1);
        assert_eq!(gangs[0].1.len(), 2);
    }

    #[test]
    fn different_co_splits_the_gang() {
        let gangs = group_into_gangs(vec![task(1, 7, Some(3)), task(2, 7, Some(9))]);
        assert_eq!(gangs.len(), 2);
    }

    #[test]
    fn different_collections_never_merge() {
        let gangs = group_into_gangs(vec![task(1, 7, None), task(2, 8, None)]);
        assert_eq!(gangs.len(), 2);
    }

    #[test]
    fn gang_places_all_or_nothing() {
        use crate::cluster::SchedCluster;
        use ctlm_trace::{AttrValue, Machine};
        let mut ms = Vec::new();
        for i in 0..2u64 {
            let mut m = Machine::new(i, 1.0, 1.0);
            m.set_attr(0, AttrValue::Int(i as i64));
            ms.push(m);
        }
        let mut cluster = SchedCluster::from_machines(ms);

        // A 3-member gang needing 0.8 CPU each on 2 machines: only two
        // fit, so nothing must be reserved.
        let gang: Vec<PendingTask> = (0..3)
            .map(|i| PendingTask {
                cpu: 0.8,
                memory: 0.1,
                ..task(100 + i, 5, None)
            })
            .collect();
        assert!(place_gang(&mut cluster, &gang).is_none());
        assert!(
            (cluster.cpu_utilisation()).abs() < 1e-9,
            "failed gang must leave no reservations behind"
        );

        // A 2-member gang fits and reserves both slots.
        let ok = place_gang(&mut cluster, &gang[..2]).expect("2 members fit");
        assert_eq!(ok.len(), 2);
        assert!(cluster.cpu_utilisation() > 0.0);
    }

    #[test]
    fn insertion_order_is_preserved() {
        let gangs = group_into_gangs(vec![
            task(1, 9, None),
            task(2, 7, Some(1)),
            task(3, 9, None),
        ]);
        assert_eq!(gangs[0].0.collection, 9);
        assert_eq!(gangs[0].1.len(), 2);
        assert_eq!(gangs[1].0.collection, 7);
    }
}
