//! Scenario components — event sources the old monolithic simulation
//! loop could not express.
//!
//! Each type here is a kernel [`Component`] that joins a
//! [`Harness`](crate::engine::Harness) and emits [`SchedEvent`]s at the
//! engine. Because they share the one timeline, scenarios compose: churn
//! can run under any [`Scheduler`](crate::scheduler::Scheduler), gangs
//! can arrive during churn, and a staged kernel rollout can grow the
//! attribute vocabulary while tasks are being scheduled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::collections::HashSet;

use ctlm_sim::{CompId, Component, Ctx, Event};
use ctlm_trace::{AttrId, AttrValue, Machine, MachineId, Micros};

use crate::engine::{SchedEvent, PRIO_ADMIT, PRIO_STATE};
use crate::lifecycle::{LifecycleOwner, OwnershipGuard};

/// One churn action at a point in time.
#[derive(Clone, Debug)]
pub enum ChurnAction {
    /// A machine drains; its tasks re-enter the queue.
    Fail(MachineId),
    /// A previously drained machine rejoins (empty).
    Restore(MachineId),
    /// A new machine joins the fleet.
    Join(Box<Machine>),
}

/// A deterministic churn schedule.
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    /// `(time, action)` pairs, sorted by time.
    pub events: Vec<(Micros, ChurnAction)>,
}

impl ChurnPlan {
    /// A plan from explicit `(time, action)` pairs (sorted internally —
    /// relative order of same-time actions is preserved).
    pub fn new(mut events: Vec<(Micros, ChurnAction)>) -> Self {
        events.sort_by_key(|&(t, _)| t);
        Self { events }
    }

    /// Seeded random drain/restore waves: `failures` *distinct* machines
    /// picked from `fleet` fail uniformly inside `window`, each coming
    /// back `outage` µs later.
    pub fn random_drain(
        seed: u64,
        fleet: &[MachineId],
        failures: usize,
        window: (Micros, Micros),
        outage: Micros,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4012);
        let mut events = Vec::new();
        let span = window.1.saturating_sub(window.0).max(1);
        // Sample without replacement — a duplicate pick would make the
        // second Fail a no-op and quietly run fewer failures than asked.
        let mut pool: Vec<MachineId> = fleet.to_vec();
        for k in 0..failures.min(fleet.len()) {
            let id = pool.swap_remove(rng.gen_range(0..pool.len()));
            let t = window.0 + rng.gen_range(0..span);
            events.push((t, ChurnAction::Fail(id)));
            events.push((t + outage + k as Micros, ChurnAction::Restore(id)));
        }
        Self::new(events)
    }

    /// True when no actions are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Walks a [`ChurnPlan`], emitting machine-state events at the engine.
///
/// When built [`ChurnSource::with_guard`], every Fail claims the machine
/// on the shared [`OwnershipGuard`] first; a failed claim (the
/// autoscaler is provisioning, draining or parking that machine) skips
/// the outage — and its paired Restore — instead of racing. Skipped
/// outages are counted ([`ChurnSource`] exposes no handle after
/// registration, so the count lives on the guard side of tests via
/// claims; drivers that need the number can pre-check the plan).
pub struct ChurnSource {
    plan: ChurnPlan,
    next: usize,
    engine: CompId,
    guard: Option<OwnershipGuard>,
    /// Machines this source currently holds drained (claim released and
    /// membership dropped at Restore). Only populated under a guard.
    held: HashSet<MachineId>,
}

impl ChurnSource {
    /// A source over `plan`, targeting the engine component.
    pub fn new(plan: ChurnPlan, engine: CompId) -> Self {
        Self {
            plan,
            next: 0,
            engine,
            guard: None,
            held: HashSet::new(),
        }
    }

    /// Registers this source on a shared lifecycle-ownership guard:
    /// Fail actions claim the machine (skipping the outage when another
    /// component holds it), Restore actions release the claim.
    pub fn with_guard(mut self, guard: OwnershipGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// First action time, if any (the harness seeds the first wake-up
    /// there).
    pub fn first_time(&self) -> Option<Micros> {
        self.plan.events.first().map(|&(t, _)| t)
    }
}

impl Component<SchedEvent> for ChurnSource {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        while self.next < self.plan.events.len() && self.plan.events[self.next].0 <= now {
            let (_, action) = &self.plan.events[self.next];
            let ev = match action {
                ChurnAction::Fail(id) => {
                    match &self.guard {
                        Some(g) if !g.try_claim(*id, LifecycleOwner::Churn) => {
                            // Another owner is operating on this machine
                            // — skip the outage (and, via `held`, the
                            // paired restore).
                            self.next += 1;
                            continue;
                        }
                        Some(_) => {
                            self.held.insert(*id);
                        }
                        None => {}
                    }
                    SchedEvent::MachineFail(*id)
                }
                ChurnAction::Restore(id) => {
                    if let Some(g) = &self.guard {
                        if !self.held.remove(id) {
                            // The fail was skipped; restoring would
                            // resurrect a machine we never drained.
                            self.next += 1;
                            continue;
                        }
                        if !g.release_owned(*id, LifecycleOwner::Churn) {
                            // Our drain claim was displaced mid-outage (a
                            // crash took the machine); recovery belongs
                            // to the new owner — restoring here would
                            // resurrect a crashed machine early.
                            self.next += 1;
                            continue;
                        }
                    }
                    SchedEvent::MachineRestore(*id)
                }
                ChurnAction::Join(m) => SchedEvent::MachineJoin(m.clone()),
            };
            ctx.emit_prio(0, PRIO_STATE, self.engine, ev);
            self.next += 1;
        }
        if self.next < self.plan.events.len() {
            let delay = self.plan.events[self.next].0 - now;
            ctx.emit_self_prio(delay, PRIO_STATE, SchedEvent::Wake);
        }
    }
}

/// Emits all-or-nothing gang arrivals: each entry is `(time, members)`.
/// Members are owned tasks — they join the engine's arena on arrival and
/// never pass through the individual admission path.
pub struct GangSource {
    gangs: Vec<(Micros, Vec<crate::queue::PendingTask>)>,
    next: usize,
    engine: CompId,
}

impl GangSource {
    /// A source over `(time, members)` gangs (sorted internally).
    pub fn new(mut gangs: Vec<(Micros, Vec<crate::queue::PendingTask>)>, engine: CompId) -> Self {
        gangs.sort_by_key(|&(t, _)| t);
        Self {
            gangs,
            next: 0,
            engine,
        }
    }

    /// First gang arrival time, if any.
    pub fn first_time(&self) -> Option<Micros> {
        self.gangs.first().map(|&(t, _)| t)
    }
}

impl Component<SchedEvent> for GangSource {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        while self.next < self.gangs.len() && self.gangs[self.next].0 <= now {
            let members = std::mem::take(&mut self.gangs[self.next].1);
            ctx.emit_prio(0, PRIO_ADMIT, self.engine, SchedEvent::GangArrival(members));
            self.next += 1;
        }
        if self.next < self.gangs.len() {
            let delay = self.gangs[self.next].0 - now;
            ctx.emit_self_prio(delay, PRIO_ADMIT, SchedEvent::Wake);
        }
    }
}

/// One stage of a staged attribute rollout (e.g. a kernel-version
/// upgrade washing over the fleet): at `time`, every machine in
/// `machines` gets `attr = value`.
#[derive(Clone, Debug)]
pub struct RolloutStage {
    /// When the stage lands.
    pub time: Micros,
    /// Machines upgraded in this stage.
    pub machines: Vec<MachineId>,
    /// The new attribute value.
    pub value: AttrValue,
}

/// Emits staged [`SchedEvent::AttrUpdate`]s at the engine — the
/// cluster-side half of a rollout. Online simulations mirror the same
/// updates into a replay/retraining component so the vocabulary grows
/// live (see `examples/online_simulation.rs`).
pub struct RolloutSource {
    attr: AttrId,
    stages: Vec<RolloutStage>,
    next: usize,
    engine: CompId,
}

impl RolloutSource {
    /// A source rolling `attr` through `stages` (sorted internally).
    pub fn new(attr: AttrId, mut stages: Vec<RolloutStage>, engine: CompId) -> Self {
        stages.sort_by_key(|s| s.time);
        Self {
            attr,
            stages,
            next: 0,
            engine,
        }
    }

    /// First stage time, if any.
    pub fn first_time(&self) -> Option<Micros> {
        self.stages.first().map(|s| s.time)
    }
}

impl Component<SchedEvent> for RolloutSource {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        while self.next < self.stages.len() && self.stages[self.next].time <= now {
            let stage = &self.stages[self.next];
            for &m in &stage.machines {
                ctx.emit_prio(
                    0,
                    PRIO_STATE,
                    self.engine,
                    SchedEvent::AttrUpdate {
                        machine: m,
                        attr: self.attr,
                        value: Some(stage.value.clone()),
                    },
                );
            }
            self.next += 1;
        }
        if self.next < self.stages.len() {
            let delay = self.stages[self.next].time - now;
            ctx.emit_self_prio(delay, PRIO_STATE, SchedEvent::Wake);
        }
    }
}

/// Feeds a (corrected, time-ordered) trace event stream into a combined
/// replay + scheduling simulation — the online loop the paper describes.
///
/// Each trace event is first observed by the embedded
/// [`ReplayComponent`](ctlm_agocs::ReplayComponent) (growing the
/// vocabulary, emitting dataset steps — whose callback typically submits
/// retraining work to a background
/// [`ModelUpdater`](crate::updater::ModelUpdater)), then mirrored at the
/// engine: machine adds/removes/attribute updates become cluster churn,
/// and task submissions become admissions labelled with the *live*
/// ground-truth suitable-node count. Replay and scheduling share one
/// timeline, so an analyzer hot-swapped mid-run immediately changes
/// routing — something the two old monolithic loops could not express.
pub struct OnlineTraceFeed<'a> {
    events: Vec<ctlm_trace::TraceEvent>,
    next: usize,
    engine: CompId,
    replay: ctlm_agocs::ReplayComponent<'a>,
    group_width: usize,
}

impl<'a> OnlineTraceFeed<'a> {
    /// A feed over `events`, labelling tasks with `group_width`-wide
    /// groups and observing every event into `replay`.
    pub fn new(
        events: Vec<ctlm_trace::TraceEvent>,
        group_width: usize,
        engine: CompId,
        replay: ctlm_agocs::ReplayComponent<'a>,
    ) -> Self {
        Self {
            events,
            next: 0,
            engine,
            replay,
            group_width,
        }
    }

    /// First event time, if any.
    pub fn first_time(&self) -> Option<Micros> {
        self.events.first().map(|e| e.time)
    }
}

impl Component<SchedEvent> for OnlineTraceFeed<'_> {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        use ctlm_trace::EventPayload;
        let now = ctx.now();
        while self.next < self.events.len() && self.events[self.next].time <= now {
            let ev = &self.events[self.next];
            // Replay sees the event first, so suitable-node labels below
            // are computed against the state *including* this event.
            self.replay.observe(ev);
            match &ev.payload {
                EventPayload::MachineAdd(m) => ctx.emit_prio(
                    0,
                    PRIO_STATE,
                    self.engine,
                    SchedEvent::MachineJoin(Box::new(m.clone())),
                ),
                EventPayload::MachineRemove(id) => {
                    ctx.emit_prio(0, PRIO_STATE, self.engine, SchedEvent::MachineFail(*id))
                }
                EventPayload::MachineAttrUpdate {
                    machine,
                    attr,
                    value,
                } => ctx.emit_prio(
                    0,
                    PRIO_STATE,
                    self.engine,
                    SchedEvent::AttrUpdate {
                        machine: *machine,
                        attr: *attr,
                        value: value.clone(),
                    },
                ),
                EventPayload::TaskSubmit(task) => {
                    if let Ok(reqs) = ctlm_data::compaction::collapse(&task.constraints) {
                        let suitable = self.replay.suitable_count(&reqs);
                        if suitable > 0 {
                            let truth_group =
                                ctlm_data::dataset::group_for_count(suitable, self.group_width);
                            ctx.emit_prio(
                                0,
                                PRIO_ADMIT,
                                self.engine,
                                SchedEvent::Admit(Box::new(crate::queue::PendingTask {
                                    id: task.id,
                                    collection: task.collection,
                                    cpu: task.cpu.min(0.9),
                                    memory: task.memory.min(0.9),
                                    priority: task.priority,
                                    reqs,
                                    arrival: ev.time,
                                    truth_group,
                                })),
                            );
                        }
                    }
                }
                _ => {}
            }
            self.next += 1;
        }
        if self.next < self.events.len() {
            let delay = self.events[self.next].time - now;
            ctx.emit_self_prio(delay, PRIO_STATE, SchedEvent::Wake);
        }
    }
}

/// Rescales trace event times into `[0, span]`, preserving order — the
/// stream-level analogue of [`crate::engine::compress_timeline`], for
/// online simulations that feed whole traces through the kernel.
pub fn compress_event_times(events: &mut [ctlm_trace::TraceEvent], span: Micros) {
    ctlm_trace::event::compress_times(events, span);
}

/// Registers a self-waking scenario source on a harness and seeds its
/// first wake-up, returning the component id. `first` is the source's
/// first action time; sources with nothing to do are still registered
/// but never woken.
pub fn attach_source<'a>(
    harness: &mut crate::engine::Harness<'a>,
    name: &str,
    source: impl Component<SchedEvent> + 'a,
    first: Option<Micros>,
    priority: u8,
) -> CompId {
    let id = harness.sim.add_component(name, source);
    if let Some(t) = first {
        harness
            .sim
            .schedule_prio(t, priority, id, id, SchedEvent::Wake);
    }
    id
}
