//! Machine lifecycle ownership — the guard that keeps independent
//! fleet-mutating components (churn, the autoscaler) from racing on one
//! machine.
//!
//! Both [`ChurnSource`](crate::scenario::ChurnSource) and the
//! `ctlm-autoscale` control plane drain and restore machines on the same
//! timeline. Without coordination, churn could "fail" a machine the
//! autoscaler is mid-way through provisioning or draining (or restore
//! one the autoscaler already decommissioned), leaving the two
//! components with contradictory views of the fleet. The
//! [`OwnershipGuard`] is the shared claim table: a component claims a
//! machine before taking it through a lifecycle transition and releases
//! it when the machine is plainly online (or gone for good). A claim
//! that fails means *someone else is operating on that machine* — the
//! caller skips it and moves on.
//!
//! The guard is deliberately advisory: components that never share
//! machines (or single-owner simulations) can skip it entirely, and all
//! legacy constructors do.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ctlm_trace::MachineId;

/// Who currently owns a machine's lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleOwner {
    /// A churn source drained it (and will restore it).
    Churn,
    /// The autoscaler is provisioning, draining or parking it.
    Autoscaler,
}

/// A shared, interior-mutable claim table over machine ids. Clone the
/// [`Rc`] handle into every component that mutates the fleet.
#[derive(Clone, Debug, Default)]
pub struct OwnershipGuard {
    owners: Rc<RefCell<HashMap<MachineId, LifecycleOwner>>>,
}

impl OwnershipGuard {
    /// An empty guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims `id` for `owner`. Returns false — and records nothing —
    /// when any owner (including `owner` itself) already holds the
    /// machine: claims are exclusive and never reentrant.
    pub fn try_claim(&self, id: MachineId, owner: LifecycleOwner) -> bool {
        let mut owners = self.owners.borrow_mut();
        if owners.contains_key(&id) {
            return false;
        }
        owners.insert(id, owner);
        true
    }

    /// Releases `id` (no-op when unclaimed). Returns the owner that held
    /// it, if any.
    pub fn release(&self, id: MachineId) -> Option<LifecycleOwner> {
        self.owners.borrow_mut().remove(&id)
    }

    /// The current owner of `id`, if claimed.
    pub fn owner(&self, id: MachineId) -> Option<LifecycleOwner> {
        self.owners.borrow().get(&id).copied()
    }

    /// Number of live claims.
    pub fn claimed(&self) -> usize {
        self.owners.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_are_exclusive_across_and_within_owners() {
        let g = OwnershipGuard::new();
        assert!(g.try_claim(7, LifecycleOwner::Churn));
        assert!(!g.try_claim(7, LifecycleOwner::Autoscaler));
        assert!(!g.try_claim(7, LifecycleOwner::Churn), "not reentrant");
        assert_eq!(g.owner(7), Some(LifecycleOwner::Churn));
        assert_eq!(g.release(7), Some(LifecycleOwner::Churn));
        assert!(g.try_claim(7, LifecycleOwner::Autoscaler));
        assert_eq!(g.claimed(), 1);
    }

    #[test]
    fn clones_share_the_table() {
        let g = OwnershipGuard::new();
        let h = g.clone();
        assert!(g.try_claim(1, LifecycleOwner::Autoscaler));
        assert!(!h.try_claim(1, LifecycleOwner::Churn));
        h.release(1);
        assert_eq!(g.claimed(), 0);
    }
}
