//! Machine lifecycle ownership — the guard that keeps independent
//! fleet-mutating components (churn, the autoscaler) from racing on one
//! machine.
//!
//! Both [`ChurnSource`](crate::scenario::ChurnSource) and the
//! `ctlm-autoscale` control plane drain and restore machines on the same
//! timeline. Without coordination, churn could "fail" a machine the
//! autoscaler is mid-way through provisioning or draining (or restore
//! one the autoscaler already decommissioned), leaving the two
//! components with contradictory views of the fleet. The
//! [`OwnershipGuard`] is the shared claim table: a component claims a
//! machine before taking it through a lifecycle transition and releases
//! it when the machine is plainly online (or gone for good). A claim
//! that fails means *someone else is operating on that machine* — the
//! caller skips it and moves on.
//!
//! The guard is deliberately advisory: components that never share
//! machines (or single-owner simulations) can skip it entirely, and all
//! legacy constructors do.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ctlm_trace::MachineId;

/// Who currently owns a machine's lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleOwner {
    /// A churn source drained it (and will restore it).
    Churn,
    /// The autoscaler is provisioning, draining or parking it.
    Autoscaler,
    /// The fault plane crashed it (and will recover it). Crashes are not
    /// polite: they take the machine through [`OwnershipGuard::override_claim`]
    /// even when another owner holds it mid-transition.
    Fault,
}

impl LifecycleOwner {
    /// Static tag for decision records (crash/override provenance).
    pub fn name(self) -> &'static str {
        match self {
            Self::Churn => "churn",
            Self::Autoscaler => "autoscaler",
            Self::Fault => "fault",
        }
    }
}

/// A shared, interior-mutable claim table over machine ids. Clone the
/// [`Rc`] handle into every component that mutates the fleet.
#[derive(Clone, Debug, Default)]
pub struct OwnershipGuard {
    owners: Rc<RefCell<HashMap<MachineId, LifecycleOwner>>>,
}

impl OwnershipGuard {
    /// An empty guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims `id` for `owner`. Returns false — and records nothing —
    /// when any owner (including `owner` itself) already holds the
    /// machine: claims are exclusive and never reentrant.
    pub fn try_claim(&self, id: MachineId, owner: LifecycleOwner) -> bool {
        let mut owners = self.owners.borrow_mut();
        if owners.contains_key(&id) {
            return false;
        }
        owners.insert(id, owner);
        true
    }

    /// Releases `id` (no-op when unclaimed). Returns the owner that held
    /// it, if any.
    pub fn release(&self, id: MachineId) -> Option<LifecycleOwner> {
        self.owners.borrow_mut().remove(&id)
    }

    /// Forcibly claims `id` for `owner`, displacing whatever claim was in
    /// place, and returns the displaced owner (if any). This is the crash
    /// path: a machine that abruptly dies mid-drain or mid-provision now
    /// belongs to the fault plane, and the displaced component must treat
    /// its in-flight transition as void — [`Self::release_owned`] is how
    /// it discovers the displacement without leaking the claim.
    pub fn override_claim(&self, id: MachineId, owner: LifecycleOwner) -> Option<LifecycleOwner> {
        self.owners.borrow_mut().insert(id, owner)
    }

    /// Releases `id` only if `owner` still holds it. Returns true when
    /// the release happened; false means the claim was displaced (or
    /// never existed) and the caller must not touch the machine — its
    /// new owner is responsible for the rest of the lifecycle.
    pub fn release_owned(&self, id: MachineId, owner: LifecycleOwner) -> bool {
        let mut owners = self.owners.borrow_mut();
        if owners.get(&id) == Some(&owner) {
            owners.remove(&id);
            true
        } else {
            false
        }
    }

    /// The current owner of `id`, if claimed.
    pub fn owner(&self, id: MachineId) -> Option<LifecycleOwner> {
        self.owners.borrow().get(&id).copied()
    }

    /// Number of live claims.
    pub fn claimed(&self) -> usize {
        self.owners.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_are_exclusive_across_and_within_owners() {
        let g = OwnershipGuard::new();
        assert!(g.try_claim(7, LifecycleOwner::Churn));
        assert!(!g.try_claim(7, LifecycleOwner::Autoscaler));
        assert!(!g.try_claim(7, LifecycleOwner::Churn), "not reentrant");
        assert_eq!(g.owner(7), Some(LifecycleOwner::Churn));
        assert_eq!(g.release(7), Some(LifecycleOwner::Churn));
        assert!(g.try_claim(7, LifecycleOwner::Autoscaler));
        assert_eq!(g.claimed(), 1);
    }

    #[test]
    fn override_claim_displaces_and_owned_release_refuses_stale_claims() {
        let g = OwnershipGuard::new();
        // A crash lands while the autoscaler is mid-provision: the
        // override wins and reports whom it displaced.
        assert!(g.try_claim(3, LifecycleOwner::Autoscaler));
        assert_eq!(
            g.override_claim(3, LifecycleOwner::Fault),
            Some(LifecycleOwner::Autoscaler)
        );
        assert_eq!(g.owner(3), Some(LifecycleOwner::Fault));
        // The displaced owner's release is refused — the claim must not
        // leak back into "unclaimed" while the fault plane owns it.
        assert!(!g.release_owned(3, LifecycleOwner::Autoscaler));
        assert_eq!(g.owner(3), Some(LifecycleOwner::Fault));
        // The current owner's release succeeds exactly once.
        assert!(g.release_owned(3, LifecycleOwner::Fault));
        assert!(!g.release_owned(3, LifecycleOwner::Fault));
        assert_eq!(g.claimed(), 0);
    }

    #[test]
    fn override_claim_on_unclaimed_machine_acts_like_a_claim() {
        let g = OwnershipGuard::new();
        assert_eq!(g.override_claim(9, LifecycleOwner::Fault), None);
        assert_eq!(g.owner(9), Some(LifecycleOwner::Fault));
        assert!(!g.try_claim(9, LifecycleOwner::Churn));
        assert!(g.release_owned(9, LifecycleOwner::Fault));
    }

    #[test]
    fn clones_share_the_table() {
        let g = OwnershipGuard::new();
        let h = g.clone();
        assert!(g.try_claim(1, LifecycleOwner::Autoscaler));
        assert!(!h.try_claim(1, LifecycleOwner::Churn));
        h.release(1);
        assert_eq!(g.claimed(), 0);
    }
}
