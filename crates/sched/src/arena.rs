//! The engine's owned task arena: index-stable chunk segments with
//! liveness-based buffer recycling.
//!
//! The engine references tasks by `usize` arena index. Indices below the
//! borrowed arrival list's length resolve into that slice; everything
//! else — streamed arrival chunks, gang members, dynamic admits — lives
//! here. The slab hands out **monotonically increasing** indices (never
//! reused), so an index stays a stable name for its task for the whole
//! run, while storage is reclaimed the moment a *segment* (one pushed
//! chunk) has no live tasks left: the engine releases a task's slot when
//! it finishes, is dropped as infeasible, is evicted by preemption, or
//! is spilled to a sibling cell, and fully drained front segments give
//! their buffers back to a small pool for the next chunk refill. That is
//! what keeps the streaming path's peak memory at O(chunk + in-flight)
//! instead of O(total tasks).

use std::collections::VecDeque;

use crate::queue::PendingTask;

/// Retired segment buffers kept for reuse. Two is enough to cover the
/// steady state (one segment draining while the next decodes); more
/// would just pin memory.
const POOL_LIMIT: usize = 2;

/// One pushed chunk: a contiguous index range `start..start+tasks.len()`
/// with a live-slot count.
struct Segment {
    start: usize,
    tasks: Vec<PendingTask>,
    live: usize,
    /// Open segments (dynamic single-task admits) may keep growing at
    /// the slab tail; sealed segments (streamed chunks, gangs) never do.
    open: bool,
}

/// Index-stable task storage behind the engine's borrowed arrival list.
/// All indices here are **relative** (slab-local, from 0); the engine
/// offsets them by the borrowed list's length.
#[derive(Default)]
pub(crate) struct TaskSlab {
    /// Live segments, ordered by `start`.
    segments: VecDeque<Segment>,
    /// Total tasks ever pushed — the next relative index.
    len: usize,
    /// Cleared buffers from retired segments, reused for new chunks.
    pool: Vec<Vec<PendingTask>>,
    /// Segments retired so far (buffer reclaimed) — observability for
    /// the recycling tests.
    retired: u64,
}

impl TaskSlab {
    /// Tasks ever pushed (relative indices are `0..len()`).
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// A cleared buffer for the next chunk — recycled when available.
    pub(crate) fn take_buffer(&mut self) -> Vec<PendingTask> {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns an unused buffer to the pool.
    pub(crate) fn recycle_buffer(&mut self, mut buf: Vec<PendingTask>) {
        if self.pool.len() < POOL_LIMIT {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// Pushes a sealed segment (a streamed chunk or a gang), taking
    /// ownership of the buffer. Returns `(start, len)` of the segment's
    /// relative index range. Empty buffers push no segment.
    pub(crate) fn push_sealed(&mut self, tasks: Vec<PendingTask>) -> (usize, usize) {
        let start = self.len;
        let n = tasks.len();
        if n == 0 {
            self.recycle_buffer(tasks);
            return (start, 0);
        }
        self.len += n;
        self.segments.push_back(Segment {
            start,
            tasks,
            live: n,
            open: false,
        });
        (start, n)
    }

    /// Pushes one dynamically admitted task, growing the tail segment
    /// when it is open (so admit-heavy runs do not fragment into
    /// single-task segments). Returns the task's relative index.
    pub(crate) fn push_one(&mut self, t: PendingTask) -> usize {
        let idx = self.len;
        self.len += 1;
        match self.segments.back_mut() {
            Some(seg) if seg.open && seg.start + seg.tasks.len() == idx => {
                seg.tasks.push(t);
                seg.live += 1;
            }
            _ => {
                let mut tasks = self.take_buffer();
                tasks.push(t);
                self.segments.push_back(Segment {
                    start: idx,
                    tasks,
                    live: 1,
                    open: true,
                });
            }
        }
        idx
    }

    /// The task behind a relative index.
    ///
    /// # Panics
    /// Panics on indices never pushed or whose segment has been retired
    /// (a released slot must never be read again).
    pub(crate) fn get(&self, idx: usize) -> &PendingTask {
        let seg = self.segment_for(idx);
        &seg.tasks[idx - seg.start]
    }

    /// Releases one slot: the task is dead (finished, dropped,
    /// evicted, or spilled away) and will never be read again. Fully
    /// drained segments at the slab front retire — their buffers go to
    /// the pool.
    pub(crate) fn release(&mut self, idx: usize) {
        let pos = self.position_for(idx);
        let seg = &mut self.segments[pos];
        debug_assert!(seg.live > 0, "slot {idx} double-released");
        seg.live -= 1;
        while let Some(front) = self.segments.front() {
            if front.live > 0 {
                break;
            }
            let seg = self.segments.pop_front().expect("front exists");
            self.retired += 1;
            self.recycle_buffer(seg.tasks);
        }
    }

    /// Segments retired (buffers reclaimed) so far.
    pub(crate) fn retired(&self) -> u64 {
        self.retired
    }

    /// Live (unretired) segments currently held.
    pub(crate) fn resident_segments(&self) -> usize {
        self.segments.len()
    }

    fn position_for(&self, idx: usize) -> usize {
        debug_assert!(idx < self.len, "index {idx} never pushed");
        debug_assert!(
            self.segments.front().is_some_and(|s| idx >= s.start),
            "index {idx} reaches into a retired segment"
        );
        // Binary search over the (start-ordered) segment deque: the last
        // segment with `start <= idx`.
        let mut lo = 0usize;
        let mut hi = self.segments.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.segments[mid].start <= idx {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        debug_assert!(lo > 0, "index {idx} below every segment");
        lo - 1
    }

    fn segment_for(&self, idx: usize) -> &Segment {
        let seg = &self.segments[self.position_for(idx)];
        debug_assert!(
            idx - seg.start < seg.tasks.len(),
            "index {idx} past its segment"
        );
        seg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64) -> PendingTask {
        PendingTask {
            id,
            collection: 1,
            cpu: 0.1,
            memory: 0.1,
            priority: 2,
            reqs: vec![],
            arrival: id,
            truth_group: 25,
        }
    }

    #[test]
    fn indices_are_stable_across_segments() {
        let mut slab = TaskSlab::default();
        let (s0, n0) = slab.push_sealed((0..4).map(task).collect());
        let one = slab.push_one(task(100));
        let (s1, _) = slab.push_sealed((10..13).map(task).collect());
        assert_eq!((s0, n0), (0, 4));
        assert_eq!(one, 4);
        assert_eq!(s1, 5);
        assert_eq!(slab.get(2).id, 2);
        assert_eq!(slab.get(4).id, 100);
        assert_eq!(slab.get(6).id, 11);
        assert_eq!(slab.len(), 8);
    }

    #[test]
    fn front_segments_retire_and_recycle_buffers() {
        let mut slab = TaskSlab::default();
        slab.push_sealed((0..4).map(task).collect());
        slab.push_sealed((4..8).map(task).collect());
        // Drain the second segment first: nothing retires (front alive).
        for idx in 4..8 {
            slab.release(idx);
        }
        assert_eq!(slab.retired(), 0);
        // Drain the front: both retire in one sweep.
        for idx in 0..4 {
            slab.release(idx);
        }
        assert_eq!(slab.retired(), 2);
        assert_eq!(slab.resident_segments(), 0);
        // Their buffers come back out of the pool.
        let buf = slab.take_buffer();
        assert!(buf.capacity() >= 4 && buf.is_empty());
    }

    #[test]
    fn open_tail_segment_absorbs_single_admits() {
        let mut slab = TaskSlab::default();
        slab.push_one(task(0));
        slab.push_one(task(1));
        slab.push_one(task(2));
        assert_eq!(slab.resident_segments(), 1);
        // A sealed push closes the tail; later singles open a new one.
        slab.push_sealed((10..12).map(task).collect());
        slab.push_one(task(3));
        assert_eq!(slab.resident_segments(), 3);
        assert_eq!(slab.get(5).id, 3);
    }
}
