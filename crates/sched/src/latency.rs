//! Scheduling-latency statistics.
//!
//! The paper's motivation is “significantly reduces scheduling latency
//! for tasks with restrictive node-affinity constraints”; this module
//! computes the per-group latency distributions the Fig. 3 experiment
//! reports.

use serde::{Deserialize, Serialize};

use ctlm_trace::Micros;

/// Summary statistics of a latency sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Mean latency (µs).
    pub mean: f64,
    /// Median (µs).
    pub p50: Micros,
    /// 95th percentile (µs).
    pub p95: Micros,
    /// 99th percentile (µs).
    pub p99: Micros,
    /// Maximum (µs).
    pub max: Micros,
}

impl LatencyStats {
    /// Computes the summary; returns `None` for an empty sample.
    pub fn from_samples(samples: &[Micros]) -> Option<Self> {
        Self::from_vec(samples.to_vec())
    }

    /// [`LatencyStats::from_samples`] taking ownership — sorts in place,
    /// so result-path callers that already hold a sample `Vec` avoid the
    /// snapshot copy.
    pub fn from_vec(mut s: Vec<Micros>) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        s.sort_unstable();
        let pct = |p: f64| -> Micros {
            let idx = ((s.len() as f64 - 1.0) * p).round() as usize;
            s[idx]
        };
        Some(Self {
            count: s.len(),
            mean: s.iter().map(|&v| v as f64).sum::<f64>() / s.len() as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *s.last().expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(LatencyStats::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(&[42]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.p50, 42);
        assert_eq!(s.p99, 42);
        assert_eq!(s.max, 42);
    }

    #[test]
    fn percentiles_ordered() {
        let samples: Vec<Micros> = (1..=1000).collect();
        let s = LatencyStats::from_samples(&samples).unwrap();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        // Nearest-rank on 1000 samples: index round(999 × .5) = 500 → 501.
        assert_eq!(s.p50, 501);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = LatencyStats::from_samples(&[30, 10, 20]).unwrap();
        assert_eq!(s.p50, 20);
        assert_eq!(s.max, 30);
    }
}
