//! Pull-based arrival streaming: chunked task decode feeding the engine
//! without materialising the whole workload.
//!
//! The classic path builds every [`PendingTask`] up front and the engine
//! borrows the slice — simple, but peak memory is O(total tasks), which
//! is what caps fleet-scale experiments long before CPU does. The
//! streaming path inverts the flow:
//!
//! * an [`ArrivalStream`] produces fixed-size, time-sorted chunks of
//!   arrivals *on demand* (a generator replaying its RNG lazily, a trace
//!   slice decoded incrementally, or [`SliceStream`] adapting an
//!   existing list);
//! * a [`StreamingSource`] component pulls the next chunk whenever the
//!   simulation clock catches up with the tasks decoded so far — i.e.
//!   chunks are always decoded *ahead of* the clock, on whatever worker
//!   thread is running the cell's shard (the rayon pool in multi-cell
//!   runs);
//! * each chunk enters the engine's **task slab** as one index-stable
//!   segment; tasks are freed as they finish (or are dropped/spilled),
//!   and fully drained segments return their buffers to a small pool for
//!   the next refill.
//!
//! Peak memory is therefore O(chunk + in-flight tasks) per cell instead
//! of O(total tasks), while the event sequence is *identical* to the
//! materialised path: the source wakes at exactly the same arrival
//! instants and emits exactly the same admissions (the lab's
//! stream-vs-materialised equivalence tests pin this bit-for-bit).

use std::cell::RefCell;
use std::rc::Rc;

use ctlm_sim::{CompId, Component, Ctx, Event};
use ctlm_trace::Micros;

use crate::engine::{EngineState, SchedEvent, PRIO_ADMIT};
use crate::queue::PendingTask;

/// A pull-based producer of time-sorted arrival chunks.
///
/// Contract:
///
/// * every call appends at most one chunk's worth of tasks to `out` and
///   returns the number appended — `0` means the stream is exhausted
///   (and must keep returning `0`);
/// * arrival times are nondecreasing *within and across* chunks, so the
///   consumer can treat the concatenation of all refills as one sorted
///   arrival list;
/// * `out` is handed in empty (the consumer recycles drained segment
///   buffers through it) and implementations must only append.
///
/// Implementations decide their own chunk size; [`StreamingSource`]
/// adapts to whatever run length a refill produces.
pub trait ArrivalStream {
    /// Appends the next time-sorted run of tasks to `out`; returns how
    /// many were appended (0 = exhausted).
    fn refill(&mut self, out: &mut Vec<PendingTask>) -> usize;
}

/// [`ArrivalStream`] over an existing time-sorted task list, cloning
/// `chunk` tasks per refill.
///
/// This is the compatibility adapter: workloads that must exist in
/// memory anyway (model training reads them, replayed traces) can still
/// feed the engine through the one streaming path.
pub struct SliceStream<'a> {
    tasks: &'a [PendingTask],
    pos: usize,
    chunk: usize,
}

impl<'a> SliceStream<'a> {
    /// A stream over `tasks` (must be sorted by arrival time) delivering
    /// `chunk` tasks per refill.
    ///
    /// # Panics
    /// Panics when `chunk` is 0.
    pub fn new(tasks: &'a [PendingTask], chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        debug_assert!(
            tasks.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "SliceStream input must be sorted by arrival"
        );
        Self {
            tasks,
            pos: 0,
            chunk,
        }
    }
}

impl ArrivalStream for SliceStream<'_> {
    fn refill(&mut self, out: &mut Vec<PendingTask>) -> usize {
        let end = (self.pos + self.chunk).min(self.tasks.len());
        let n = end - self.pos;
        out.extend_from_slice(&self.tasks[self.pos..end]);
        self.pos = end;
        n
    }
}

/// The kernel component draining an [`ArrivalStream`] into a cell.
///
/// Mirrors [`ArrivalSource`](crate::engine::ArrivalSource) /
/// [`SpilloverForwarder`](crate::engine::SpilloverForwarder) event
/// behaviour exactly — one wake per distinct arrival instant, admissions
/// emitted at [`PRIO_ADMIT`] in arrival order — but reads tasks from the
/// engine's slab (where each decoded chunk lands as one segment) instead
/// of a borrowed slice. With `spill`, tasks the home cell cannot admit
/// at their arrival instant go to the shard outbox as
/// [`SchedEvent::SpillRequest`], as the forwarder does.
pub struct StreamingSource<'a> {
    stream: Box<dyn ArrivalStream + 'a>,
    state: Rc<RefCell<EngineState<'a>>>,
    engine: CompId,
    /// Absolute arena index of the next task to admit.
    next: usize,
    /// One past the last decoded task's arena index.
    end: usize,
    spill: bool,
    /// Last emitted arrival stamp — guards the stream's cross-chunk
    /// sort contract in debug builds.
    last_arrival: Micros,
}

impl<'a> StreamingSource<'a> {
    /// Builds the source; call [`StreamingSource::prime`] before
    /// registering it to decode the first chunk and learn the first
    /// arrival time.
    pub fn new(
        stream: Box<dyn ArrivalStream + 'a>,
        state: Rc<RefCell<EngineState<'a>>>,
        engine: CompId,
        spill: bool,
    ) -> Self {
        Self {
            stream,
            state,
            engine,
            next: 0,
            end: 0,
            spill,
            last_arrival: 0,
        }
    }

    /// Decodes the first chunk; returns the first arrival time (`None`
    /// for an empty stream — no wake needs scheduling).
    pub fn prime(&mut self) -> Option<Micros> {
        if !self.refill() {
            return None;
        }
        Some(self.state.borrow().task(self.next).arrival)
    }

    /// Pulls the next chunk into a fresh slab segment. Returns false
    /// when the stream is exhausted.
    fn refill(&mut self) -> bool {
        let mut buf = self.state.borrow_mut().take_slab_buffer();
        let n = self.stream.refill(&mut buf);
        let mut state = self.state.borrow_mut();
        if n == 0 {
            state.recycle_slab_buffer(buf);
            return false;
        }
        debug_assert!(
            buf.windows(2).all(|w| w[0].arrival <= w[1].arrival)
                && buf[0].arrival >= self.last_arrival,
            "ArrivalStream chunks must be sorted across refills"
        );
        let (start, len) = state.push_chunk(buf);
        debug_assert!(self.next == self.end, "refill only when drained");
        self.next = start;
        self.end = start + len;
        true
    }
}

impl Component<SchedEvent> for StreamingSource<'_> {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        loop {
            if self.next == self.end && !self.refill() {
                return; // exhausted — no further wakes
            }
            let (arrival, admit_home) = {
                let state = self.state.borrow();
                let task = state.task(self.next);
                let local = !self.spill || task.arrival > now || state.can_admit(task);
                (task.arrival, local)
            };
            if arrival > now {
                ctx.emit_self_prio(arrival - now, PRIO_ADMIT, SchedEvent::Wake);
                return;
            }
            self.last_arrival = arrival;
            if admit_home {
                ctx.emit_prio(0, PRIO_ADMIT, self.engine, SchedEvent::Arrival(self.next));
            } else {
                let mut st = self.state.borrow_mut();
                st.note_spill_request();
                st.span_spill_open(self.next, now);
                drop(st);
                ctx.emit_remote(PRIO_ADMIT, SchedEvent::SpillRequest(self.next));
            }
            self.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, arrival: Micros) -> PendingTask {
        PendingTask {
            id,
            collection: 1,
            cpu: 0.1,
            memory: 0.1,
            priority: 2,
            reqs: vec![],
            arrival,
            truth_group: 25,
        }
    }

    #[test]
    fn slice_stream_chunks_cover_the_list() {
        let tasks: Vec<PendingTask> = (0..10).map(|k| task(k, k * 100)).collect();
        let mut stream = SliceStream::new(&tasks, 4);
        let mut seen = Vec::new();
        let mut buf = Vec::new();
        let mut sizes = Vec::new();
        loop {
            buf.clear();
            let n = stream.refill(&mut buf);
            if n == 0 {
                break;
            }
            sizes.push(n);
            seen.extend(buf.iter().map(|t| t.id));
        }
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(seen, (0..10).collect::<Vec<u64>>());
        // Exhausted streams stay exhausted.
        buf.clear();
        assert_eq!(stream.refill(&mut buf), 0);
    }
}
