//! Placement strategies: best-fit, and the preemption fallback.
//!
//! The main scheduler uses best-fit over suitable machines (Borg moved to
//! “a hybrid fairness and best-fit model to reduce fragmentation”). The
//! high-priority scheduler adds a Kubernetes-style preemption fallback:
//! when no suitable machine has room, lower-priority tasks are evicted to
//! make room — the mechanism the paper contrasts its approach with.
//!
//! ## Hot-path contract
//!
//! Best-fit resolves through the cluster's maintained capacity ordering
//! ([`SchedCluster::tightest_fit`]) instead of materialising and
//! scanning the suitable set, and every strategy receives a reusable
//! [`PlaceCtx`] scratch, so a steady-state scheduling pass performs
//! **zero heap allocations** (pinned by
//! `crates/sched/tests/zero_alloc_pass.rs`). Tie-breaks are defined over
//! `(capacity_bucket(free_cpu), id)` — see [`capacity_bucket`] — which makes
//! the answer independent of visit order. [`best_fit_linear`] retains
//! the pre-index full scan as the equivalence reference for property
//! tests and the `placement` bench family.

use ctlm_trace::{MachineId, TaskId};

use crate::cluster::{capacity_bucket, CapacityFit, SchedCluster};
use crate::queue::PendingTask;

/// Outcome of a placement attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum Placement {
    /// Placed on the machine.
    Placed(MachineId),
    /// Placed after evicting these tasks from the machine.
    PlacedWithPreemption(MachineId, Vec<TaskId>),
    /// No suitable machine exists at all (affinity-infeasible).
    Infeasible,
    /// Suitable machines exist but none has capacity (and preemption was
    /// not allowed or not sufficient).
    NoCapacity,
}

/// Reusable scratch buffers threaded through every placement attempt so
/// the per-pass hot loop never allocates. One instance lives in the
/// engine state; standalone callers create one per run.
#[derive(Debug, Default)]
pub struct PlaceCtx {
    /// Preemption-candidate scratch (per machine scanned).
    cands: Vec<(TaskId, f64, f64, u8)>,
    /// Eviction list being trialled on the current machine.
    trial: Vec<TaskId>,
    /// Best eviction list found so far.
    best: Vec<TaskId>,
    /// Gang-assignment scratch (`(task, machine)` pairs), used by the
    /// engine's all-or-nothing gang path.
    pub(crate) gang: Vec<(u64, u64)>,
}

impl PlaceCtx {
    /// Fresh scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A pluggable placement strategy — the engine no longer hardwires
/// best-fit. Strategies are consulted once per placement attempt and may
/// propose preemptions; the engine performs the actual reservation and
/// eviction bookkeeping. The `ctx` scratch is owned by the caller and
/// reused across attempts (strategies must not assume it carries state
/// between calls).
pub trait Placer {
    /// Proposes a placement for `task` on the current cluster state.
    fn place(&self, cluster: &SchedCluster, task: &PendingTask, ctx: &mut PlaceCtx) -> Placement;

    /// Strategy name, for reports.
    fn name(&self) -> &'static str;
}

/// [`best_fit`] as a strategy — the main scheduler's default.
#[derive(Clone, Copy, Debug, Default)]
pub struct BestFit;

impl Placer for BestFit {
    fn place(&self, cluster: &SchedCluster, task: &PendingTask, _ctx: &mut PlaceCtx) -> Placement {
        best_fit(cluster, task)
    }
    fn name(&self) -> &'static str {
        "best_fit"
    }
}

/// [`best_fit_with_preemption`] as a strategy — the high-priority
/// scheduler's default (Kubernetes-style eviction fallback).
#[derive(Clone, Copy, Debug, Default)]
pub struct PreemptiveBestFit;

impl Placer for PreemptiveBestFit {
    fn place(&self, cluster: &SchedCluster, task: &PendingTask, ctx: &mut PlaceCtx) -> Placement {
        best_fit_with_preemption(cluster, task, ctx)
    }
    fn name(&self) -> &'static str {
        "best_fit_with_preemption"
    }
}

/// First-fit: the lowest-id suitable machine with room wins. A
/// deliberately simple contrast strategy for A/B runs on the kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstFit;

impl Placer for FirstFit {
    fn place(&self, cluster: &SchedCluster, task: &PendingTask, _ctx: &mut PlaceCtx) -> Placement {
        let mut best: Option<MachineId> = None;
        let mut suitable_any = false;
        cluster.suitable_visit(&task.reqs, |id| {
            suitable_any = true;
            if cluster.fits(id, task.cpu, task.memory) && best.is_none_or(|b| id < b) {
                best = Some(id);
            }
            true
        });
        match best {
            Some(id) => Placement::Placed(id),
            None if suitable_any => Placement::NoCapacity,
            None => Placement::Infeasible,
        }
    }
    fn name(&self) -> &'static str {
        "first_fit"
    }
}

/// [`best_fit_soft`] as a strategy: hard constraints filter, the fixed
/// soft-preference set ranks, best-fit tie-breaks.
#[derive(Clone, Debug, Default)]
pub struct SoftAffinityBestFit {
    /// Soft requirements applied to every task this placer serves.
    pub soft: Vec<ctlm_data::compaction::AttrRequirement>,
}

impl Placer for SoftAffinityBestFit {
    fn place(&self, cluster: &SchedCluster, task: &PendingTask, _ctx: &mut PlaceCtx) -> Placement {
        best_fit_soft(cluster, task, &self.soft)
    }
    fn name(&self) -> &'static str {
        "best_fit_soft"
    }
}

/// Best-fit placement: among suitable machines with room, pick the one
/// whose free CPU is smallest (quantized to capacity buckets; ties:
/// lowest id). Resolved from the cluster's maintained capacity ordering
/// — no candidate list is materialised and no machine scan is needed.
pub fn best_fit(cluster: &SchedCluster, task: &PendingTask) -> Placement {
    match cluster.tightest_fit(&task.reqs, task.cpu, task.memory) {
        CapacityFit::Fit(id) => Placement::Placed(id),
        CapacityFit::NoCapacity => Placement::NoCapacity,
        CapacityFit::Infeasible => Placement::Infeasible,
    }
}

/// The pre-index reference for [`best_fit`]: materialises the suitable
/// set and scans it linearly. Same answer by construction (identical
/// `(capacity_bucket(free_cpu), id)` objective); retained as the
/// equivalence oracle for `tests/placement_equivalence.rs` and the
/// baseline side of the `placement` bench family.
pub fn best_fit_linear(cluster: &SchedCluster, task: &PendingTask) -> Placement {
    let suitable = cluster.suitable(&task.reqs);
    if suitable.is_empty() {
        return Placement::Infeasible;
    }
    let mut best: Option<(usize, MachineId)> = None;
    for id in suitable {
        if cluster.fits(id, task.cpu, task.memory) {
            let key = (capacity_bucket(cluster.free_cpu(id)), id);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
    }
    match best {
        Some((_, id)) => Placement::Placed(id),
        None => Placement::NoCapacity,
    }
}

/// Best-fit with Kubernetes-style *soft* node affinity (paper §VI, future
/// work 5: “Kubernetes' 'soft' node-affinity adds complexity to
/// scheduling, necessitating further research”).
///
/// `soft` requirements never exclude a machine; among suitable machines
/// with capacity, the one satisfying the most soft requirements wins,
/// with best-fit (smallest quantized CPU remainder, then lowest id) as
/// the tie-break. Scoring has to examine each candidate, so this streams
/// the suitable set (allocation-free) rather than using the capacity
/// ordering.
pub fn best_fit_soft(
    cluster: &SchedCluster,
    task: &PendingTask,
    soft: &[ctlm_data::compaction::AttrRequirement],
) -> Placement {
    // Best key: (soft misses, capacity bucket, id), minimised — misses
    // instead of score so the whole key minimises lexicographically.
    let mut best: Option<(usize, usize, MachineId)> = None;
    let mut suitable_any = false;
    cluster.suitable_visit(&task.reqs, |id| {
        suitable_any = true;
        if cluster.fits(id, task.cpu, task.memory) {
            let misses = soft
                .iter()
                .filter(|r| !r.accepts(cluster.machine_attr(id, r.attr)))
                .count();
            let key = (misses, capacity_bucket(cluster.free_cpu(id)), id);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        true
    });
    match best {
        Some((_, _, id)) => Placement::Placed(id),
        None if suitable_any => Placement::NoCapacity,
        None => Placement::Infeasible,
    }
}

/// Best-fit with a preemption fallback (the high-priority path).
///
/// When no suitable machine has free room, the suitable machine where the
/// fewest / lowest-priority evictions suffice is chosen; the evicted task
/// ids are returned so the engine can requeue them (Kubernetes reschedules
/// preempted pods). The fallback streams candidates through the `ctx`
/// scratch; only a successful preemption allocates (the returned eviction
/// list), which keeps the no-preemption steady state allocation-free.
pub fn best_fit_with_preemption(
    cluster: &SchedCluster,
    task: &PendingTask,
    ctx: &mut PlaceCtx,
) -> Placement {
    match best_fit(cluster, task) {
        Placement::NoCapacity => {}
        other => return other,
    }
    let mut best: Option<(usize, MachineId)> = None;
    let PlaceCtx {
        cands,
        trial,
        best: best_evictions,
        ..
    } = ctx;
    cluster.suitable_visit(&task.reqs, |id| {
        let mut free_cpu = cluster.free_cpu(id);
        let mut free_mem = cluster.free_mem(id);
        cluster.preemption_candidates_into(id, task.priority, cands);
        trial.clear();
        for &(victim, vc, vm, _p) in cands.iter() {
            if free_cpu >= task.cpu && free_mem >= task.memory {
                break;
            }
            free_cpu += vc;
            free_mem += vm;
            trial.push(victim);
        }
        if free_cpu >= task.cpu && free_mem >= task.memory && !trial.is_empty() {
            let key = (trial.len(), id);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
                std::mem::swap(trial, best_evictions);
            }
        }
        true
    });
    match best {
        Some((_, id)) => Placement::PlacedWithPreemption(id, best_evictions.clone()),
        None => Placement::NoCapacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_data::compaction::collapse;
    use ctlm_trace::{AttrValue, ConstraintOp as Op, Machine, TaskConstraint};

    fn cluster() -> SchedCluster {
        let mut ms = Vec::new();
        for i in 0..4u64 {
            let mut m = Machine::new(i, 1.0, 1.0);
            m.set_attr(0, AttrValue::Int(i as i64));
            ms.push(m);
        }
        SchedCluster::from_machines(ms)
    }

    fn task(id: u64, cpu: f64, prio: u8, lt: Option<i64>) -> PendingTask {
        let reqs = match lt {
            Some(v) => collapse(&[TaskConstraint::new(0, Op::LessThan(v))]).unwrap(),
            None => vec![],
        };
        PendingTask {
            id,
            collection: 0,
            cpu,
            memory: cpu,
            priority: prio,
            reqs,
            arrival: 0,
            truth_group: 25,
        }
    }

    #[test]
    fn best_fit_prefers_tightest_machine() {
        let mut c = cluster();
        c.place(2, 99, 0.7, 0.7, 0); // machine 2 has least room that still fits 0.2
        let p = best_fit(&c, &task(1, 0.2, 0, None));
        assert_eq!(p, Placement::Placed(2));
        assert_eq!(best_fit_linear(&c, &task(1, 0.2, 0, None)), p);
    }

    #[test]
    fn constraint_restricts_candidates() {
        let c = cluster();
        let p = best_fit(&c, &task(1, 0.2, 0, Some(1)));
        assert_eq!(p, Placement::Placed(0));
    }

    #[test]
    fn infeasible_when_no_machine_matches() {
        let c = cluster();
        let reqs =
            collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(99))))]).unwrap();
        let t = PendingTask {
            reqs,
            ..task(1, 0.1, 0, None)
        };
        assert_eq!(best_fit(&c, &t), Placement::Infeasible);
        assert_eq!(best_fit_linear(&c, &t), Placement::Infeasible);
    }

    #[test]
    fn no_capacity_without_preemption() {
        let mut c = cluster();
        for i in 0..4u64 {
            c.place(i, 100 + i, 0.95, 0.95, 5);
        }
        assert_eq!(best_fit(&c, &task(1, 0.2, 9, None)), Placement::NoCapacity);
        assert_eq!(
            best_fit_linear(&c, &task(1, 0.2, 9, None)),
            Placement::NoCapacity
        );
    }

    #[test]
    fn first_fit_takes_lowest_id_with_room() {
        let mut c = cluster();
        c.place(0, 99, 0.95, 0.95, 0);
        let mut ctx = PlaceCtx::new();
        let p = FirstFit.place(&c, &task(1, 0.2, 0, None), &mut ctx);
        assert_eq!(p, Placement::Placed(1));
    }

    #[test]
    fn soft_affinity_prefers_matching_machines_without_excluding() {
        let c = cluster();
        // Soft preference: node_index < 2 (machines 0, 1).
        let soft = collapse(&[TaskConstraint::new(0, Op::LessThan(2))]).unwrap();
        let t = task(1, 0.2, 0, None);
        match best_fit_soft(&c, &t, &soft) {
            Placement::Placed(id) => assert!(id < 2, "soft preference ignored (got {id})"),
            other => panic!("expected placement, got {other:?}"),
        }
    }

    #[test]
    fn soft_affinity_degrades_gracefully_when_unsatisfiable() {
        let mut c = cluster();
        // Fill the preferred machines; the task must still place
        // elsewhere (soft ≠ hard).
        c.place(0, 90, 0.95, 0.95, 0);
        c.place(1, 91, 0.95, 0.95, 0);
        let soft = collapse(&[TaskConstraint::new(0, Op::LessThan(2))]).unwrap();
        let t = task(1, 0.2, 0, None);
        match best_fit_soft(&c, &t, &soft) {
            Placement::Placed(id) => assert!(id >= 2, "must fall back to non-preferred"),
            other => panic!("expected placement, got {other:?}"),
        }
    }

    #[test]
    fn soft_affinity_respects_hard_constraints_first() {
        let c = cluster();
        // Hard: node < 2. Soft: node >= 3 (impossible within hard set).
        let soft = collapse(&[TaskConstraint::new(0, Op::GreaterThanEqual(3))]).unwrap();
        let t = task(1, 0.2, 0, Some(2));
        match best_fit_soft(&c, &t, &soft) {
            Placement::Placed(id) => assert!(id < 2, "hard constraint violated"),
            other => panic!("expected placement, got {other:?}"),
        }
    }

    #[test]
    fn soft_ties_break_by_best_fit() {
        let mut c = cluster();
        c.place(1, 90, 0.6, 0.6, 0); // machine 1 tighter but same soft score
        let soft = collapse(&[TaskConstraint::new(0, Op::LessThan(2))]).unwrap();
        let t = task(1, 0.2, 0, None);
        match best_fit_soft(&c, &t, &soft) {
            Placement::Placed(id) => assert_eq!(id, 1, "tie must break best-fit"),
            other => panic!("expected placement, got {other:?}"),
        }
    }

    #[test]
    fn preemption_evicts_lower_priority() {
        let mut c = cluster();
        for i in 0..4u64 {
            c.place(i, 100 + i, 0.95, 0.95, if i == 2 { 1 } else { 8 });
        }
        let mut ctx = PlaceCtx::new();
        let p = best_fit_with_preemption(&c, &task(1, 0.2, 5, None), &mut ctx);
        match p {
            Placement::PlacedWithPreemption(id, evicted) => {
                assert_eq!(id, 2, "only machine 2 holds a preemptible task");
                assert_eq!(evicted, vec![102]);
            }
            other => panic!("expected preemption, got {other:?}"),
        }
    }

    #[test]
    fn preemption_cannot_evict_higher_priority() {
        let mut c = cluster();
        for i in 0..4u64 {
            c.place(i, 100 + i, 0.95, 0.95, 9);
        }
        let mut ctx = PlaceCtx::new();
        assert_eq!(
            best_fit_with_preemption(&c, &task(1, 0.2, 5, None), &mut ctx),
            Placement::NoCapacity,
            "Kubernetes-style preemption only evicts lower priority"
        );
    }
}
