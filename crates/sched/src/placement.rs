//! Placement strategies: best-fit, and the preemption fallback.
//!
//! The main scheduler uses best-fit over suitable machines (Borg moved to
//! “a hybrid fairness and best-fit model to reduce fragmentation”). The
//! high-priority scheduler adds a Kubernetes-style preemption fallback:
//! when no suitable machine has room, lower-priority tasks are evicted to
//! make room — the mechanism the paper contrasts its approach with.

use ctlm_trace::{MachineId, TaskId};

use crate::cluster::SchedCluster;
use crate::queue::PendingTask;

/// Outcome of a placement attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum Placement {
    /// Placed on the machine.
    Placed(MachineId),
    /// Placed after evicting these tasks from the machine.
    PlacedWithPreemption(MachineId, Vec<TaskId>),
    /// No suitable machine exists at all (affinity-infeasible).
    Infeasible,
    /// Suitable machines exist but none has capacity (and preemption was
    /// not allowed or not sufficient).
    NoCapacity,
}

/// A pluggable placement strategy — the engine no longer hardwires
/// best-fit. Strategies are consulted once per placement attempt and may
/// propose preemptions; the engine performs the actual reservation and
/// eviction bookkeeping.
pub trait Placer {
    /// Proposes a placement for `task` on the current cluster state.
    fn place(&self, cluster: &SchedCluster, task: &PendingTask) -> Placement;

    /// Strategy name, for reports.
    fn name(&self) -> &'static str;
}

/// [`best_fit`] as a strategy — the main scheduler's default.
#[derive(Clone, Copy, Debug, Default)]
pub struct BestFit;

impl Placer for BestFit {
    fn place(&self, cluster: &SchedCluster, task: &PendingTask) -> Placement {
        best_fit(cluster, task)
    }
    fn name(&self) -> &'static str {
        "best_fit"
    }
}

/// [`best_fit_with_preemption`] as a strategy — the high-priority
/// scheduler's default (Kubernetes-style eviction fallback).
#[derive(Clone, Copy, Debug, Default)]
pub struct PreemptiveBestFit;

impl Placer for PreemptiveBestFit {
    fn place(&self, cluster: &SchedCluster, task: &PendingTask) -> Placement {
        best_fit_with_preemption(cluster, task)
    }
    fn name(&self) -> &'static str {
        "best_fit_with_preemption"
    }
}

/// First-fit: the first suitable machine (ascending id) with room wins.
/// A deliberately simple contrast strategy for A/B runs on the kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstFit;

impl Placer for FirstFit {
    fn place(&self, cluster: &SchedCluster, task: &PendingTask) -> Placement {
        let suitable = cluster.suitable(&task.reqs);
        if suitable.is_empty() {
            return Placement::Infeasible;
        }
        for id in suitable {
            if cluster.fits(id, task.cpu, task.memory) {
                return Placement::Placed(id);
            }
        }
        Placement::NoCapacity
    }
    fn name(&self) -> &'static str {
        "first_fit"
    }
}

/// [`best_fit_soft`] as a strategy: hard constraints filter, the fixed
/// soft-preference set ranks, best-fit tie-breaks.
#[derive(Clone, Debug, Default)]
pub struct SoftAffinityBestFit {
    /// Soft requirements applied to every task this placer serves.
    pub soft: Vec<ctlm_data::compaction::AttrRequirement>,
}

impl Placer for SoftAffinityBestFit {
    fn place(&self, cluster: &SchedCluster, task: &PendingTask) -> Placement {
        best_fit_soft(cluster, task, &self.soft)
    }
    fn name(&self) -> &'static str {
        "best_fit_soft"
    }
}

/// Best-fit placement: among suitable machines with room, pick the one
/// whose remaining CPU after placement is smallest (ties: lowest id).
pub fn best_fit(cluster: &SchedCluster, task: &PendingTask) -> Placement {
    let suitable = cluster.suitable(&task.reqs);
    if suitable.is_empty() {
        return Placement::Infeasible;
    }
    let mut best: Option<(f64, MachineId)> = None;
    for id in suitable {
        if cluster.fits(id, task.cpu, task.memory) {
            let rem = cluster.free_cpu(id) - task.cpu;
            let better = match best {
                None => true,
                Some((b, _)) => rem < b,
            };
            if better {
                best = Some((rem, id));
            }
        }
    }
    match best {
        Some((_, id)) => Placement::Placed(id),
        None => Placement::NoCapacity,
    }
}

/// Best-fit with Kubernetes-style *soft* node affinity (paper §VI, future
/// work 5: “Kubernetes' 'soft' node-affinity adds complexity to
/// scheduling, necessitating further research”).
///
/// `soft` requirements never exclude a machine; among suitable machines
/// with capacity, the one satisfying the most soft requirements wins,
/// with best-fit (smallest CPU remainder) as the tie-break.
pub fn best_fit_soft(
    cluster: &SchedCluster,
    task: &PendingTask,
    soft: &[ctlm_data::compaction::AttrRequirement],
) -> Placement {
    let suitable = cluster.suitable(&task.reqs);
    if suitable.is_empty() {
        return Placement::Infeasible;
    }
    let mut best: Option<(usize, f64, MachineId)> = None;
    for id in suitable {
        if !cluster.fits(id, task.cpu, task.memory) {
            continue;
        }
        let score = soft
            .iter()
            .filter(|r| r.accepts(cluster.machine_attr(id, r.attr)))
            .count();
        let rem = cluster.free_cpu(id) - task.cpu;
        let better = match best {
            None => true,
            Some((bs, br, _)) => score > bs || (score == bs && rem < br),
        };
        if better {
            best = Some((score, rem, id));
        }
    }
    match best {
        Some((_, _, id)) => Placement::Placed(id),
        None => Placement::NoCapacity,
    }
}

/// Best-fit with a preemption fallback (the high-priority path).
///
/// When no suitable machine has free room, the suitable machine where the
/// fewest / lowest-priority evictions suffice is chosen; the evicted task
/// ids are returned so the engine can requeue them (Kubernetes reschedules
/// preempted pods).
pub fn best_fit_with_preemption(cluster: &SchedCluster, task: &PendingTask) -> Placement {
    match best_fit(cluster, task) {
        Placement::NoCapacity => {}
        other => return other,
    }
    let suitable = cluster.suitable(&task.reqs);
    let mut best: Option<(usize, MachineId, Vec<TaskId>)> = None;
    for id in suitable {
        let mut free_cpu = cluster.free_cpu(id);
        let mut free_mem = cluster.free_mem(id);
        let mut evictions = Vec::new();
        for (victim, vc, vm, _p) in cluster.preemption_candidates(id, task.priority) {
            if free_cpu >= task.cpu && free_mem >= task.memory {
                break;
            }
            free_cpu += vc;
            free_mem += vm;
            evictions.push(victim);
        }
        if free_cpu >= task.cpu && free_mem >= task.memory && !evictions.is_empty() {
            let better = match &best {
                None => true,
                Some((n, _, _)) => evictions.len() < *n,
            };
            if better {
                best = Some((evictions.len(), id, evictions));
            }
        }
    }
    match best {
        Some((_, id, evictions)) => Placement::PlacedWithPreemption(id, evictions),
        None => Placement::NoCapacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_data::compaction::collapse;
    use ctlm_trace::{AttrValue, ConstraintOp as Op, Machine, TaskConstraint};

    fn cluster() -> SchedCluster {
        let mut ms = Vec::new();
        for i in 0..4u64 {
            let mut m = Machine::new(i, 1.0, 1.0);
            m.set_attr(0, AttrValue::Int(i as i64));
            ms.push(m);
        }
        SchedCluster::from_machines(ms)
    }

    fn task(id: u64, cpu: f64, prio: u8, lt: Option<i64>) -> PendingTask {
        let reqs = match lt {
            Some(v) => collapse(&[TaskConstraint::new(0, Op::LessThan(v))]).unwrap(),
            None => vec![],
        };
        PendingTask {
            id,
            collection: 0,
            cpu,
            memory: cpu,
            priority: prio,
            reqs,
            arrival: 0,
            truth_group: 25,
        }
    }

    #[test]
    fn best_fit_prefers_tightest_machine() {
        let mut c = cluster();
        c.place(2, 99, 0.7, 0.7, 0); // machine 2 has least room that still fits 0.2
        let p = best_fit(&c, &task(1, 0.2, 0, None));
        assert_eq!(p, Placement::Placed(2));
    }

    #[test]
    fn constraint_restricts_candidates() {
        let c = cluster();
        let p = best_fit(&c, &task(1, 0.2, 0, Some(1)));
        assert_eq!(p, Placement::Placed(0));
    }

    #[test]
    fn infeasible_when_no_machine_matches() {
        let c = cluster();
        let reqs =
            collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(99))))]).unwrap();
        let t = PendingTask {
            reqs,
            ..task(1, 0.1, 0, None)
        };
        assert_eq!(best_fit(&c, &t), Placement::Infeasible);
    }

    #[test]
    fn no_capacity_without_preemption() {
        let mut c = cluster();
        for i in 0..4u64 {
            c.place(i, 100 + i, 0.95, 0.95, 5);
        }
        assert_eq!(best_fit(&c, &task(1, 0.2, 9, None)), Placement::NoCapacity);
    }

    #[test]
    fn soft_affinity_prefers_matching_machines_without_excluding() {
        let c = cluster();
        // Soft preference: node_index < 2 (machines 0, 1).
        let soft = collapse(&[TaskConstraint::new(0, Op::LessThan(2))]).unwrap();
        let t = task(1, 0.2, 0, None);
        match best_fit_soft(&c, &t, &soft) {
            Placement::Placed(id) => assert!(id < 2, "soft preference ignored (got {id})"),
            other => panic!("expected placement, got {other:?}"),
        }
    }

    #[test]
    fn soft_affinity_degrades_gracefully_when_unsatisfiable() {
        let mut c = cluster();
        // Fill the preferred machines; the task must still place
        // elsewhere (soft ≠ hard).
        c.place(0, 90, 0.95, 0.95, 0);
        c.place(1, 91, 0.95, 0.95, 0);
        let soft = collapse(&[TaskConstraint::new(0, Op::LessThan(2))]).unwrap();
        let t = task(1, 0.2, 0, None);
        match best_fit_soft(&c, &t, &soft) {
            Placement::Placed(id) => assert!(id >= 2, "must fall back to non-preferred"),
            other => panic!("expected placement, got {other:?}"),
        }
    }

    #[test]
    fn soft_affinity_respects_hard_constraints_first() {
        let c = cluster();
        // Hard: node < 2. Soft: node >= 3 (impossible within hard set).
        let soft = collapse(&[TaskConstraint::new(0, Op::GreaterThanEqual(3))]).unwrap();
        let t = task(1, 0.2, 0, Some(2));
        match best_fit_soft(&c, &t, &soft) {
            Placement::Placed(id) => assert!(id < 2, "hard constraint violated"),
            other => panic!("expected placement, got {other:?}"),
        }
    }

    #[test]
    fn soft_ties_break_by_best_fit() {
        let mut c = cluster();
        c.place(1, 90, 0.6, 0.6, 0); // machine 1 tighter but same soft score
        let soft = collapse(&[TaskConstraint::new(0, Op::LessThan(2))]).unwrap();
        let t = task(1, 0.2, 0, None);
        match best_fit_soft(&c, &t, &soft) {
            Placement::Placed(id) => assert_eq!(id, 1, "tie must break best-fit"),
            other => panic!("expected placement, got {other:?}"),
        }
    }

    #[test]
    fn preemption_evicts_lower_priority() {
        let mut c = cluster();
        for i in 0..4u64 {
            c.place(i, 100 + i, 0.95, 0.95, if i == 2 { 1 } else { 8 });
        }
        let p = best_fit_with_preemption(&c, &task(1, 0.2, 5, None));
        match p {
            Placement::PlacedWithPreemption(id, evicted) => {
                assert_eq!(id, 2, "only machine 2 holds a preemptible task");
                assert_eq!(evicted, vec![102]);
            }
            other => panic!("expected preemption, got {other:?}"),
        }
    }

    #[test]
    fn preemption_cannot_evict_higher_priority() {
        let mut c = cluster();
        for i in 0..4u64 {
            c.place(i, 100 + i, 0.95, 0.95, 9);
        }
        assert_eq!(
            best_fit_with_preemption(&c, &task(1, 0.2, 5, None)),
            Placement::NoCapacity,
            "Kubernetes-style preemption only evicts lower priority"
        );
    }
}
