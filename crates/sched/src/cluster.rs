//! Machine capacity accounting for the scheduler.

use std::collections::HashMap;

use ctlm_agocs::AttrIndex;
use ctlm_data::compaction::AttrRequirement;
use ctlm_trace::{Machine, MachineId, TaskId};

/// A machine's live allocation state.
#[derive(Clone, Debug)]
struct Alloc {
    cpu_used: f64,
    mem_used: f64,
    /// Tasks placed here with their reservations and priority.
    tasks: HashMap<TaskId, (f64, f64, u8)>,
}

/// The scheduler's view of the cluster: trace machines plus usage. An
/// inverted [`AttrIndex`] mirrors the fleet so per-task suitability
/// queries in the placement loop scale with the candidate set instead of
/// the cluster size (the Fig. 3 simulation at 100k+ machines).
#[derive(Clone, Debug, Default)]
pub struct SchedCluster {
    machines: HashMap<MachineId, (Machine, Alloc)>,
    index: AttrIndex,
    /// Machines drained by churn — kept so [`SchedCluster::reset`] can
    /// restore the fleet without a deep copy of the whole cluster.
    offline: HashMap<MachineId, Machine>,
}

impl SchedCluster {
    /// Empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a machine list.
    pub fn from_machines(machines: impl IntoIterator<Item = Machine>) -> Self {
        let mut c = Self::new();
        for m in machines {
            c.add_machine(m);
        }
        c
    }

    /// Adds a machine.
    pub fn add_machine(&mut self, m: Machine) {
        // A re-add under the same id supersedes any parked copy — without
        // this, a later restore/reset would overwrite the live machine
        // (and its allocation accounting) with the stale one.
        self.offline.remove(&m.id);
        if self.machines.contains_key(&m.id) {
            self.index.remove_machine(m.id);
        }
        self.index.add_machine(&m);
        self.machines.insert(
            m.id,
            (
                m,
                Alloc {
                    cpu_used: 0.0,
                    mem_used: 0.0,
                    tasks: HashMap::new(),
                },
            ),
        );
    }

    /// Takes a machine offline (churn / failure). The machine's running
    /// tasks are returned as `(task, cpu, memory, priority)` so the
    /// engine can requeue them; the machine itself is parked for
    /// [`SchedCluster::reset`] to restore. Returns `None` for unknown
    /// machines.
    pub fn remove_machine(&mut self, id: MachineId) -> Option<Vec<(TaskId, f64, f64, u8)>> {
        let (m, alloc) = self.machines.remove(&id)?;
        self.index.remove_machine(id);
        self.offline.insert(id, m);
        let mut evicted: Vec<(TaskId, f64, f64, u8)> = alloc
            .tasks
            .into_iter()
            .map(|(t, (c, mem, p))| (t, c, mem, p))
            .collect();
        evicted.sort_by_key(|&(t, ..)| t);
        Some(evicted)
    }

    /// Brings a previously drained machine back online (with no load).
    /// Returns true if it was offline.
    pub fn restore_machine(&mut self, id: MachineId) -> bool {
        match self.offline.remove(&id) {
            Some(m) => {
                self.add_machine(m);
                true
            }
            None => false,
        }
    }

    /// Updates one machine attribute in place (None clears it), keeping
    /// the inverted index consistent. Machines currently drained by
    /// churn receive the update on their parked copy, so a rollout that
    /// lands mid-outage is present when they rejoin. Returns true when
    /// the machine is known (online or parked).
    pub fn update_attr(
        &mut self,
        id: MachineId,
        attr: ctlm_trace::AttrId,
        value: Option<ctlm_trace::AttrValue>,
    ) -> bool {
        let m = if let Some((m, _)) = self.machines.get_mut(&id) {
            self.index.update_attr(id, attr, value.as_ref());
            m
        } else if let Some(m) = self.offline.get_mut(&id) {
            m // parked: no index entry to maintain
        } else {
            return false;
        };
        match value {
            Some(v) => {
                m.set_attr(attr, v);
            }
            None => {
                m.remove_attr(attr);
            }
        }
        true
    }

    /// Returns the cluster to its pristine state: every reservation is
    /// dropped and every churned machine rejoins. This is the cheap
    /// alternative to deep-copying the cluster per policy run — O(live
    /// tasks + churned machines) instead of O(fleet).
    pub fn reset(&mut self) {
        for (_, a) in self.machines.values_mut() {
            a.cpu_used = 0.0;
            a.mem_used = 0.0;
            a.tasks.clear();
        }
        if !self.offline.is_empty() {
            let offline = std::mem::take(&mut self.offline);
            for (_, m) in offline {
                self.add_machine(m);
            }
        }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Free CPU on a machine.
    pub fn free_cpu(&self, id: MachineId) -> f64 {
        let (m, a) = &self.machines[&id];
        m.cpu - a.cpu_used
    }

    /// Free memory on a machine.
    pub fn free_mem(&self, id: MachineId) -> f64 {
        let (m, a) = &self.machines[&id];
        m.memory - a.mem_used
    }

    /// Machines satisfying the requirements (constraint feasibility only,
    /// not capacity), in ascending id order — answered by the inverted
    /// index.
    pub fn suitable(&self, reqs: &[AttrRequirement]) -> Vec<MachineId> {
        self.index.matching(reqs)
    }

    /// [`SchedCluster::suitable`] into a caller-provided buffer — the
    /// placement loop's allocation-free form.
    pub fn suitable_into(&self, reqs: &[AttrRequirement], out: &mut Vec<MachineId>) {
        self.index.matching_into(reqs, out);
    }

    /// True when the machine can hold the request right now.
    pub fn fits(&self, id: MachineId, cpu: f64, mem: f64) -> bool {
        self.free_cpu(id) >= cpu && self.free_mem(id) >= mem
    }

    /// Reserves capacity for a task.
    ///
    /// # Panics
    /// Panics if the reservation does not fit (callers check `fits`).
    pub fn place(&mut self, id: MachineId, task: TaskId, cpu: f64, mem: f64, priority: u8) {
        assert!(self.fits(id, cpu, mem), "placement must fit");
        let (_, a) = self.machines.get_mut(&id).expect("machine exists");
        a.cpu_used += cpu;
        a.mem_used += mem;
        a.tasks.insert(task, (cpu, mem, priority));
    }

    /// Releases a task's reservation. Returns true if it was present.
    pub fn release(&mut self, id: MachineId, task: TaskId) -> bool {
        if let Some((_, a)) = self.machines.get_mut(&id) {
            if let Some((cpu, mem, _)) = a.tasks.remove(&task) {
                a.cpu_used -= cpu;
                a.mem_used -= mem;
                return true;
            }
        }
        false
    }

    /// Tasks on a machine with priority strictly below `priority`, sorted
    /// lowest-priority first — the Kubernetes preemption candidate order.
    pub fn preemption_candidates(
        &self,
        id: MachineId,
        priority: u8,
    ) -> Vec<(TaskId, f64, f64, u8)> {
        let (_, a) = &self.machines[&id];
        let mut out: Vec<(TaskId, f64, f64, u8)> = a
            .tasks
            .iter()
            .filter(|(_, (_, _, p))| *p < priority)
            .map(|(&t, &(c, m, p))| (t, c, m, p))
            .collect();
        out.sort_by_key(|&(t, _, _, p)| (p, t));
        out
    }

    /// One machine's attribute value (soft-affinity scoring needs direct
    /// attribute access).
    pub fn machine_attr(
        &self,
        id: MachineId,
        attr: ctlm_trace::AttrId,
    ) -> Option<&ctlm_trace::AttrValue> {
        self.machines.get(&id).and_then(|(m, _)| m.attr(attr))
    }

    /// Total CPU utilisation across the cluster (0..1).
    pub fn cpu_utilisation(&self) -> f64 {
        let (used, cap) = self
            .machines
            .values()
            .fold((0.0, 0.0), |(u, c), (m, a)| (u + a.cpu_used, c + m.cpu));
        if cap == 0.0 {
            0.0
        } else {
            used / cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_trace::AttrValue;

    fn cluster3() -> SchedCluster {
        let mut ms = Vec::new();
        for i in 0..3u64 {
            let mut m = Machine::new(i, 1.0, 1.0);
            m.set_attr(0, AttrValue::Int(i as i64));
            ms.push(m);
        }
        SchedCluster::from_machines(ms)
    }

    #[test]
    fn place_and_release_roundtrip() {
        let mut c = cluster3();
        assert!(c.fits(0, 0.6, 0.6));
        c.place(0, 100, 0.6, 0.6, 5);
        assert!(!c.fits(0, 0.6, 0.6));
        assert!((c.free_cpu(0) - 0.4).abs() < 1e-9);
        assert!(c.release(0, 100));
        assert!(!c.release(0, 100));
        assert!(c.fits(0, 0.6, 0.6));
    }

    #[test]
    fn suitable_filters_by_requirements() {
        use ctlm_data::compaction::collapse;
        use ctlm_trace::{ConstraintOp as Op, TaskConstraint};
        let c = cluster3();
        let reqs = collapse(&[TaskConstraint::new(0, Op::LessThan(2))]).unwrap();
        assert_eq!(c.suitable(&reqs), vec![0, 1]);
    }

    #[test]
    fn preemption_candidates_sorted_by_priority() {
        let mut c = cluster3();
        c.place(1, 10, 0.2, 0.2, 3);
        c.place(1, 11, 0.2, 0.2, 1);
        c.place(1, 12, 0.2, 0.2, 9);
        let cands = c.preemption_candidates(1, 5);
        assert_eq!(
            cands.iter().map(|&(t, ..)| t).collect::<Vec<_>>(),
            vec![11, 10]
        );
    }

    #[test]
    fn utilisation_tracks_placements() {
        let mut c = cluster3();
        assert_eq!(c.cpu_utilisation(), 0.0);
        c.place(0, 1, 1.0, 0.5, 0);
        assert!((c.cpu_utilisation() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn parked_machines_receive_attr_updates() {
        let mut c = cluster3();
        assert!(c.remove_machine(1).is_some());
        // A rollout landing mid-outage must stick.
        assert!(c.update_attr(1, 0, Some(AttrValue::Int(99))));
        assert!(c.restore_machine(1));
        assert_eq!(c.machine_attr(1, 0), Some(&AttrValue::Int(99)));
        use ctlm_data::compaction::collapse;
        use ctlm_trace::{ConstraintOp as Op, TaskConstraint};
        let reqs =
            collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(99))))]).unwrap();
        assert_eq!(c.suitable(&reqs), vec![1]);
    }

    #[test]
    fn re_add_supersedes_parked_copy() {
        let mut c = cluster3();
        c.remove_machine(2);
        // The machine rejoins via a fresh add (trace MachineAdd), takes
        // load — a later reset must not clobber it with the stale copy.
        let mut m = Machine::new(2, 1.0, 1.0);
        m.set_attr(0, AttrValue::Int(42));
        c.add_machine(m);
        c.place(2, 7, 0.5, 0.5, 1);
        assert!(!c.restore_machine(2), "no parked copy may remain");
        c.reset();
        assert_eq!(c.len(), 3);
        assert_eq!(c.machine_attr(2, 0), Some(&AttrValue::Int(42)));
    }

    #[test]
    #[should_panic(expected = "placement must fit")]
    fn oversized_placement_panics() {
        let mut c = cluster3();
        c.place(0, 1, 1.5, 0.1, 0);
    }
}
