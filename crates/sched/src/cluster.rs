//! Machine capacity accounting for the scheduler.

use std::collections::HashMap;

use ctlm_agocs::AttrIndex;
use ctlm_data::compaction::AttrRequirement;
use ctlm_trace::{Machine, MachineId, TaskId};

/// A machine's live allocation state.
#[derive(Clone, Debug)]
struct Alloc {
    cpu_used: f64,
    mem_used: f64,
    /// Tasks placed here with their reservations and priority.
    tasks: HashMap<TaskId, (f64, f64, u8)>,
}

/// Free-CPU quantization: capacity buckets of 1/1024 core. Best-fit
/// tie-breaks are defined over `(capacity_bucket(free_cpu), id)`, so the
/// incrementally maintained capacity index and the retained linear
/// reference scan agree bit-for-bit (quantized keys sidestep the
/// float-rounding ties an exact `free − request` comparison can produce).
pub fn capacity_bucket(free_cpu: f64) -> usize {
    (free_cpu.max(0.0) * 1024.0) as usize
}

/// The maintained free-capacity ordering: machines bucketed by quantized
/// free CPU ([`capacity_bucket`]), ids sorted ascending within a bucket,
/// plus an occupancy bitmap so a query can skip empty buckets a word at
/// a time. Best-fit resolves the tightest feasible machine by walking
/// occupied buckets upward from the request size instead of scanning
/// every suitable candidate; updates are O(bucket) with **zero heap
/// allocations** once bucket capacities have warmed (the steady-state
/// scheduling-pass guarantee).
#[derive(Clone, Debug, Default)]
struct CapacityIndex {
    buckets: Vec<Vec<MachineId>>,
    /// One bit per bucket: set when the bucket is non-empty.
    occupied: Vec<u64>,
}

impl CapacityIndex {
    fn ensure(&mut self, bucket: usize) {
        if bucket >= self.buckets.len() {
            self.buckets.resize_with(bucket + 1, Vec::new);
            self.occupied.resize(self.buckets.len().div_ceil(64), 0);
        }
    }

    fn insert(&mut self, bucket: usize, id: MachineId) {
        self.ensure(bucket);
        let b = &mut self.buckets[bucket];
        let pos = b.binary_search(&id).unwrap_err();
        b.insert(pos, id);
        self.occupied[bucket / 64] |= 1u64 << (bucket % 64);
    }

    fn remove(&mut self, bucket: usize, id: MachineId) {
        let b = &mut self.buckets[bucket];
        let pos = b.binary_search(&id).expect("machine indexed in bucket");
        b.remove(pos);
        if b.is_empty() {
            self.occupied[bucket / 64] &= !(1u64 << (bucket % 64));
        }
    }

    /// The first occupied bucket at or above `from`.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= self.buckets.len() {
            return None;
        }
        let mut word = from / 64;
        let mut bits = self.occupied[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= self.occupied.len() {
                return None;
            }
            bits = self.occupied[word];
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.occupied.fill(0);
    }
}

/// Outcome of a [`SchedCluster::tightest_fit`] capacity query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapacityFit {
    /// The feasible machine minimising `(capacity_bucket(free_cpu), id)`.
    Fit(MachineId),
    /// Constraint-suitable machines exist, but none has room right now.
    NoCapacity,
    /// No machine satisfies the constraints at all.
    Infeasible,
}

/// The scheduler's view of the cluster: trace machines plus usage. An
/// inverted [`AttrIndex`] mirrors the fleet so per-task suitability
/// queries in the placement loop scale with the candidate set instead of
/// the cluster size, and a bucketed capacity index keeps machines ordered by
/// free capacity so best-fit resolves without scanning every suitable
/// candidate (the Fig. 3 simulation at 100k+ machines).
#[derive(Clone, Debug, Default)]
pub struct SchedCluster {
    machines: HashMap<MachineId, (Machine, Alloc)>,
    index: AttrIndex,
    cap: CapacityIndex,
    /// Machines drained by churn — kept so [`SchedCluster::reset`] can
    /// restore the fleet without a deep copy of the whole cluster.
    offline: HashMap<MachineId, Machine>,
    /// Fleet-wide CPU capacity / usage, maintained incrementally so
    /// [`SchedCluster::cpu_utilisation`] is O(1) **and deterministic**:
    /// folding per-machine floats over the `HashMap` would sum in
    /// per-instance random iteration order, and float addition is not
    /// associative — near-tied load comparisons (the least-loaded
    /// spillover router) would flip between otherwise identical runs.
    cpu_capacity_total: f64,
    cpu_used_total: f64,
}

impl SchedCluster {
    /// Empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a machine list.
    pub fn from_machines(machines: impl IntoIterator<Item = Machine>) -> Self {
        let mut c = Self::new();
        for m in machines {
            c.add_machine(m);
        }
        c
    }

    /// Adds a machine.
    pub fn add_machine(&mut self, m: Machine) {
        // A re-add under the same id supersedes any parked copy — without
        // this, a later restore/reset would overwrite the live machine
        // (and its allocation accounting) with the stale one.
        self.offline.remove(&m.id);
        if let Some((old, alloc)) = self.machines.get(&m.id) {
            self.index.remove_machine(m.id);
            self.cap
                .remove(capacity_bucket(old.cpu - alloc.cpu_used), m.id);
            self.cpu_capacity_total -= old.cpu;
            self.cpu_used_total -= alloc.cpu_used;
        }
        self.index.add_machine(&m);
        self.cap.insert(capacity_bucket(m.cpu), m.id);
        self.cpu_capacity_total += m.cpu;
        self.machines.insert(
            m.id,
            (
                m,
                Alloc {
                    cpu_used: 0.0,
                    mem_used: 0.0,
                    tasks: HashMap::new(),
                },
            ),
        );
    }

    /// Takes a machine offline (churn / failure). The machine's running
    /// tasks are returned as `(task, cpu, memory, priority)` so the
    /// engine can requeue them; the machine itself is parked for
    /// [`SchedCluster::reset`] to restore. Returns `None` for unknown
    /// machines.
    pub fn remove_machine(&mut self, id: MachineId) -> Option<Vec<(TaskId, f64, f64, u8)>> {
        let (m, alloc) = self.machines.remove(&id)?;
        self.index.remove_machine(id);
        self.cap.remove(capacity_bucket(m.cpu - alloc.cpu_used), id);
        self.cpu_capacity_total -= m.cpu;
        self.cpu_used_total -= alloc.cpu_used;
        self.offline.insert(id, m);
        let mut evicted: Vec<(TaskId, f64, f64, u8)> = alloc
            .tasks
            .into_iter()
            .map(|(t, (c, mem, p))| (t, c, mem, p))
            .collect();
        evicted.sort_by_key(|&(t, ..)| t);
        Some(evicted)
    }

    /// Takes a *parked* (drained) machine out of the cluster entirely —
    /// the decommission half of the autoscaler's scale-down path: after
    /// [`SchedCluster::remove_machine`] requeued its tasks, the owner
    /// takes the machine value and decides whether it re-enters as warm
    /// standby or is gone for good. A taken machine is no longer
    /// restored by [`SchedCluster::reset`]. Returns `None` when the
    /// machine is not parked.
    pub fn take_offline(&mut self, id: MachineId) -> Option<Machine> {
        self.offline.remove(&id)
    }

    /// Online machine ids ordered by free CPU, emptiest first
    /// (descending capacity bucket; ascending id within a bucket) —
    /// answered from the maintained capacity ordering. The autoscaler's
    /// scale-down victim order: draining the emptiest machine requeues
    /// the fewest tasks, deterministically.
    pub fn machines_by_free_cpu_desc(&self, out: &mut Vec<MachineId>) {
        out.clear();
        for b in self.cap.buckets.iter().rev() {
            out.extend_from_slice(b);
        }
    }

    /// Brings a previously drained machine back online (with no load).
    /// Returns true if it was offline.
    pub fn restore_machine(&mut self, id: MachineId) -> bool {
        match self.offline.remove(&id) {
            Some(m) => {
                self.add_machine(m);
                true
            }
            None => false,
        }
    }

    /// Updates one machine attribute in place (None clears it), keeping
    /// the inverted index consistent. Machines currently drained by
    /// churn receive the update on their parked copy, so a rollout that
    /// lands mid-outage is present when they rejoin. Returns true when
    /// the machine is known (online or parked).
    pub fn update_attr(
        &mut self,
        id: MachineId,
        attr: ctlm_trace::AttrId,
        value: Option<ctlm_trace::AttrValue>,
    ) -> bool {
        let m = if let Some((m, _)) = self.machines.get_mut(&id) {
            self.index.update_attr(id, attr, value.as_ref());
            m
        } else if let Some(m) = self.offline.get_mut(&id) {
            m // parked: no index entry to maintain
        } else {
            return false;
        };
        match value {
            Some(v) => {
                m.set_attr(attr, v);
            }
            None => {
                m.remove_attr(attr);
            }
        }
        true
    }

    /// Returns the cluster to its pristine state: every reservation is
    /// dropped and every churned machine rejoins. This is the cheap
    /// alternative to deep-copying the cluster per policy run — O(live
    /// tasks + churned machines) instead of O(fleet).
    pub fn reset(&mut self) {
        self.cap.clear();
        self.cpu_used_total = 0.0;
        for (m, a) in self.machines.values_mut() {
            a.cpu_used = 0.0;
            a.mem_used = 0.0;
            a.tasks.clear();
            self.cap.insert(capacity_bucket(m.cpu), m.id);
        }
        if !self.offline.is_empty() {
            let offline = std::mem::take(&mut self.offline);
            for (_, m) in offline {
                self.add_machine(m);
            }
        }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Free CPU on a machine.
    pub fn free_cpu(&self, id: MachineId) -> f64 {
        let (m, a) = &self.machines[&id];
        m.cpu - a.cpu_used
    }

    /// Free memory on a machine.
    pub fn free_mem(&self, id: MachineId) -> f64 {
        let (m, a) = &self.machines[&id];
        m.memory - a.mem_used
    }

    /// Machines satisfying the requirements (constraint feasibility only,
    /// not capacity), in ascending id order — answered by the inverted
    /// index.
    pub fn suitable(&self, reqs: &[AttrRequirement]) -> Vec<MachineId> {
        self.index.matching(reqs)
    }

    /// [`SchedCluster::suitable`] into a caller-provided buffer — the
    /// placement loop's allocation-free form.
    pub fn suitable_into(&self, reqs: &[AttrRequirement], out: &mut Vec<MachineId>) {
        self.index.matching_into(reqs, out);
    }

    /// Streams every suitable machine to `f` without materialising a
    /// candidate list (visit order unspecified — callers needing an
    /// order track their own min key). `f` returns false to stop early;
    /// the call returns false when stopped.
    pub fn suitable_visit(
        &self,
        reqs: &[AttrRequirement],
        f: impl FnMut(MachineId) -> bool,
    ) -> bool {
        self.index.matching_visit(reqs, f)
    }

    /// True when the machine can hold the request right now.
    pub fn fits(&self, id: MachineId, cpu: f64, mem: f64) -> bool {
        self.free_cpu(id) >= cpu && self.free_mem(id) >= mem
    }

    /// Candidate-driven queries win when the constraint set is selective
    /// relative to the fleet; beyond this share of the fleet the
    /// capacity-ordered walk is cheaper.
    const CANDIDATE_DRIVEN_SHARE: usize = 4;

    /// The feasible machine minimising `(capacity_bucket(free_cpu), id)`
    /// — tightest-fit placement answered from the maintained capacity
    /// ordering, without scanning every suitable candidate and without
    /// allocating.
    ///
    /// Two strategies, picked by the attribute index's selectivity
    /// estimate: selective constraint sets stream their (few) suitable
    /// candidates and track the min capacity key; loose ones walk the
    /// capacity order upward from the request size and stop at the first
    /// machine that fits and matches. Both compute the same argmin, so
    /// the choice never changes the answer (property-tested against the
    /// retained linear scan in `tests/placement_equivalence.rs`).
    pub fn tightest_fit(&self, reqs: &[AttrRequirement], cpu: f64, mem: f64) -> CapacityFit {
        if self.machines.is_empty() {
            return CapacityFit::Infeasible;
        }
        if !reqs.is_empty() {
            let hint = self.index.selectivity_hint(reqs);
            if hint * Self::CANDIDATE_DRIVEN_SHARE <= self.machines.len() {
                return self.tightest_fit_candidates(reqs, cpu, mem);
            }
        }
        // Capacity-driven: first occupied bucket at or above the request
        // holds the tightest candidates; ids ascend within a bucket, so
        // the first hit is the argmin.
        let mut from = capacity_bucket(cpu);
        while let Some(b) = self.cap.next_occupied(from) {
            for &id in &self.cap.buckets[b] {
                if self.fits(id, cpu, mem) && self.index.matches(id, reqs) {
                    return CapacityFit::Fit(id);
                }
            }
            from = b + 1;
        }
        if reqs.is_empty() || self.index.matches_any(reqs) {
            CapacityFit::NoCapacity
        } else {
            CapacityFit::Infeasible
        }
    }

    /// The attribute index's candidate-count estimate for a constraint
    /// set — the upper bound on suitable machines the placer's
    /// candidate-driven arm would stream (fleet size for unconstrained
    /// tasks). Cheap and deterministic; the flight recorder stamps it
    /// into placement decision records.
    pub fn candidate_estimate(&self, reqs: &[AttrRequirement]) -> usize {
        if reqs.is_empty() {
            self.machines.len()
        } else {
            self.index.selectivity_hint(reqs).min(self.machines.len())
        }
    }

    /// Which [`SchedCluster::tightest_fit`] arm the selectivity estimate
    /// picks for this constraint set — the plan tag recorded in
    /// placement decision audits.
    pub fn plan_hint(&self, reqs: &[AttrRequirement]) -> &'static str {
        if !reqs.is_empty()
            && self.index.selectivity_hint(reqs) * Self::CANDIDATE_DRIVEN_SHARE
                <= self.machines.len()
        {
            "candidate_driven"
        } else {
            "capacity_driven"
        }
    }

    /// Candidate-driven arm of [`SchedCluster::tightest_fit`].
    fn tightest_fit_candidates(&self, reqs: &[AttrRequirement], cpu: f64, mem: f64) -> CapacityFit {
        let mut best: Option<(usize, MachineId)> = None;
        let mut suitable_any = false;
        self.index.matching_visit(reqs, |id| {
            suitable_any = true;
            if self.fits(id, cpu, mem) {
                let key = (capacity_bucket(self.free_cpu(id)), id);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            true
        });
        match best {
            Some((_, id)) => CapacityFit::Fit(id),
            None if suitable_any => CapacityFit::NoCapacity,
            None => CapacityFit::Infeasible,
        }
    }

    /// Reserves capacity for a task.
    ///
    /// # Panics
    /// Panics if the reservation does not fit (callers check `fits`).
    pub fn place(&mut self, id: MachineId, task: TaskId, cpu: f64, mem: f64, priority: u8) {
        assert!(self.fits(id, cpu, mem), "placement must fit");
        let (m, a) = self.machines.get_mut(&id).expect("machine exists");
        let old = capacity_bucket(m.cpu - a.cpu_used);
        a.cpu_used += cpu;
        a.mem_used += mem;
        let new = capacity_bucket(m.cpu - a.cpu_used);
        a.tasks.insert(task, (cpu, mem, priority));
        if old != new {
            self.cap.remove(old, id);
            self.cap.insert(new, id);
        }
        self.cpu_used_total += cpu;
    }

    /// Releases a task's reservation. Returns true if it was present.
    pub fn release(&mut self, id: MachineId, task: TaskId) -> bool {
        if let Some((m, a)) = self.machines.get_mut(&id) {
            if let Some((cpu, mem, _)) = a.tasks.remove(&task) {
                let old = capacity_bucket(m.cpu - a.cpu_used);
                a.cpu_used -= cpu;
                a.mem_used -= mem;
                let new = capacity_bucket(m.cpu - a.cpu_used);
                if old != new {
                    self.cap.remove(old, id);
                    self.cap.insert(new, id);
                }
                self.cpu_used_total -= cpu;
                return true;
            }
        }
        false
    }

    /// Tasks on a machine with priority strictly below `priority`, sorted
    /// lowest-priority first — the Kubernetes preemption candidate order.
    pub fn preemption_candidates(
        &self,
        id: MachineId,
        priority: u8,
    ) -> Vec<(TaskId, f64, f64, u8)> {
        let mut out = Vec::new();
        self.preemption_candidates_into(id, priority, &mut out);
        out
    }

    /// [`SchedCluster::preemption_candidates`] into a caller-provided
    /// buffer (the preemptive placer's scratch-threaded form).
    pub fn preemption_candidates_into(
        &self,
        id: MachineId,
        priority: u8,
        out: &mut Vec<(TaskId, f64, f64, u8)>,
    ) {
        out.clear();
        let (_, a) = &self.machines[&id];
        out.extend(
            a.tasks
                .iter()
                .filter(|(_, (_, _, p))| *p < priority)
                .map(|(&t, &(c, m, p))| (t, c, m, p)),
        );
        out.sort_by_key(|&(t, _, _, p)| (p, t));
    }

    /// One machine's attribute value (soft-affinity scoring needs direct
    /// attribute access).
    pub fn machine_attr(
        &self,
        id: MachineId,
        attr: ctlm_trace::AttrId,
    ) -> Option<&ctlm_trace::AttrValue> {
        self.machines.get(&id).and_then(|(m, _)| m.attr(attr))
    }

    /// Total CPU utilisation across the cluster (0..1) — answered from
    /// the incrementally maintained fleet totals: O(1), and a pure
    /// function of the operation history (a `HashMap` fold would sum in
    /// per-instance random order, whose float rounding is not).
    pub fn cpu_utilisation(&self) -> f64 {
        if self.cpu_capacity_total == 0.0 {
            0.0
        } else {
            (self.cpu_used_total / self.cpu_capacity_total).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_trace::AttrValue;

    fn cluster3() -> SchedCluster {
        let mut ms = Vec::new();
        for i in 0..3u64 {
            let mut m = Machine::new(i, 1.0, 1.0);
            m.set_attr(0, AttrValue::Int(i as i64));
            ms.push(m);
        }
        SchedCluster::from_machines(ms)
    }

    #[test]
    fn place_and_release_roundtrip() {
        let mut c = cluster3();
        assert!(c.fits(0, 0.6, 0.6));
        c.place(0, 100, 0.6, 0.6, 5);
        assert!(!c.fits(0, 0.6, 0.6));
        assert!((c.free_cpu(0) - 0.4).abs() < 1e-9);
        assert!(c.release(0, 100));
        assert!(!c.release(0, 100));
        assert!(c.fits(0, 0.6, 0.6));
    }

    #[test]
    fn suitable_filters_by_requirements() {
        use ctlm_data::compaction::collapse;
        use ctlm_trace::{ConstraintOp as Op, TaskConstraint};
        let c = cluster3();
        let reqs = collapse(&[TaskConstraint::new(0, Op::LessThan(2))]).unwrap();
        assert_eq!(c.suitable(&reqs), vec![0, 1]);
    }

    #[test]
    fn preemption_candidates_sorted_by_priority() {
        let mut c = cluster3();
        c.place(1, 10, 0.2, 0.2, 3);
        c.place(1, 11, 0.2, 0.2, 1);
        c.place(1, 12, 0.2, 0.2, 9);
        let cands = c.preemption_candidates(1, 5);
        assert_eq!(
            cands.iter().map(|&(t, ..)| t).collect::<Vec<_>>(),
            vec![11, 10]
        );
    }

    #[test]
    fn utilisation_tracks_placements() {
        let mut c = cluster3();
        assert_eq!(c.cpu_utilisation(), 0.0);
        c.place(0, 1, 1.0, 0.5, 0);
        assert!((c.cpu_utilisation() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn parked_machines_receive_attr_updates() {
        let mut c = cluster3();
        assert!(c.remove_machine(1).is_some());
        // A rollout landing mid-outage must stick.
        assert!(c.update_attr(1, 0, Some(AttrValue::Int(99))));
        assert!(c.restore_machine(1));
        assert_eq!(c.machine_attr(1, 0), Some(&AttrValue::Int(99)));
        use ctlm_data::compaction::collapse;
        use ctlm_trace::{ConstraintOp as Op, TaskConstraint};
        let reqs =
            collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(99))))]).unwrap();
        assert_eq!(c.suitable(&reqs), vec![1]);
    }

    #[test]
    fn re_add_supersedes_parked_copy() {
        let mut c = cluster3();
        c.remove_machine(2);
        // The machine rejoins via a fresh add (trace MachineAdd), takes
        // load — a later reset must not clobber it with the stale copy.
        let mut m = Machine::new(2, 1.0, 1.0);
        m.set_attr(0, AttrValue::Int(42));
        c.add_machine(m);
        c.place(2, 7, 0.5, 0.5, 1);
        assert!(!c.restore_machine(2), "no parked copy may remain");
        c.reset();
        assert_eq!(c.len(), 3);
        assert_eq!(c.machine_attr(2, 0), Some(&AttrValue::Int(42)));
    }

    #[test]
    #[should_panic(expected = "placement must fit")]
    fn oversized_placement_panics() {
        let mut c = cluster3();
        c.place(0, 1, 1.5, 0.1, 0);
    }

    #[test]
    fn tightest_fit_tracks_load_incrementally() {
        let mut c = cluster3();
        // All machines empty: lowest id wins the full-capacity bucket.
        assert_eq!(c.tightest_fit(&[], 0.2, 0.2), CapacityFit::Fit(0));
        // Load machine 2 to the tightest still-feasible level.
        c.place(2, 10, 0.7, 0.1, 1);
        assert_eq!(c.tightest_fit(&[], 0.2, 0.2), CapacityFit::Fit(2));
        // Memory still gates: machine 2 has CPU room but no memory room.
        c.place(2, 11, 0.0, 0.85, 1);
        assert_eq!(c.tightest_fit(&[], 0.2, 0.2), CapacityFit::Fit(0));
        // Release restores the ordering.
        assert!(c.release(2, 11));
        assert_eq!(c.tightest_fit(&[], 0.2, 0.2), CapacityFit::Fit(2));
    }

    #[test]
    fn tightest_fit_distinguishes_infeasible_from_no_capacity() {
        use ctlm_data::compaction::collapse;
        use ctlm_trace::{ConstraintOp as Op, TaskConstraint};
        let mut c = cluster3();
        let pin = collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(1))))]).unwrap();
        assert_eq!(c.tightest_fit(&pin, 0.2, 0.2), CapacityFit::Fit(1));
        c.place(1, 10, 0.95, 0.95, 1);
        assert_eq!(c.tightest_fit(&pin, 0.2, 0.2), CapacityFit::NoCapacity);
        let nowhere =
            collapse(&[TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(99))))]).unwrap();
        assert_eq!(c.tightest_fit(&nowhere, 0.2, 0.2), CapacityFit::Infeasible);
        for i in 0..3u64 {
            if i != 1 {
                c.place(i, 100 + i, 0.95, 0.95, 1);
            }
        }
        assert_eq!(c.tightest_fit(&[], 0.2, 0.2), CapacityFit::NoCapacity);
    }

    #[test]
    fn capacity_index_survives_churn_and_reset() {
        let mut c = cluster3();
        c.place(0, 10, 0.5, 0.5, 1);
        c.remove_machine(0);
        assert_eq!(c.tightest_fit(&[], 0.9, 0.9), CapacityFit::Fit(1));
        c.restore_machine(0);
        // Restored machines rejoin empty, back in the full bucket.
        assert_eq!(c.tightest_fit(&[], 0.2, 0.2), CapacityFit::Fit(0));
        c.place(1, 11, 0.6, 0.6, 1);
        c.reset();
        assert_eq!(c.tightest_fit(&[], 0.2, 0.2), CapacityFit::Fit(0));
        assert_eq!(c.cpu_utilisation(), 0.0);
    }

    #[test]
    fn take_offline_removes_the_parked_copy_for_good() {
        let mut c = cluster3();
        c.remove_machine(1);
        let m = c.take_offline(1).expect("parked machine taken");
        assert_eq!(m.id, 1);
        assert!(!c.restore_machine(1), "taken machines cannot be restored");
        c.reset();
        assert_eq!(c.len(), 2, "reset must not resurrect a taken machine");
        assert!(
            c.take_offline(0).is_none(),
            "online machines are not parked"
        );
    }

    #[test]
    fn machines_by_free_cpu_desc_orders_emptiest_first() {
        let mut c = cluster3();
        c.place(0, 10, 0.5, 0.5, 1);
        c.place(2, 11, 0.2, 0.2, 1);
        let mut out = Vec::new();
        c.machines_by_free_cpu_desc(&mut out);
        assert_eq!(out, vec![1, 2, 0], "emptiest first, id-ordered in ties");
        assert!(c.release(0, 10));
        c.machines_by_free_cpu_desc(&mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn suitable_visit_streams_the_materialised_set() {
        use ctlm_data::compaction::collapse;
        use ctlm_trace::{ConstraintOp as Op, TaskConstraint};
        let c = cluster3();
        let reqs = collapse(&[TaskConstraint::new(0, Op::LessThan(2))]).unwrap();
        let mut seen = Vec::new();
        assert!(c.suitable_visit(&reqs, |id| {
            seen.push(id);
            true
        }));
        seen.sort_unstable();
        assert_eq!(seen, c.suitable(&reqs));
    }
}
