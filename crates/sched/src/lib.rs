//! # ctlm-sched — enhanced cluster job scheduling (paper Fig. 3)
//!
//! The deployment architecture the paper proposes around the CTLM model:
//!
//! ```text
//!            ┌────────────────────┐   group ≤ 0   ┌────────────────────────┐
//! tasks ───▶ │  Task CO Analyzer  │ ────────────▶ │ High-Priority Scheduler │──┐
//!            │  (ctlm-core)       │               └────────────────────────┘  │
//!            └─────────┬──────────┘                                           ▼
//!                      │ otherwise  ┌────────────────────────┐           ┌─────────┐
//!                      └──────────▶ │ Main Cluster Scheduler │ ────────▶ │ cluster │
//!                                   └────────────────────────┘           └─────────┘
//! ```
//!
//! * [`cluster`] — machines with capacity accounting;
//! * [`queue`] — the pending job queue(s);
//! * [`placement`] — best-fit placement and the Kubernetes-style
//!   preemption fallback;
//! * [`gang`] — gang grouping (“tasks in the same job are grouped by
//!   their CO and scheduled together”);
//! * [`engine`] — the discrete-event simulation that measures scheduling
//!   latency per suitable-node group, with and without the analyzer;
//! * [`updater`] — the background model-update thread (“updating ML model
//!   runs in parallel and won't block or slow down the main cluster
//!   scheduler”);
//! * [`latency`] — latency statistics.

pub mod cluster;
pub mod engine;
pub mod gang;
pub mod latency;
pub mod placement;
pub mod queue;
pub mod updater;

pub use cluster::SchedCluster;
pub use engine::{Policy, SimConfig, SimResult, Simulator};
pub use latency::LatencyStats;
pub use queue::{PendingQueue, PendingTask};
