//! # ctlm-sched — enhanced cluster job scheduling (paper Fig. 3)
//!
//! The deployment architecture the paper proposes around the CTLM model,
//! hosted on the `ctlm-sim` discrete-event kernel:
//!
//! ```text
//!            ┌────────────────────┐   group ≤ 0   ┌────────────────────────┐
//! tasks ───▶ │  Task CO Analyzer  │ ────────────▶ │ High-Priority Scheduler │──┐
//!            │  (ctlm-core)       │               └────────────────────────┘  │
//!            └─────────┬──────────┘                                           ▼
//!                      │ otherwise  ┌────────────────────────┐           ┌─────────┐
//!                      └──────────▶ │ Main Cluster Scheduler │ ────────▶ │ cluster │
//!                                   └────────────────────────┘           └─────────┘
//! ```
//!
//! ## The component model
//!
//! The simulation is a set of `ctlm_sim::Component`s on one deterministic
//! timeline. [`engine::ArrivalSource`] admits tasks from a *borrowed*
//! arrival list, [`engine::CycleTimer`] fires the scheduler pass, and
//! [`engine::EngineComponent`] owns the cluster, the two queues and the
//! result. Scenario components ([`scenario`]) join the same timeline:
//! machine churn, all-or-nothing gang arrivals, staged attribute
//! rollouts, and (in examples) live trace feeds that drive retraining
//! mid-run.
//!
//! Policies are open: the [`scheduler::Scheduler`] trait routes each
//! arriving task to the high-priority or main queue
//! ([`scheduler::MainOnly`], [`scheduler::Enhanced`],
//! [`scheduler::OracleEnhanced`], and the hot-swapping
//! [`scheduler::LiveRegistry`]); placement is pluggable through the
//! [`placement::Placer`] trait instead of hardwired best-fit.
//!
//! ## Modules
//!
//! * [`cluster`] — machines with capacity accounting, churn
//!   (offline/restore) and the cheap [`cluster::SchedCluster::reset`]
//!   path for A/B policy runs;
//! * [`queue`] — the pending job queue(s);
//! * [`scheduler`] — the open routing-policy trait and its impls;
//! * [`placement`] — placement strategies: best-fit, first-fit, soft
//!   affinity, and the Kubernetes-style preemption fallback;
//! * [`gang`] — gang grouping (“tasks in the same job are grouped by
//!   their CO and scheduled together”) and atomic gang placement;
//! * [`engine`] — the kernel-hosted simulation measuring scheduling
//!   latency per suitable-node group;
//! * [`stream`] — pull-based arrival streaming: chunked task decode
//!   ([`stream::ArrivalStream`]) feeding the engine's task slab without
//!   materialising the whole workload;
//! * [`scenario`] — churn, gang and rollout event sources;
//! * [`faults`] — the fault plane: seeded machine crashes (abrupt, task
//!   losing — distinct from [`scenario`]'s graceful drains, which
//!   requeue), correlated failure-domain outages with MTTR recovery,
//!   degraded-dependency injection, and the retry/backoff policies that
//!   decide between rescheduling and dead-lettering lost work;
//! * [`lifecycle`] — the machine-ownership guard coordinating churn
//!   with the `ctlm-autoscale` control plane;
//! * [`updater`] — the background model-update thread (“updating ML model
//!   runs in parallel and won't block or slow down the main cluster
//!   scheduler”), feeding [`scheduler::LiveRegistry`] mid-run;
//! * [`latency`] — latency statistics.

mod arena;
pub mod cluster;
pub mod engine;
pub mod faults;
pub mod gang;
pub mod latency;
pub mod lifecycle;
pub mod placement;
pub mod queue;
pub mod scenario;
pub mod scheduler;
pub mod stream;
pub mod updater;

pub use cluster::{CapacityFit, SchedCluster};
pub use engine::{CellHandle, EngineStats, SchedEvent, SimConfig, SimResult, Simulator};
pub use faults::{
    ExponentialBackoff, FaultAction, FaultPlan, FaultPlane, FaultStats, FixedRetry, RetryPolicy,
};
pub use latency::LatencyStats;
pub use lifecycle::{LifecycleOwner, OwnershipGuard};
pub use placement::{BestFit, PlaceCtx, Placer, PreemptiveBestFit};
pub use queue::{PendingQueue, PendingTask};
pub use scheduler::{Enhanced, LiveRegistry, MainOnly, OracleEnhanced, Scheduler};
pub use stream::{ArrivalStream, SliceStream, StreamingSource};
