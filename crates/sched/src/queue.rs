//! Pending job queues.

use std::collections::VecDeque;

use ctlm_data::compaction::AttrRequirement;
use ctlm_trace::{CollectionId, Micros, TaskId};

/// A task waiting to be scheduled.
#[derive(Clone, Debug)]
pub struct PendingTask {
    /// Task id.
    pub id: TaskId,
    /// Owning collection (gang identity).
    pub collection: CollectionId,
    /// CPU request.
    pub cpu: f64,
    /// Memory request.
    pub memory: f64,
    /// Priority band.
    pub priority: u8,
    /// Collapsed constraints (empty = unconstrained).
    pub reqs: Vec<AttrRequirement>,
    /// Arrival time (latency measurement anchor).
    pub arrival: Micros,
    /// Ground-truth suitable-node group (for reporting only — the
    /// schedulers never read it).
    pub truth_group: u8,
}

/// FIFO pending queue with requeue-at-back semantics.
#[derive(Clone, Debug, Default)]
pub struct PendingQueue {
    inner: VecDeque<PendingTask>,
}

impl PendingQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Enqueues a newly arrived task.
    pub fn push(&mut self, t: PendingTask) {
        self.inner.push_back(t);
    }

    /// Pops the head task for a placement attempt.
    pub fn pop(&mut self) -> Option<PendingTask> {
        self.inner.pop_front()
    }

    /// Returns a task to the back of the queue after a failed attempt.
    pub fn requeue(&mut self, t: PendingTask) {
        self.inner.push_back(t);
    }

    /// Peeks at the head.
    pub fn peek(&self) -> Option<&PendingTask> {
        self.inner.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: TaskId) -> PendingTask {
        PendingTask {
            id,
            collection: 1,
            cpu: 0.1,
            memory: 0.1,
            priority: 0,
            reqs: vec![],
            arrival: 0,
            truth_group: 25,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = PendingQueue::new();
        q.push(task(1));
        q.push(task(2));
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.peek().unwrap().id, 2);
    }

    #[test]
    fn requeue_goes_to_back() {
        let mut q = PendingQueue::new();
        q.push(task(1));
        q.push(task(2));
        let t = q.pop().unwrap();
        q.requeue(t);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 1);
        assert!(q.is_empty());
    }
}
