//! Fault plane — seeded failure injection with policy-driven recovery.
//!
//! Everything the scenario layer could express before this module was
//! *graceful*: drains requeue their tasks, spillover always reaches a
//! healthy sibling, model hot-swaps always succeed. The fault plane adds
//! the abrupt versions as first-class, deterministic timeline events:
//!
//! * **Machine crashes** ([`FaultAction::Crash`]) — the machine leaves
//!   the capacity index atomically and its *running tasks are lost*, in
//!   contrast to [`SchedEvent::MachineFail`](crate::engine::SchedEvent)
//!   whose drain requeues them. Crashes are injected per failure domain:
//!   [`FaultPlan::zone_crashes`] partitions the fleet into zones and
//!   takes whole zones down together, with seeded MTTR-based recovery.
//! * **Degraded dependencies** ([`FaultAction::DegradeRegistry`]) — a
//!   stale or failed model swap poisons the shared
//!   [`ModelRegistry`](ctlm_core::ModelRegistry); `live_registry`
//!   schedulers observe the version bump, drop their cached analyzer and
//!   fall back to baseline routing until a healthy version appears.
//! * **Link outages** between cells are spec-level windows enforced at
//!   the epoch barrier by the lab runner (spill requests time out and
//!   fall back to their home cell) — they need no kernel component, so
//!   this module only defines the taxonomy.
//!
//! Recovery is policy-driven: every lost task is charged against a
//! [`RetryPolicy`] budget and either rescheduled after a (possibly
//! jittered, but always seeded) backoff delay or dead-lettered as
//! `failed_permanently` — never silently hung. All randomness flows
//! through seeded [`StdRng`]s, so a fault schedule is a pure function of
//! the spec plus the seed and reports stay byte-identical at any
//! `execution.threads`.
//!
//! ## Crash vs. drain
//!
//! | | drain ([`MachineFail`](crate::engine::SchedEvent::MachineFail)) | crash ([`MachineCrash`](crate::engine::SchedEvent::MachineCrash)) |
//! |---|---|---|
//! | running tasks | requeued immediately (`churn_rescheduled`) | lost; retried after backoff or dead-lettered |
//! | lifecycle claim | cooperative [`try_claim`](OwnershipGuard::try_claim) — skipped when contended | forcible [`override_claim`](OwnershipGuard::override_claim) — displaces in-flight drain/provision claims |
//! | recovery | paired restore after the outage | seeded MTTR per failure domain |
//! | work accounting | no work lost | `lost_work_us` accumulates the severed run time |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ctlm_sim::{CompId, Component, Ctx, Event};
use ctlm_telemetry::{Histogram, SpanLog};
use ctlm_trace::{MachineId, Micros};

use crate::engine::{SchedEvent, PRIO_STATE};
use crate::lifecycle::{LifecycleOwner, OwnershipGuard};

/// Seed mix for fault plans, keeping the fault RNG stream disjoint from
/// churn (`^ 0xC4012`) and the engine (`^ 0x5C4E_D111`).
const PLAN_SEED_MIX: u64 = 0xFA17_70B5;

/// Decides when (and whether) a lost task is rescheduled.
///
/// `attempt` is 1-based: the first loss of a task consults the policy
/// with `attempt == 1`. `None` means the budget is exhausted and the
/// task dead-letters (`failed_permanently`). Implementations draw any
/// jitter from the *caller's* seeded RNG so retry schedules stay
/// deterministic.
pub trait RetryPolicy {
    /// Backoff delay before retry `attempt`, or `None` to dead-letter.
    fn delay(&self, attempt: u32, rng: &mut StdRng) -> Option<Micros>;

    /// Registry name, surfaced in docs and reports.
    fn name(&self) -> &'static str;
}

/// Retries after a fixed delay, up to `budget` attempts.
#[derive(Clone, Copy, Debug)]
pub struct FixedRetry {
    /// Delay before every retry.
    pub delay: Micros,
    /// Maximum retry attempts before dead-lettering.
    pub budget: u32,
}

impl RetryPolicy for FixedRetry {
    fn delay(&self, attempt: u32, _rng: &mut StdRng) -> Option<Micros> {
        (attempt <= self.budget).then_some(self.delay.max(1))
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Exponential backoff with seeded jitter: attempt `k` waits
/// `min(cap, base · 2^(k−1))`, scaled by a uniform factor in
/// `[1 − jitter, 1 + jitter]`, up to `budget` attempts.
#[derive(Clone, Copy, Debug)]
pub struct ExponentialBackoff {
    /// First-attempt delay.
    pub base: Micros,
    /// Upper bound on the un-jittered delay.
    pub cap: Micros,
    /// Maximum retry attempts before dead-lettering.
    pub budget: u32,
    /// Jitter half-width as a fraction of the delay, clamped to `[0, 1)`.
    pub jitter: f64,
}

impl RetryPolicy for ExponentialBackoff {
    fn delay(&self, attempt: u32, rng: &mut StdRng) -> Option<Micros> {
        if attempt > self.budget {
            return None;
        }
        let shift = (attempt - 1).min(62);
        let raw = self.base.saturating_mul(1u64 << shift).min(self.cap.max(1));
        let jitter = self.jitter.clamp(0.0, 0.999);
        let factor = if jitter > 0.0 {
            1.0 - jitter + rng.gen_range(0.0..(2.0 * jitter))
        } else {
            1.0
        };
        Some(((raw as f64 * factor) as Micros).max(1))
    }

    fn name(&self) -> &'static str {
        "exponential"
    }
}

/// One fault event on the timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// A machine crashes: capacity leaves atomically, running tasks are
    /// lost (retry/dead-letter, not requeue).
    Crash(MachineId),
    /// A crashed machine comes back (empty) after its MTTR elapses.
    Recover(MachineId),
    /// The shared model registry degrades: readers fall back to baseline
    /// routing until it heals or a fresh model is installed.
    DegradeRegistry,
    /// The registry's degradation clears.
    HealRegistry,
}

/// A deterministic fault schedule: `(time, action)` pairs sorted by
/// time (same-time order preserved).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The schedule, sorted by time.
    pub events: Vec<(Micros, FaultAction)>,
}

impl FaultPlan {
    /// A plan from explicit pairs (sorted internally, stable).
    pub fn new(mut events: Vec<(Micros, FaultAction)>) -> Self {
        events.sort_by_key(|&(t, _)| t);
        Self { events }
    }

    /// Seeded correlated crashes: the fleet is partitioned into `zones`
    /// contiguous failure domains (declaration order, like rollout
    /// stages); each of `crashes` events picks a zone uniformly, crashes
    /// *every* machine in it at a time uniform in `window`, and recovers
    /// the whole zone after an exponentially distributed outage with
    /// mean `mttr`. Overlapping outages of one machine nest: it stays
    /// down until its last outstanding recovery.
    pub fn zone_crashes(
        seed: u64,
        fleet: &[MachineId],
        zones: usize,
        crashes: usize,
        window: (Micros, Micros),
        mttr: Micros,
    ) -> Self {
        if fleet.is_empty() || crashes == 0 {
            return Self::default();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ PLAN_SEED_MIX);
        let zones = zones.clamp(1, fleet.len());
        let chunk = fleet.len().div_ceil(zones);
        let domains: Vec<&[MachineId]> = fleet.chunks(chunk.max(1)).collect();
        let span = window.1.saturating_sub(window.0).max(1);
        let mut events = Vec::with_capacity(crashes * 2 * chunk);
        for _ in 0..crashes {
            let zone = domains[rng.gen_range(0..domains.len())];
            let t = window.0 + rng.gen_range(0..span);
            let u: f64 = rng.gen_range(1e-9..1.0);
            let outage = (((-u.ln()) * mttr as f64) as Micros).max(1);
            for &m in zone {
                events.push((t, FaultAction::Crash(m)));
                events.push((t + outage, FaultAction::Recover(m)));
            }
        }
        Self::new(events)
    }

    /// Adds a registry-degradation window `[start, start + duration)` to
    /// the plan.
    pub fn and_registry_outage(self, start: Micros, duration: Micros) -> Self {
        let mut events = self.events;
        events.push((start, FaultAction::DegradeRegistry));
        events.push((
            start.saturating_add(duration.max(1)),
            FaultAction::HealRegistry,
        ));
        Self::new(events)
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total machine-downtime (machine·µs) the plan implies within
    /// `[0, horizon]` — nested outages of one machine count once, and
    /// machines still down at the horizon accrue up to it. This is the
    /// per-cell unavailability a report quotes without replaying the run.
    pub fn downtime_us(&self, horizon: Micros) -> u64 {
        let mut down: HashMap<MachineId, (Micros, u32)> = HashMap::new();
        let mut total = 0u64;
        for &(t, ref action) in &self.events {
            match action {
                FaultAction::Crash(id) => {
                    let entry = down.entry(*id).or_insert((t, 0));
                    entry.1 += 1;
                }
                FaultAction::Recover(id) => {
                    if let Some(entry) = down.get_mut(id) {
                        entry.1 -= 1;
                        if entry.1 == 0 {
                            let (start, _) = down.remove(id).expect("entry present");
                            total += t.min(horizon).saturating_sub(start.min(horizon));
                        }
                    }
                }
                FaultAction::DegradeRegistry | FaultAction::HealRegistry => {}
            }
        }
        for (_, (start, _)) in down {
            total += horizon.saturating_sub(start.min(horizon));
        }
        total
    }
}

/// Counters and histograms the engine's fault runtime maintains; folded
/// into reports and `--metrics` output when the fault plane is active.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Crash events that removed an online machine from the capacity
    /// index (crashes of already-offline machines are capacity-inert).
    pub crashed_machines: u64,
    /// Running tasks severed by crashes.
    pub tasks_lost: u64,
    /// Retries scheduled under the policy's budget.
    pub retries_scheduled: u64,
    /// Tasks whose retry budget ran out — `failed_permanently` in the
    /// result.
    pub dead_lettered: u64,
    /// Run time severed by crashes (µs of lost work).
    pub lost_work_us: u64,
    /// Replacement machines the autoscaler ordered against crash-induced
    /// capacity loss.
    pub replacements_ordered: u64,
    /// Time from task loss to successful re-placement (µs).
    pub reschedule: Histogram,
    /// Backoff delays handed out by the retry policy (µs).
    pub backoff: Histogram,
}

/// Walks a [`FaultPlan`], injecting fault events at the engine — the
/// abrupt sibling of [`ChurnSource`](crate::scenario::ChurnSource).
///
/// Crashes do not negotiate: where churn's drain skips a machine someone
/// else holds, a crash [`override_claim`](OwnershipGuard::override_claim)s
/// it, voiding any in-flight drain or provision claim (the displaced
/// owner discovers this through
/// [`release_owned`](OwnershipGuard::release_owned) and must abandon the
/// machine). Recovery releases the fault claim and restores the machine
/// empty. Registry faults poison/heal the shared model registry.
pub struct FaultPlane {
    plan: FaultPlan,
    next: usize,
    engine: CompId,
    guard: Option<OwnershipGuard>,
    registry: Option<ctlm_core::ModelRegistry>,
    /// Outstanding outage depth per machine: a machine recovers only
    /// when its last overlapping outage ends.
    down: HashMap<MachineId, u32>,
    /// Cell span log for control-plane decision spans (crash provenance:
    /// whose lifecycle claim the override displaced).
    spans: Option<Rc<RefCell<SpanLog>>>,
}

impl FaultPlane {
    /// A fault plane over `plan`, targeting the engine component.
    pub fn new(plan: FaultPlan, engine: CompId) -> Self {
        Self {
            plan,
            next: 0,
            engine,
            guard: None,
            registry: None,
            down: HashMap::new(),
            spans: None,
        }
    }

    /// Registers the shared lifecycle guard: crashes override existing
    /// claims, recoveries release the fault claim.
    pub fn with_guard(mut self, guard: OwnershipGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Registers the cell's flight-recorder handle (from
    /// [`EngineState::enable_spans`](crate::engine::EngineState::enable_spans)):
    /// each crash records a `claim_override` control span carrying the
    /// displaced owner — the crash provenance a post-mortem needs to
    /// tell "the fault plane stole this machine from the autoscaler"
    /// from a plain crash.
    pub fn with_spans(mut self, spans: Rc<RefCell<SpanLog>>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Registers the model registry that degradation faults poison.
    pub fn with_registry(mut self, registry: ctlm_core::ModelRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// First fault time, if any (the harness seeds the first wake-up
    /// there).
    pub fn first_time(&self) -> Option<Micros> {
        self.plan.events.first().map(|&(t, _)| t)
    }

    /// The seeded plan-seed mix, exposed so drivers derive fault seeds
    /// the same way everywhere.
    pub fn plan_seed(base: u64) -> u64 {
        base ^ PLAN_SEED_MIX
    }
}

impl Component<SchedEvent> for FaultPlane {
    fn on_event(&mut self, _event: Event<SchedEvent>, ctx: &mut Ctx<'_, SchedEvent>) {
        let now = ctx.now();
        while self.next < self.plan.events.len() && self.plan.events[self.next].0 <= now {
            let (_, action) = &self.plan.events[self.next];
            match action {
                FaultAction::Crash(id) => {
                    let depth = self.down.entry(*id).or_insert(0);
                    *depth += 1;
                    if *depth == 1 {
                        let mut displaced = None;
                        if let Some(g) = &self.guard {
                            // A crash is not a negotiation: displace any
                            // in-flight drain/provision claim.
                            displaced = g.override_claim(*id, LifecycleOwner::Fault);
                        }
                        if let Some(s) = &self.spans {
                            let provenance = displaced.map_or("unclaimed", LifecycleOwner::name);
                            s.borrow_mut().instant_ctrl(
                                *id,
                                "claim_override",
                                now,
                                "crash",
                                "fault",
                                provenance,
                                0,
                                0,
                            );
                        }
                    }
                    ctx.emit_prio(0, PRIO_STATE, self.engine, SchedEvent::MachineCrash(*id));
                }
                FaultAction::Recover(id) => {
                    // Recover only when the last overlapping outage ends;
                    // unmatched recoveries (plan artifacts) are ignored.
                    if let Some(depth) = self.down.get_mut(id) {
                        *depth -= 1;
                        if *depth == 0 {
                            self.down.remove(id);
                            if let Some(g) = &self.guard {
                                g.release_owned(*id, LifecycleOwner::Fault);
                            }
                            ctx.emit_prio(
                                0,
                                PRIO_STATE,
                                self.engine,
                                SchedEvent::MachineRestore(*id),
                            );
                        }
                    }
                }
                FaultAction::DegradeRegistry => {
                    if let Some(r) = &self.registry {
                        r.poison();
                    }
                }
                FaultAction::HealRegistry => {
                    if let Some(r) = &self.registry {
                        r.heal();
                    }
                }
            }
            self.next += 1;
        }
        if self.next < self.plan.events.len() {
            let delay = self.plan.events[self.next].0 - now;
            ctx.emit_self_prio(delay, PRIO_STATE, SchedEvent::Wake);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_retry_exhausts_its_budget() {
        let p = FixedRetry {
            delay: 500,
            budget: 2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.delay(1, &mut rng), Some(500));
        assert_eq!(p.delay(2, &mut rng), Some(500));
        assert_eq!(p.delay(3, &mut rng), None);
    }

    #[test]
    fn exponential_backoff_grows_caps_and_jitters_within_bounds() {
        let p = ExponentialBackoff {
            base: 1_000,
            cap: 6_000,
            budget: 10,
            jitter: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(7);
        for attempt in 1..=10u32 {
            let d = p.delay(attempt, &mut rng).unwrap();
            let raw = 1_000u64.saturating_mul(1 << (attempt - 1)).min(6_000);
            let lo = (raw as f64 * 0.5) as u64;
            let hi = (raw as f64 * 1.5) as u64 + 1;
            assert!(
                (lo..=hi).contains(&d),
                "attempt {attempt}: {d} outside [{lo}, {hi}]"
            );
        }
        assert_eq!(p.delay(11, &mut rng), None);
    }

    #[test]
    fn exponential_backoff_is_deterministic_per_seed() {
        let p = ExponentialBackoff {
            base: 2_000,
            cap: 60_000,
            budget: 5,
            jitter: 0.5,
        };
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (1..=5).map(|a| p.delay(a, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn zone_crashes_take_whole_domains_down_together() {
        let fleet: Vec<MachineId> = (0..12).collect();
        let plan = FaultPlan::zone_crashes(9, &fleet, 3, 2, (1_000, 2_000), 5_000);
        // 2 crash events × 4 machines per zone, each with a paired
        // recovery.
        let crashes: Vec<_> = plan
            .events
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::Crash(_)))
            .collect();
        assert_eq!(crashes.len(), 8);
        // All members of one event share a crash instant.
        let mut by_time: HashMap<Micros, usize> = HashMap::new();
        for (t, _) in &crashes {
            *by_time.entry(*t).or_insert(0) += 1;
        }
        for (_, n) in by_time {
            assert_eq!(n % 4, 0, "crash instants cover whole zones");
        }
        // Deterministic per seed.
        assert_eq!(
            plan.events,
            FaultPlan::zone_crashes(9, &fleet, 3, 2, (1_000, 2_000), 5_000).events
        );
    }

    #[test]
    fn downtime_clamps_to_horizon_and_merges_nested_outages() {
        let plan = FaultPlan::new(vec![
            (100, FaultAction::Crash(1)),
            (150, FaultAction::Crash(1)), // nested: same machine again
            (200, FaultAction::Recover(1)),
            (300, FaultAction::Recover(1)), // last recovery ends the outage
            (400, FaultAction::Crash(2)),   // never recovers
        ]);
        // Machine 1: down 100..300 (200 µs). Machine 2: 400..horizon.
        assert_eq!(plan.downtime_us(1_000), 200 + 600);
        // Horizon inside machine 1's outage.
        assert_eq!(plan.downtime_us(250), 150);
    }

    #[test]
    fn registry_outage_brackets_the_window() {
        let plan = FaultPlan::default().and_registry_outage(500, 1_000);
        assert_eq!(
            plan.events,
            vec![
                (500, FaultAction::DegradeRegistry),
                (1_500, FaultAction::HealRegistry),
            ]
        );
    }
}
