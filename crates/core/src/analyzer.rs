//! The Task CO Analyzer (paper Fig. 3).
//!
//! “It can enhance cluster orchestration systems by rerouting
//! high-priority tasks to specialized allocation strategies before the
//! main cluster scheduler processes the pending job queue. … Additionally,
//! updating ML model runs in parallel and won't block or slow down the
//! main cluster scheduler.”
//!
//! [`TaskCoAnalyzer`] scores one task's constraints in real time;
//! [`ModelRegistry`] is the hot-swap point: the training pipeline installs
//! refreshed analyzers while schedulers keep reading the previous one
//! lock-free-ish (a brief `RwLock` read).

use std::sync::Arc;

use std::sync::RwLock;

use ctlm_data::compaction::{collapse, CompactionError};
use ctlm_data::encode::co_vv::CoVvEncoder;
use ctlm_data::vocab::ValueVocab;
use ctlm_nn::Net;
use ctlm_tensor::CsrBuilder;
use ctlm_trace::TaskConstraint;

/// Real-time constraint classifier: CO-VV encoding + the trained network.
#[derive(Clone, Debug)]
pub struct TaskCoAnalyzer {
    net: Arc<Net>,
    vocab: ValueVocab,
    /// Groups at or below this threshold are flagged high-priority
    /// (paper: Group 0 — tasks allocable to a single node).
    pub priority_threshold: u8,
}

impl TaskCoAnalyzer {
    /// Builds an analyzer from a trained network and the vocabulary it
    /// was trained against.
    ///
    /// # Panics
    /// Panics when the network width disagrees with the vocabulary.
    pub fn new(net: Net, vocab: ValueVocab) -> Self {
        assert_eq!(
            net.in_features(),
            vocab.len(),
            "network width must match vocabulary width"
        );
        Self {
            net: Arc::new(net),
            vocab,
            priority_threshold: 0,
        }
    }

    /// Predicts the suitable-node group for a task's constraints.
    /// Unconstrained tasks score the top group without a model call.
    pub fn predict_group(&self, constraints: &[TaskConstraint]) -> Result<u8, CompactionError> {
        if constraints.is_empty() {
            return Ok((ctlm_data::dataset::NUM_GROUPS - 1) as u8);
        }
        let reqs = collapse(constraints)?;
        let entries = CoVvEncoder.encode_requirements(&reqs, &self.vocab);
        let mut b = CsrBuilder::new(self.vocab.len());
        b.push_row(entries);
        let x = b.finish();
        Ok(self.net.predict(&x)[0])
    }

    /// True when the task should be routed to the high-priority
    /// scheduler.
    pub fn is_high_priority(&self, constraints: &[TaskConstraint]) -> bool {
        match self.predict_group(constraints) {
            Ok(g) => g <= self.priority_threshold,
            // Contradictory constraints can never schedule; surface them
            // to the priority path where a human-visible error is raised
            // quickly rather than letting them sit in the main queue.
            Err(_) => true,
        }
    }

    /// Feature width the analyzer scores at.
    pub fn features(&self) -> usize {
        self.vocab.len()
    }

    /// The vocabulary the analyzer encodes against (scheduler integration
    /// encodes pre-collapsed requirements directly).
    pub fn vocab(&self) -> &ValueVocab {
        &self.vocab
    }

    /// The underlying network.
    pub fn net(&self) -> &Net {
        &self.net
    }
}

/// Hot-swappable analyzer handle shared between the training pipeline and
/// the schedulers.
#[derive(Clone, Debug)]
pub struct ModelRegistry {
    current: Arc<RwLock<Option<Arc<TaskCoAnalyzer>>>>,
    /// Bumped on every install; readers cache the analyzer and re-read
    /// only when this moves, making the per-task fast path one atomic
    /// load instead of an `RwLock` acquisition.
    version: Arc<std::sync::atomic::AtomicU64>,
    /// False while the registry is degraded (a failed or stale swap):
    /// [`Self::get`] then answers `None` so readers fall back to their
    /// no-model behaviour until a healthy version appears.
    healthy: Arc<std::sync::atomic::AtomicBool>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self {
            current: Arc::default(),
            version: Arc::default(),
            healthy: Arc::new(std::sync::atomic::AtomicBool::new(true)),
        }
    }
}

impl ModelRegistry {
    /// An empty registry (schedulers fall back to treating every task as
    /// normal priority until a model is installed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a new analyzer; readers see it on their next lookup. A
    /// fresh install is by definition a healthy version, so it also
    /// clears any degradation mark.
    pub fn install(&self, analyzer: TaskCoAnalyzer) {
        *self.current.write().expect("registry lock poisoned") = Some(Arc::new(analyzer));
        self.healthy
            .store(true, std::sync::atomic::Ordering::Release);
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// Marks the registry degraded — a stale or failed model swap. Until
    /// [`Self::heal`] or a fresh [`Self::install`], [`Self::get`] answers
    /// `None` and cached readers observe a version bump, dropping their
    /// analyzer and falling back to baseline behaviour.
    pub fn poison(&self) {
        self.healthy
            .store(false, std::sync::atomic::Ordering::Release);
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// Clears a degradation mark without installing a new model: the
    /// previously installed analyzer (if any) becomes visible again.
    pub fn heal(&self) {
        self.healthy
            .store(true, std::sync::atomic::Ordering::Release);
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// True while no degradation mark is set.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Monotone install counter: 0 until the first model lands, bumped on
    /// every hot swap. Schedulers use it to detect swaps cheaply.
    pub fn version(&self) -> u64 {
        self.version.load(std::sync::atomic::Ordering::Acquire)
    }

    /// The current analyzer, if any. `None` while degraded, even when a
    /// model is installed — degraded readers must not trust it.
    pub fn get(&self) -> Option<Arc<TaskCoAnalyzer>> {
        if !self.is_healthy() {
            return None;
        }
        self.current.read().expect("registry lock poisoned").clone()
    }

    /// True once a model is installed.
    pub fn is_ready(&self) -> bool {
        self.current
            .read()
            .expect("registry lock poisoned")
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::growing::GrowingModel;
    use crate::trainer::TrainConfig;
    use ctlm_data::dataset::{DatasetBuilder, NUM_GROUPS};
    use ctlm_trace::{AttrValue, ConstraintOp as Op};

    /// Builds a vocabulary for attribute 0 with integer values 0..n and a
    /// dataset labelling tasks by how many values their constraints
    /// reject — a miniature CO-VV world.
    fn trained_analyzer() -> TaskCoAnalyzer {
        let mut vocab = ValueVocab::new();
        for v in 0..24 {
            vocab.observe(0, &AttrValue::Int(v));
        }
        let width = vocab.len(); // 25: (none) + 24 values
        let enc = CoVvEncoder;
        let mut b = DatasetBuilder::new(width, NUM_GROUPS);
        // Tasks `node < k` leave k acceptable values → group by k.
        for k in 1..24i64 {
            for _rep in 0..30 {
                let cs = vec![TaskConstraint::new(0, Op::LessThan(k))];
                let reqs = collapse(&cs).unwrap();
                let row = enc.encode_requirements(&reqs, &vocab);
                let group = ctlm_data::dataset::group_for_count(k as usize, 1);
                b.push(row, group);
            }
        }
        let ds = b.snapshot(width);
        let mut m = GrowingModel::new(TrainConfig {
            epochs_limit: 80,
            ..TrainConfig::default()
        });
        let out = m.step(&ds, 5);
        assert!(out.accepted, "toy training failed: {:?}", out.evaluation);
        TaskCoAnalyzer::new(m.to_net(), vocab)
    }

    #[test]
    fn single_node_tasks_are_high_priority() {
        let a = trained_analyzer();
        let g0 = vec![TaskConstraint::new(0, Op::LessThan(1))]; // 1 suitable value
        assert_eq!(a.predict_group(&g0).unwrap(), 0);
        assert!(a.is_high_priority(&g0));
        let wide = vec![TaskConstraint::new(0, Op::LessThan(20))];
        let g = a.predict_group(&wide).unwrap();
        assert!(g > 0, "wide task predicted group {g}");
        assert!(!a.is_high_priority(&wide));
    }

    #[test]
    fn unconstrained_tasks_score_top_group() {
        let a = trained_analyzer();
        assert_eq!(a.predict_group(&[]).unwrap(), (NUM_GROUPS - 1) as u8);
        assert!(!a.is_high_priority(&[]));
    }

    #[test]
    fn contradictions_route_to_priority_path() {
        let a = trained_analyzer();
        let bad = vec![
            TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(1)))),
            TaskConstraint::new(0, Op::Equal(Some(AttrValue::Int(2)))),
        ];
        assert!(a.predict_group(&bad).is_err());
        assert!(a.is_high_priority(&bad));
    }

    #[test]
    fn registry_hot_swaps() {
        let reg = ModelRegistry::new();
        assert!(!reg.is_ready());
        assert!(reg.get().is_none());
        let a = trained_analyzer();
        reg.install(a);
        assert!(reg.is_ready());
        let held = reg.get().unwrap();
        // Install a second analyzer; the held Arc stays valid (readers
        // are never blocked or invalidated).
        let b = trained_analyzer();
        reg.install(b);
        assert_eq!(held.features(), 25);
        assert!(reg.get().is_some());
    }
}
