//! Expiring unused attributes (paper §VI, future work 2).
//!
//! “While this wasn't an issue in the thirty-one-day simulation, more
//! active cluster configurations may face challenges if unused attribute
//! values accumulate over time. Introducing a process to retire obsolete
//! features will keep the model efficient and scalable.”
//!
//! [`UsageTracker`] records, per feature column, when a machine last held
//! the value and when a task last referenced it. [`retire`] compacts the
//! vocabulary and the trained model together, dropping columns idle for
//! longer than a horizon — the exact inverse of the growing mechanism, so
//! the model's behaviour on surviving columns is untouched.

use serde::{Deserialize, Serialize};

use ctlm_data::vocab::{ValueKey, ValueVocab};
use ctlm_nn::state_dict::select_input_columns;
use ctlm_nn::StateDict;
use ctlm_trace::Micros;

/// Per-column liveness tracking.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UsageTracker {
    /// Last time the column's value was observed on any machine, indexed
    /// by column. `None` = never (column allocated but value gone before
    /// tracking started).
    machine_seen: Vec<Option<Micros>>,
    /// Last time any task's encoding touched the column.
    task_seen: Vec<Option<Micros>>,
}

impl UsageTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, col: usize) {
        if col >= self.machine_seen.len() {
            self.machine_seen.resize(col + 1, None);
            self.task_seen.resize(col + 1, None);
        }
    }

    /// Notes that a machine currently holds the column's value.
    pub fn touch_machine(&mut self, col: usize, now: Micros) {
        self.ensure(col);
        self.machine_seen[col] = Some(now);
    }

    /// Notes that a task's encoding referenced the column.
    pub fn touch_task(&mut self, col: usize, now: Micros) {
        self.ensure(col);
        self.task_seen[col] = Some(now);
    }

    /// Most recent activity of either kind.
    pub fn last_activity(&self, col: usize) -> Option<Micros> {
        let m = self.machine_seen.get(col).copied().flatten();
        let t = self.task_seen.get(col).copied().flatten();
        match (m, t) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Columns idle since before `cutoff` (never-seen columns count as
    /// idle).
    pub fn idle_columns(&self, width: usize, cutoff: Micros) -> Vec<usize> {
        (0..width)
            .filter(|&c| match self.last_activity(c) {
                Some(t) => t < cutoff,
                None => true,
            })
            .collect()
    }
}

/// Outcome of a retirement pass.
#[derive(Clone, Debug)]
pub struct Retirement {
    /// The compacted vocabulary.
    pub vocab: ValueVocab,
    /// Old-column → new-column mapping (`None` = retired).
    pub remap: Vec<Option<usize>>,
    /// Number of columns removed.
    pub retired: usize,
}

/// Retires idle feature columns from a (vocab, model) pair.
///
/// Policy guards, matching the paper's caution:
/// * `(none)` pseudo-columns are never retired (presence constraints need
///   them as long as the attribute exists);
/// * at most `max_fraction` of the array is retired per pass (mirroring
///   the grow-side 40–50-column guidance — large jumps destabilise).
///
/// The model's `fc1.weight` columns are compacted with the same remap, so
/// predictions on tasks not referencing retired values are bit-identical.
pub fn retire(
    vocab: &ValueVocab,
    state: &mut StateDict,
    tracker: &UsageTracker,
    cutoff: Micros,
    max_fraction: f64,
) -> Result<Retirement, ctlm_nn::StateDictError> {
    let width = vocab.len();
    let mut idle: Vec<usize> = tracker
        .idle_columns(width, cutoff)
        .into_iter()
        .filter(|&c| !matches!(vocab.key_at(c), Some((_, ValueKey::Absent))))
        .collect();
    let cap = ((width as f64) * max_fraction).floor() as usize;
    idle.truncate(cap);
    let retired_set: std::collections::BTreeSet<usize> = idle.iter().copied().collect();
    let keep: Vec<usize> = (0..width).filter(|c| !retired_set.contains(c)).collect();
    select_input_columns(state, "fc1.weight", &keep)?;
    let (new_vocab, remap) = vocab.rebuild_keeping(&keep);
    Ok(Retirement {
        vocab: new_vocab,
        remap,
        retired: retired_set.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::growing::GrowingModel;
    use crate::trainer::{fresh_two_layer, TrainConfig};
    use ctlm_data::dataset::{DatasetBuilder, NUM_GROUPS};
    use ctlm_tensor::CsrBuilder;
    use ctlm_trace::AttrValue;

    fn vocab_n(n: i64) -> ValueVocab {
        let mut v = ValueVocab::new();
        for i in 0..n {
            v.observe(0, &AttrValue::Int(i));
        }
        v
    }

    #[test]
    fn tracker_reports_idleness() {
        let mut t = UsageTracker::new();
        t.touch_machine(0, 100);
        t.touch_task(1, 50);
        t.touch_task(0, 30);
        assert_eq!(t.last_activity(0), Some(100));
        assert_eq!(t.last_activity(1), Some(50));
        assert_eq!(t.last_activity(7), None);
        assert_eq!(t.idle_columns(3, 60), vec![1, 2]);
    }

    #[test]
    fn retire_compacts_vocab_and_model_consistently() {
        let vocab = vocab_n(10); // 11 columns: (none) + 0..9
        let cfg = TrainConfig {
            epochs_limit: 30,
            ..TrainConfig::default()
        };

        // Train on rows that only ever touch the first 6 value columns.
        let enc = ctlm_data::encode::co_vv::CoVvEncoder;
        let mut b = DatasetBuilder::new(vocab.len(), NUM_GROUPS);
        for k in 1..6i64 {
            for _ in 0..40 {
                let cs = vec![ctlm_trace::TaskConstraint::new(
                    0,
                    ctlm_trace::ConstraintOp::LessThan(k),
                )];
                let reqs = ctlm_data::compaction::collapse(&cs).unwrap();
                b.push(
                    enc.encode_requirements(&reqs, &vocab),
                    ctlm_data::dataset::group_for_count(k as usize, 1),
                );
            }
        }
        let ds = b.snapshot(vocab.len());
        let mut model = GrowingModel::new(cfg);
        model.step(&ds, 1);

        // Mark columns for values 0..6 live; 7..9 idle.
        let mut tracker = UsageTracker::new();
        for c in 0..8 {
            tracker.touch_machine(c, 1_000);
        }
        let mut sd = model.state_dict().unwrap().clone();
        let r = retire(&vocab, &mut sd, &tracker, 500, 0.5).unwrap();
        assert_eq!(r.retired, 3, "value columns 8,9,10 idle");
        assert_eq!(r.vocab.len(), 8);

        // Predictions on rows that avoid retired columns are identical.
        let old_net = model.to_net();
        let mut new_net = fresh_two_layer(8, model.config(), 0);
        new_net.load_state_dict(&sd).unwrap();
        let mut bo = CsrBuilder::new(11);
        let mut bn = CsrBuilder::new(8);
        // Row marking (none) + values 0..3 (columns 0..=4 survive as-is).
        bo.push_row((0..5).map(|c| (c, 1.0)));
        bn.push_row((0..5).map(|c| (c, 1.0)));
        let po = old_net.forward(&bo.finish());
        let pn = new_net.forward(&bn.finish());
        assert!(
            po.max_abs_diff(&pn) < 1e-6,
            "retirement changed surviving behaviour"
        );
    }

    #[test]
    fn absent_columns_survive_retirement() {
        let vocab = vocab_n(4);
        let cfg = TrainConfig::default();
        let net = fresh_two_layer(vocab.len(), &cfg, 1);
        let mut sd = net.state_dict();
        let tracker = UsageTracker::new(); // everything idle
        let r = retire(&vocab, &mut sd, &tracker, u64::MAX, 1.0).unwrap();
        // All 4 value columns go; the (none) column stays.
        assert_eq!(r.vocab.len(), 1);
        assert!(matches!(r.vocab.key_at(0), Some((_, ValueKey::Absent))));
    }

    #[test]
    fn max_fraction_caps_a_pass() {
        let vocab = vocab_n(10);
        let cfg = TrainConfig::default();
        let net = fresh_two_layer(vocab.len(), &cfg, 2);
        let mut sd = net.state_dict();
        let tracker = UsageTracker::new();
        let r = retire(&vocab, &mut sd, &tracker, u64::MAX, 0.2).unwrap();
        assert!(
            r.retired <= 2,
            "20% of 11 columns is 2, retired {}",
            r.retired
        );
    }

    #[test]
    fn growing_continues_after_retirement() {
        // Retire, then keep growing: the full lifecycle.
        let vocab = vocab_n(10);
        let cfg = TrainConfig {
            epochs_limit: 20,
            max_attempts: 2,
            ..TrainConfig::default()
        };
        let net = fresh_two_layer(vocab.len(), &cfg, 3);
        let mut sd = net.state_dict();
        let mut tracker = UsageTracker::new();
        for c in 0..6 {
            tracker.touch_machine(c, 10);
        }
        let r = retire(&vocab, &mut sd, &tracker, 5, 0.6).unwrap();
        let new_width = r.vocab.len();
        // Grow again by padding — the standard Listing-2 path applies to
        // the compacted dict unchanged.
        ctlm_nn::state_dict::pad_input_weight(&mut sd, "fc1.weight", new_width + 4).unwrap();
        let mut net2 = fresh_two_layer(new_width + 4, &cfg, 4);
        net2.load_state_dict(&sd).unwrap();
        assert_eq!(net2.in_features(), new_width + 4);
    }
}
