//! The continuous-learning evaluation pipeline.
//!
//! Drives a model (Growing, Fully-Retrain, or a scikit-learn-style
//! baseline) across the [`DatasetStep`]s a replayed trace produced —
//! training/retraining at every feature-array extension and recording
//! per-step accuracy, Group-0 F1, epochs and wall time. One run of this
//! pipeline is one column of Table X; its step records are the rows of
//! Table XI.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use ctlm_agocs::replay::DatasetStep;
use ctlm_baselines::{Classifier, MlpClassifier, RidgeClassifier, SgdClassifier, VotingClassifier};
use ctlm_data::dataset::NUM_GROUPS;
use ctlm_data::metrics::Evaluation;
use ctlm_data::split::{stratified_split, SplitConfig};

use crate::full_retrain::FullRetrainModel;
use crate::growing::GrowingModel;
use crate::trainer::TrainConfig;

/// Per-step record (one Table XI row).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index.
    pub step: usize,
    /// `day HH:MM` simulation-time label.
    pub label: String,
    /// Feature width at the step.
    pub features: usize,
    /// Newly added features.
    pub new_features: usize,
    /// Cumulative dataset rows.
    pub rows: usize,
    /// Test evaluation.
    pub evaluation: Evaluation,
    /// Epochs run (0 where the notion does not apply).
    pub epochs: usize,
    /// Wall time of the step.
    pub wall_time: Duration,
}

/// Aggregate of one model across all steps (one Table X cell group).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunSummary {
    /// Model display name.
    pub model: String,
    /// Mean accuracy across steps.
    pub avg_accuracy: f64,
    /// Mean Group-0 F1 across the steps that had Group 0 test samples.
    pub avg_group0_f1: Option<f64>,
    /// Total epochs across steps.
    pub epochs_total: usize,
    /// Total wall time across steps.
    pub wall_time_total: Duration,
    /// The per-step records.
    pub steps: Vec<StepRecord>,
}

impl RunSummary {
    fn from_steps(model: String, steps: Vec<StepRecord>) -> Self {
        assert!(!steps.is_empty(), "a run needs at least one step");
        let avg_accuracy =
            steps.iter().map(|s| s.evaluation.accuracy).sum::<f64>() / steps.len() as f64;
        let f1s: Vec<f64> = steps
            .iter()
            .filter_map(|s| s.evaluation.group0_f1)
            .collect();
        let avg_group0_f1 = if f1s.is_empty() {
            None
        } else {
            Some(f1s.iter().sum::<f64>() / f1s.len() as f64)
        };
        let epochs_total = steps.iter().map(|s| s.epochs).sum();
        let wall_time_total = steps.iter().map(|s| s.wall_time).sum();
        Self {
            model,
            avg_accuracy,
            avg_group0_f1,
            epochs_total,
            wall_time_total,
            steps,
        }
    }
}

/// Which of the paper's two models to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// The Growing (transfer) model.
    Growing,
    /// The Fully-Retrain variant.
    FullyRetrain,
}

/// Runs Growing or Fully-Retrain across the steps.
pub fn run_model_over_steps(
    kind: ModelKind,
    steps: &[DatasetStep],
    config: TrainConfig,
    seed: u64,
) -> RunSummary {
    assert!(!steps.is_empty(), "no dataset steps to run over");
    let mut growing = GrowingModel::new(config);
    let mut retrain = FullRetrainModel::new(config);
    let mut records = Vec::with_capacity(steps.len());
    for (i, step) in steps.iter().enumerate() {
        let outcome = match kind {
            ModelKind::Growing => growing.step(&step.vv, seed.wrapping_add(i as u64)),
            ModelKind::FullyRetrain => retrain.step(&step.vv, seed.wrapping_add(i as u64)),
        };
        records.push(StepRecord {
            step: step.index,
            label: step.label.clone(),
            features: step.features_count,
            new_features: step.new_features,
            rows: step.vv.len(),
            evaluation: outcome.evaluation,
            epochs: outcome.epochs,
            wall_time: outcome.wall_time,
        });
    }
    let name = match kind {
        ModelKind::Growing => "Growing",
        ModelKind::FullyRetrain => "Fully Retrain",
    };
    RunSummary::from_steps(name.to_string(), records)
}

/// The scikit-learn baseline set of §V.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineKind {
    /// `MLPClassifier` (30 hidden units, Adam).
    Mlp,
    /// `RidgeClassifier`.
    Ridge,
    /// `SGDClassifier` (linear SVM).
    Sgd,
    /// Hard-voting ensemble of the above.
    Ensemble,
}

impl BaselineKind {
    /// All four baselines in paper order.
    pub fn all() -> [BaselineKind; 4] {
        [
            BaselineKind::Mlp,
            BaselineKind::Ridge,
            BaselineKind::Sgd,
            BaselineKind::Ensemble,
        ]
    }

    fn build(self, seed: u64) -> Box<dyn Classifier + Send> {
        match self {
            BaselineKind::Mlp => Box::new(MlpClassifier::paper_default(NUM_GROUPS, seed)),
            BaselineKind::Ridge => Box::new(RidgeClassifier::new(NUM_GROUPS)),
            BaselineKind::Sgd => Box::new(SgdClassifier::new(NUM_GROUPS, seed)),
            BaselineKind::Ensemble => Box::new(VotingClassifier::paper_default(NUM_GROUPS, seed)),
        }
    }
}

/// Runs a baseline across the steps — trained from scratch at each step,
/// as the paper does ("except for the Growing model, all models were
/// trained from scratch").
pub fn run_baseline_over_steps(
    kind: BaselineKind,
    steps: &[DatasetStep],
    test_fraction: f64,
    seed: u64,
) -> RunSummary {
    assert!(!steps.is_empty(), "no dataset steps to run over");
    let mut records = Vec::with_capacity(steps.len());
    let mut name = "";
    for (i, step) in steps.iter().enumerate() {
        let t0 = Instant::now();
        let step_seed = seed.wrapping_add(i as u64);
        let (train_idx, test_idx) = stratified_split(
            &step.vv.y,
            SplitConfig {
                test_fraction,
                seed: step_seed,
            },
        );
        let train = step.vv.select(&train_idx);
        let test = step.vv.select(&test_idx);
        let mut clf = kind.build(step_seed);
        name = clf.name();
        let report = clf.fit(&train.x, &train.y);
        let pred = clf.predict(&test.x);
        let evaluation = Evaluation::compute(&test.y, &pred, NUM_GROUPS);
        records.push(StepRecord {
            step: step.index,
            label: step.label.clone(),
            features: step.features_count,
            new_features: step.new_features,
            rows: step.vv.len(),
            evaluation,
            epochs: report.epochs,
            wall_time: t0.elapsed(),
        });
    }
    RunSummary::from_steps(name.to_string(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctlm_agocs::Replayer;
    use ctlm_trace::{CellSet, Scale, TraceGenerator};

    fn small_steps() -> Vec<DatasetStep> {
        // The Table XI configuration (scaled 2019c cell): large enough
        // that the 26 groups are learnable, so acceptance fires and the
        // transfer-vs-scratch epoch gap is observable.
        let trace = TraceGenerator::generate_cell(
            CellSet::C2019c,
            Scale {
                machines: 260,
                collections: 1_600,
                seed: 42,
            },
        );
        Replayer::default().replay(&trace).steps
    }

    #[test]
    fn growing_pipeline_runs_and_scores_well() {
        let steps = small_steps();
        let cfg = TrainConfig {
            epochs_limit: 100,
            max_attempts: 3,
            ..TrainConfig::default()
        };
        let run = run_model_over_steps(ModelKind::Growing, &steps, cfg, 7);
        assert_eq!(run.steps.len(), steps.len());
        assert!(
            run.avg_accuracy > 0.90,
            "growing model degraded badly: {}",
            run.avg_accuracy
        );
        assert!(run.epochs_total > 0);
    }

    #[test]
    fn growing_uses_fewer_epochs_than_full_retrain() {
        // The paper's headline: 40–91 % fewer epochs.
        let steps = small_steps();
        let cfg = TrainConfig {
            epochs_limit: 100,
            max_attempts: 3,
            ..TrainConfig::default()
        };
        let g = run_model_over_steps(ModelKind::Growing, &steps, cfg, 7);
        let f = run_model_over_steps(ModelKind::FullyRetrain, &steps, cfg, 7);
        assert!(
            (g.epochs_total as f64) < 0.9 * f.epochs_total as f64,
            "growing {} epochs vs full retrain {}",
            g.epochs_total,
            f.epochs_total
        );
        // Accuracy stays comparable (within a few points).
        assert!(g.avg_accuracy > f.avg_accuracy - 0.08);
    }

    #[test]
    fn baselines_run_over_steps() {
        let steps = small_steps();
        // Ridge is the fastest baseline; it stands in for the set here.
        let run = run_baseline_over_steps(BaselineKind::Ridge, &steps, 0.25, 3);
        assert_eq!(run.model, "Ridge Classifier");
        assert_eq!(run.steps.len(), steps.len());
        assert!(
            run.avg_accuracy > 0.7,
            "ridge accuracy {}",
            run.avg_accuracy
        );
        assert_eq!(run.epochs_total, 0, "ridge reports no epochs");
    }
}
