//! The Growing model — the paper's headline mechanism.
//!
//! Between dataset steps the CO-VV feature array widens. Instead of
//! retraining from scratch, the Growing model:
//!
//! 1. restores the saved state dict (Listing 1);
//! 2. pads `fc1.weight` on the right with zero columns to the new width
//!    (Listing 2) — reshaping *within the state dict* before restoring,
//!    exactly as the paper does;
//! 3. trains with everything frozen except `fc1`, whose pre-trained
//!    weight columns receive gradients scaled by 0.1 while the new
//!    columns train at full rate (Listing 3);
//! 4. on acceptance-failure after 100 epochs, discards the pre-trained
//!    model and reinitialises (fail-fast), up to ten attempts.

use serde::{Deserialize, Serialize};

use ctlm_data::dataset::Dataset;
use ctlm_nn::state_dict::pad_input_weight;
use ctlm_nn::{Layer, Net, StateDict};

use crate::trainer::{fresh_two_layer, train_step, StepOutcome, TrainConfig, Warmth};

/// The continuously-growing CTLM model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GrowingModel {
    config: TrainConfig,
    state: Option<StateDict>,
    features: usize,
}

impl GrowingModel {
    /// A new (untrained) growing model.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            state: None,
            features: 0,
        }
    }

    /// Feature width of the saved model (0 before first training).
    pub fn features(&self) -> usize {
        self.features
    }

    /// True once a model has been trained and saved.
    pub fn is_trained(&self) -> bool {
        self.state.is_some()
    }

    /// The saved state dict, when trained.
    pub fn state_dict(&self) -> Option<&StateDict> {
        self.state.as_ref()
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Materialises the current model as a network (for the analyzer).
    ///
    /// # Panics
    /// Panics when called before any training step.
    pub fn to_net(&self) -> Net {
        let sd = self.state.as_ref().expect("model not trained yet");
        let mut net = fresh_two_layer(self.features, &self.config, 0);
        net.load_state_dict(sd).expect("own state dict must load");
        net
    }

    /// Like [`GrowingModel::to_net`] but zero-padded to `width` (Listing 2
    /// without retraining) — used when the analyzer's vocabulary has
    /// grown past the last trained width; the padded columns contribute
    /// nothing until the next training step.
    ///
    /// # Panics
    /// Panics when untrained or when `width < features()`.
    pub fn to_net_padded(&self, width: usize) -> Net {
        assert!(width >= self.features, "cannot shrink to width {width}");
        let sd = self.state.as_ref().expect("model not trained yet");
        let mut padded = sd.clone();
        pad_input_weight(&mut padded, "fc1.weight", width).expect("own fc1.weight must pad");
        let mut net = fresh_two_layer(width, &self.config, 0);
        net.load_state_dict(&padded)
            .expect("padded state dict must load");
        net
    }

    /// Runs one training step on the (cumulative) dataset of a feature-
    /// extension step, transferring knowledge from the previous step's
    /// model when possible.
    pub fn step(&mut self, dataset: &Dataset, seed: u64) -> StepOutcome {
        let new_width = dataset.features_count();
        let warm = match (&self.state, new_width) {
            (Some(sd), w) if w >= self.features && self.features > 0 => {
                // Listing 2: reshape inside the state dict, then restore.
                let mut padded = sd.clone();
                let pretrained = pad_input_weight(&mut padded, "fc1.weight", w)
                    .expect("own fc1.weight must pad");
                let mut net = fresh_two_layer(w, &self.config, seed);
                net.load_state_dict(&padded)
                    .expect("padded state dict must load");
                // Listing 1/3 freezing: every layer frozen except fc1
                // (whose weight gets the multiplier and whose bias trains
                // freely).
                for (i, layer) in net.layers_mut().iter_mut().enumerate() {
                    if let Layer::Linear(l) = layer {
                        if i == 0 {
                            l.unfreeze();
                        } else {
                            l.freeze();
                        }
                    }
                }
                Some((
                    net,
                    Warmth::Transfer {
                        pretrained_cols: pretrained,
                    },
                ))
            }
            _ => None,
        };
        let cfg = self.config;
        let (outcome, net) = train_step(dataset, &cfg, seed, warm, |s| {
            fresh_two_layer(new_width, &cfg, s)
        });
        self.state = Some(net.state_dict());
        self.features = new_width;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::tests::synthetic_dataset;
    use ctlm_data::dataset::NUM_GROUPS;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs_limit: 60,
            ..TrainConfig::default()
        }
    }

    /// Widens a synthetic dataset by appending noise columns, keeping the
    /// learned signal in the original prefix — the CO-VV growth pattern.
    fn widened(base: &Dataset, extra: usize) -> Dataset {
        let mut d = base.clone();
        d.widen(base.features_count() + extra);
        d
    }

    #[test]
    fn first_step_trains_from_scratch() {
        let ds = synthetic_dataset(700, 50, 10);
        let mut m = GrowingModel::new(quick_config());
        assert!(!m.is_trained());
        let out = m.step(&ds, 1);
        assert!(out.accepted, "initial training failed");
        assert!(!out.used_transfer);
        assert!(m.is_trained());
        assert_eq!(m.features(), 50);
    }

    #[test]
    fn second_step_uses_transfer_and_fewer_epochs() {
        let ds = synthetic_dataset(700, 50, 11);
        let mut m = GrowingModel::new(quick_config());
        let first = m.step(&ds, 1);
        assert!(first.accepted);

        // The feature array grows; old rows gain implicit zero columns.
        let ds2 = widened(&ds, 6);
        let out = m.step(&ds2, 2);
        assert!(out.used_transfer, "second step must warm-start");
        assert!(out.accepted, "transfer step failed acceptance");
        assert!(
            out.epochs <= first.epochs,
            "transfer ({} epochs) should not need more than scratch ({})",
            out.epochs,
            first.epochs
        );
        assert_eq!(m.features(), 56);
    }

    #[test]
    fn padded_model_predicts_identically_on_old_features() {
        // Zero-padding must leave behaviour on the old feature prefix
        // unchanged — the core Listing-2 invariant.
        let ds = synthetic_dataset(400, 40, 12);
        let mut m = GrowingModel::new(quick_config());
        m.step(&ds, 3);
        let net_before = m.to_net();
        let pred_before = net_before.predict(&ds.x);

        // Pad manually (no retraining) and re-predict on widened rows.
        let mut padded = m.state_dict().unwrap().clone();
        pad_input_weight(&mut padded, "fc1.weight", 48).unwrap();
        let mut net_after = fresh_two_layer(48, m.config(), 0);
        net_after.load_state_dict(&padded).unwrap();
        let ds_wide = widened(&ds, 8);
        let pred_after = net_after.predict(&ds_wide.x);
        assert_eq!(
            pred_before, pred_after,
            "zero padding changed old-prefix behaviour"
        );
    }

    #[test]
    fn state_dict_roundtrips_through_serde() {
        let ds = synthetic_dataset(300, 30, 13);
        let mut m = GrowingModel::new(quick_config());
        m.step(&ds, 4);
        let json = serde_json::to_string(&m).unwrap();
        let back: GrowingModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.features(), m.features());
        let a = m.to_net().predict(&ds.x);
        let b = back.to_net().predict(&ds.x);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_stay_in_range_after_steps() {
        let ds = synthetic_dataset(500, 45, 14);
        let mut m = GrowingModel::new(quick_config());
        m.step(&ds, 5);
        let pred = m.to_net().predict(&ds.x);
        assert!(pred.iter().all(|&p| (p as usize) < NUM_GROUPS));
    }
}
