//! # ctlm-core — the Continuous Transfer Learning Method
//!
//! The paper's primary contribution: a two-layer classifier over CO-VV
//! feature vectors that predicts a task's suitable-node group, kept
//! current *without full retraining* as the cluster's attribute
//! vocabulary grows.
//!
//! * [`trainer`] — the Fig. 2 training routine: weighted cross-entropy
//!   (Group 0 × 200), Adam at lr 0.05, early exit at accuracy > 0.95 ∧
//!   Group-0 F1 > 0.9, a 100-epoch limit, and the ten-attempt fail-fast
//!   restart.
//! * [`growing`] — the Growing model: Listing 1 (restore + freeze),
//!   Listing 2 (zero-pad `fc1.weight` to the widened feature array) and
//!   Listing 3 (gradient multiplier 0.1 on pre-trained input columns).
//! * [`full_retrain`] — the Fully-Retrain comparison variant.
//! * [`pipeline`] — runs a model (or a baseline) across the dataset steps
//!   of a replayed trace, producing Table X / Table XI material.
//! * [`analyzer`] — the Task CO Analyzer of Fig. 3: classifies incoming
//!   tasks in real time and flags restrictive ones for the
//!   high-priority scheduler; hot-swappable via [`analyzer::ModelRegistry`]
//!   so retraining never blocks the main scheduler.

pub mod analyzer;
pub mod expiry;
pub mod full_retrain;
pub mod growing;
pub mod hybrid;
pub mod pipeline;
pub mod trainer;

pub use analyzer::{ModelRegistry, TaskCoAnalyzer};
pub use expiry::{retire, Retirement, UsageTracker};
pub use full_retrain::FullRetrainModel;
pub use growing::GrowingModel;
pub use hybrid::{HybridAnalyzer, HybridVerdict, VerdictSource};
pub use pipeline::{
    run_baseline_over_steps, run_model_over_steps, BaselineKind, RunSummary, StepRecord,
};
pub use trainer::{StepOutcome, TrainConfig};
