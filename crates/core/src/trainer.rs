//! The training routine (paper Fig. 2 and Listing 3).
//!
//! One routine serves both fresh initialisation and transfer fine-tuning:
//!
//! 1. stratified train/test split (when every class allows it);
//! 2. weighted cross-entropy (`[GROUP_0_CLASS_WEIGHT] + [1]*25`);
//! 3. `torch.optim.Adam(lr=0.05)`;
//! 4. optionally (growing mode) the per-column gradient multiplier on
//!    `fc1.weight` with everything except `fc1` frozen;
//! 5. after every epoch, evaluate; **early-exit** once accuracy exceeds
//!    0.95 *and* the Group-0 F1 exceeds 0.9;
//! 6. if the thresholds are not met within 100 epochs, discard and
//!    reinitialise (fail-fast), giving up after ten attempts.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use ctlm_data::dataset::{Dataset, NUM_GROUPS};
use ctlm_data::metrics::Evaluation;
use ctlm_data::split::{stratified_split, SplitConfig};
use ctlm_nn::grad_scale::ColumnGradScale;
use ctlm_nn::{Adam, BatchIter, CrossEntropyLoss, Net, Optimizer, Workspace};
use ctlm_tensor::init::seeded_rng;
use ctlm_tensor::Csr;

/// Hyper-parameters, defaulting to the paper's values.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Hidden-layer width (paper: 30 neurons).
    pub hidden: usize,
    /// Class count (paper: 26 groups).
    pub n_classes: usize,
    /// Adam learning rate (paper: 0.05).
    pub lr: f32,
    /// Class weight for Group 0 (paper: 200).
    pub group0_class_weight: f32,
    /// Gradient multiplier for pre-trained input columns (paper: 0.1;
    /// above 0.2–0.3 "negated training effects", 0 "reduced accuracy").
    pub pretrained_gradient_rate: f32,
    /// Epoch cap per attempt (paper: 100).
    pub epochs_limit: usize,
    /// Early-exit accuracy threshold (paper: 0.95).
    pub accepted_accuracy: f64,
    /// Early-exit Group-0 F1 threshold (paper: 0.9).
    pub accepted_group0_f1: f64,
    /// Fail-fast attempt cap (paper: 10).
    pub max_attempts: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Test fraction for the stratified split.
    pub test_fraction: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            hidden: 30,
            n_classes: NUM_GROUPS,
            lr: 0.05,
            group0_class_weight: 200.0,
            pretrained_gradient_rate: 0.1,
            epochs_limit: 100,
            accepted_accuracy: 0.95,
            accepted_group0_f1: 0.9,
            max_attempts: 10,
            batch_size: 128,
            test_fraction: 0.25,
        }
    }
}

/// Result of one training step (one row of Table XI).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Test-set evaluation after training.
    pub evaluation: Evaluation,
    /// Total epochs run in this step (across attempts).
    pub epochs: usize,
    /// Attempts used (1 = first attempt accepted).
    pub attempts: usize,
    /// Whether transfer learning was used (false = trained from scratch).
    pub used_transfer: bool,
    /// Whether the acceptance thresholds were met.
    pub accepted: bool,
    /// Wall time of the whole step, including splitting and evaluation —
    /// the quantity the paper reports in minutes per step.
    pub wall_time: Duration,
    /// Feature-array width trained at.
    pub features_count: usize,
}

/// How the network entering [`train_step`] was prepared.
pub enum Warmth {
    /// Fresh network, all parameters trainable.
    Fresh,
    /// Transfer-loaded network; input columns below `pretrained_cols`
    /// train at the reduced gradient rate, deeper layers are frozen.
    Transfer {
        /// Boundary between pre-trained and new input columns.
        pretrained_cols: usize,
    },
}

/// Splits, trains and evaluates one dataset step.
///
/// `make_fresh` constructs a new network for (re)initialisation attempts;
/// `warm` optionally supplies a transfer-loaded network for the first
/// attempt. Returns the outcome plus the final network.
pub fn train_step(
    dataset: &Dataset,
    config: &TrainConfig,
    seed: u64,
    warm: Option<(Net, Warmth)>,
    mut make_fresh: impl FnMut(u64) -> Net,
) -> (StepOutcome, Net) {
    let t_start = Instant::now();
    let (train_idx, test_idx) = stratified_split(
        &dataset.y,
        SplitConfig {
            test_fraction: config.test_fraction,
            seed,
        },
    );
    let train = dataset.select(&train_idx);
    let test = dataset.select(&test_idx);
    let loss_fn = CrossEntropyLoss::group0_boosted(config.n_classes, config.group0_class_weight);

    let mut total_epochs = 0usize;
    let mut attempts = 0usize;
    let mut used_transfer = false;
    let mut best: Option<(Evaluation, Net)> = None;
    let mut accepted = false;

    let mut pending_warm = warm;
    while attempts < config.max_attempts {
        attempts += 1;
        let (mut net, warmth) = match pending_warm.take() {
            Some((net, w)) => {
                used_transfer = matches!(w, Warmth::Transfer { .. });
                (net, w)
            }
            None => (
                make_fresh(seed.wrapping_add(attempts as u64 * 7919)),
                Warmth::Fresh,
            ),
        };
        let multiplier = match warmth {
            Warmth::Transfer { pretrained_cols } => Some(ColumnGradScale::new(
                pretrained_cols,
                dataset.features_count(),
                config.pretrained_gradient_rate,
            )),
            Warmth::Fresh => None,
        };
        let mut opt = Adam::new(config.lr);
        let mut batches = BatchIter::new(train.len(), config.batch_size, seed ^ attempts as u64);

        // Steady-state buffers, reused across every batch and epoch of
        // this attempt: the gathered mini-batch, its labels, and the
        // forward/backward workspace. After the first batch warms their
        // capacities, the whole train step runs without heap allocation.
        let mut ws = Workspace::new();
        let mut xb = Csr::empty(0, train.x.cols());
        let mut yb: Vec<u8> = Vec::with_capacity(config.batch_size);

        let mut eval = Evaluation {
            accuracy: 0.0,
            group0_f1: None,
        };
        for _epoch in 0..config.epochs_limit {
            total_epochs += 1;
            for batch in batches.batches() {
                train.x.select_rows_into(batch, &mut xb);
                yb.clear();
                yb.extend(batch.iter().map(|&i| train.y[i]));
                net.train_batch(&xb, &yb, &loss_fn, &mut ws);
                if let Some(m) = &multiplier {
                    // Listing 3: scale pre-trained fc1.weight gradients in
                    // place before the optimizer step.
                    m.apply(net.input_layer_mut());
                }
                opt.step(&mut net);
            }
            // model.eval(); evaluate; early-exit when acceptable.
            let pred = net.predict(&test.x);
            eval = Evaluation::compute(&test.y, &pred, config.n_classes);
            if accept(&eval, config) {
                accepted = true;
                break;
            }
        }
        let better = match &best {
            None => true,
            Some((b, _)) => eval.accuracy > b.accuracy,
        };
        if better {
            best = Some((eval, net));
        }
        if accepted {
            break;
        }
        // Fail-fast: discard this model; the next attempt reinitialises.
    }

    let (evaluation, net) = best.expect("at least one attempt ran");
    (
        StepOutcome {
            evaluation,
            epochs: total_epochs,
            attempts,
            used_transfer,
            accepted,
            wall_time: t_start.elapsed(),
            features_count: dataset.features_count(),
        },
        net,
    )
}

/// The paper's acceptance predicate. The Group-0 F1 condition applies
/// only when the test split actually contains Group 0 samples (Table XI
/// omits the score otherwise).
fn accept(eval: &Evaluation, config: &TrainConfig) -> bool {
    let acc_ok = eval.accuracy > config.accepted_accuracy;
    let f1_ok = match eval.group0_f1 {
        Some(f1) => f1 > config.accepted_group0_f1,
        None => true,
    };
    acc_ok && f1_ok
}

/// Builds a fresh paper-architecture network for a feature width.
pub fn fresh_two_layer(features: usize, config: &TrainConfig, seed: u64) -> Net {
    let mut rng = seeded_rng(seed ^ 0xF2E5_11AA);
    Net::two_layer(features, config.hidden, config.n_classes, &mut rng)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ctlm_data::dataset::DatasetBuilder;

    /// A dataset whose group label is trivially decodable from which
    /// block of columns is marked — the shape of CO-VV data.
    pub(crate) fn synthetic_dataset(n: usize, features: usize, seed: u64) -> Dataset {
        use rand::Rng;
        let mut rng = seeded_rng(seed);
        let mut b = DatasetBuilder::new(features, NUM_GROUPS);
        for _ in 0..n {
            // ~2% group 0, the rest spread over groups 1..26.
            let group: u8 = if rng.gen_bool(0.03) {
                0
            } else {
                rng.gen_range(1..NUM_GROUPS as u8)
            };
            // Mark `group`-proportional prefix of the feature block.
            let marks = 2 + (group as usize * (features - 4)) / NUM_GROUPS;
            let entries: Vec<(usize, f32)> = (0..marks).map(|c| (c, 1.0)).collect();
            b.push(entries, group);
        }
        b.snapshot(features)
    }

    #[test]
    fn fresh_training_reaches_acceptance() {
        let ds = synthetic_dataset(800, 60, 1);
        let cfg = TrainConfig {
            epochs_limit: 60,
            ..TrainConfig::default()
        };
        let (out, _net) = train_step(&ds, &cfg, 1, None, |s| {
            fresh_two_layer(ds.features_count(), &cfg, s)
        });
        assert!(out.accepted, "training failed: acc {:?}", out.evaluation);
        assert!(out.evaluation.accuracy > 0.95);
        assert_eq!(out.features_count, 60);
        assert!(!out.used_transfer);
    }

    #[test]
    fn early_exit_keeps_epochs_low_on_easy_data() {
        let ds = synthetic_dataset(600, 40, 2);
        let cfg = TrainConfig::default();
        let (out, _) = train_step(&ds, &cfg, 2, None, |s| {
            fresh_two_layer(ds.features_count(), &cfg, s)
        });
        assert!(out.accepted);
        assert!(
            out.epochs < cfg.epochs_limit,
            "early exit expected, ran {} epochs",
            out.epochs
        );
    }

    #[test]
    fn fail_fast_respects_attempt_cap() {
        // An unlearnable dataset: random labels, no features.
        use rand::Rng;
        let mut rng = seeded_rng(3);
        let mut b = DatasetBuilder::new(4, NUM_GROUPS);
        for _ in 0..200 {
            b.push([(rng.gen_range(0..4), 1.0)], rng.gen_range(0..26));
        }
        let ds = b.snapshot(4);
        let cfg = TrainConfig {
            epochs_limit: 2,
            max_attempts: 3,
            ..TrainConfig::default()
        };
        let (out, _) = train_step(&ds, &cfg, 3, None, |s| {
            fresh_two_layer(ds.features_count(), &cfg, s)
        });
        assert!(!out.accepted);
        assert_eq!(out.attempts, 3, "must stop after max_attempts");
        assert_eq!(out.epochs, 6, "2 epochs × 3 attempts");
    }

    #[test]
    fn acceptance_predicate_handles_missing_group0() {
        let cfg = TrainConfig::default();
        let ok = Evaluation {
            accuracy: 0.99,
            group0_f1: None,
        };
        assert!(
            accept(&ok, &cfg),
            "missing Group 0 must not block acceptance"
        );
        let bad_f1 = Evaluation {
            accuracy: 0.99,
            group0_f1: Some(0.5),
        };
        assert!(!accept(&bad_f1, &cfg));
        let bad_acc = Evaluation {
            accuracy: 0.90,
            group0_f1: Some(1.0),
        };
        assert!(!accept(&bad_acc, &cfg));
    }
}
